//! Minimal offline stand-in for `serde_json` over the reduced serde model.
//!
//! Provides [`to_string`] and [`from_str`] with exact `f64` round-tripping:
//! floats render through Rust's shortest-roundtrip formatting, so
//! `from_str(to_string(x))` reproduces every finite `f64` bit-exactly
//! (upstream's `float_roundtrip` behavior, which this workspace's replay
//! tests rely on).

use std::fmt;

use serde::de::DeserializeOwned;
use serde::value::Value;
use serde::Serialize;

/// JSON serialization / parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON text.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse JSON text into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.0))
}

fn render(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".to_owned()));
            }
            // `{:?}` is Rust's shortest exact-roundtrip form and always
            // keeps a `.0` or exponent, so the value re-parses as a float.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", char::from(b), self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_owned()))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unpaired surrogate".to_owned()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_owned()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_owned())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &x in &[0.1, 1.0, -2.5e-17, 1e300, 3.141592653589793, 1.37e-3] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(u64, Vec<f64>)> = vec![(1, vec![0.5, -0.25]), (9, vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let s = "a\"b\\c\nd\tπ".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
