//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple warm-up + mean-of-samples
//! loop printed to stdout; like upstream, running without `--bench` (as
//! `cargo test` does) executes each benchmark once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function_id/parameter`.
    pub fn new<P: Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    /// Build from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: true, filter: None }
    }
}

impl Criterion {
    /// Read `--bench` / `--test` / filter from the command line, matching
    /// how cargo invokes bench executables.
    pub fn configure_from_args(mut self) -> Self {
        let mut filter = None;
        let mut bench_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        self.test_mode = !bench_mode;
        self.filter = filter;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(BenchmarkId::from(id), |b| f(b));
        group.finish();
        self
    }

    fn should_run(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(needle) => full_id.contains(needle.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

/// Throughput annotation for a benchmark (accepted and ignored by this
/// stub's reporting).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Record the per-iteration throughput (ignored by this stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Set the measurement duration budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Set how many samples to record.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full_id =
            if self.name.is_empty() { id.id.clone() } else { format!("{}/{}", self.name, id.id) };
        if !self.criterion.should_run(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean: None,
        };
        f(&mut bencher);
        match bencher.mean {
            Some(mean) => println!("{full_id:<40} time: [{}]", format_duration(mean)),
            None => println!("{full_id:<40} ok (test mode)"),
        }
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Measure the closure: warm up, then time `sample_size` samples and
    /// record the mean. In test mode runs the closure once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: also estimates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        self.mean = Some(total.div_f64(iters.max(1) as f64));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundle benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn id_formats_with_parameter() {
        let id = BenchmarkId::new("baseline", "qft5");
        assert_eq!(id.id, "baseline/qft5");
    }
}
