//! Minimal offline stand-in for `serde`.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a reduced serde: instead of upstream's visitor-based data model,
//! serialization funnels through an owned [`value::Value`] tree which
//! `serde_json` renders to / parses from JSON text. The public trait shapes
//! (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`,
//! `de::DeserializeOwned`, derive macros re-exported under the same names)
//! match what the workspace's `#[cfg_attr(feature = "serde", ...)]` derives
//! and the one hand-written `with`-module expect.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
