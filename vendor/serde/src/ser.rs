//! Serialization half of the reduced data model.

use crate::value::Value;

/// Sink for a serialized [`Value`] tree.
///
/// Upstream serde threads a visitor through the serializer; here the whole
/// tree is built first and handed over in one call, which is all the
/// workspace's `with`-style helper modules need.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Serialization failure.
    type Error;

    /// Consume the finished tree.
    fn write_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can render itself into the data model.
pub trait Serialize {
    /// Build the [`Value`] tree for `self`.
    fn to_value(&self) -> Value;

    /// Feed the tree into `serializer` (provided; rarely overridden).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.write_value(self.to_value())
    }
}

/// The identity serializer: yields the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = std::convert::Infallible;

    fn write_value(self, value: Value) -> Result<Value, Self::Error> {
        Ok(value)
    }
}

/// Run a `with = "module"` style serialize function and unwrap its
/// infallible result into a plain [`Value`] (used by derived impls).
pub fn to_value_with<F>(f: F) -> Value
where
    F: FnOnce(ValueSerializer) -> Result<Value, std::convert::Infallible>,
{
    match f(ValueSerializer) {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

/// Types usable as map keys: rendered as JSON-object keys the way
/// `serde_json` does (integers become their decimal strings).
pub trait MapKey {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(key: &str) -> Option<Self>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Option<Self> {
        Some(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Option<Self> {
                key.parse().ok()
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
