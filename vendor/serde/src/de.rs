//! Deserialization half of the reduced data model.

use std::fmt;

use crate::value::Value;

/// Deserialization failure with a plain-text message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build from any message.
    pub fn new<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }

    /// Standard "expected X, found Y" message.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Error constructor trait, so `with`-modules can write `D::Error::custom`.
pub trait Error: Sized {
    /// Build an error from any displayable message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError::new(msg)
    }
}

/// Source of a parsed [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Deserialization failure.
    type Error: Error;

    /// Yield the parsed tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type reconstructible from the data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Pull a tree out of `deserializer` and rebuild (provided).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(|e| D::Error::custom(e.0))
    }
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The identity deserializer over a borrowed [`Value`] (used by derived
/// impls to drive `with = "module"` deserialize functions).
pub struct ValueDeserializer<'de>(pub &'de Value);

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0.clone())
    }
}

/// Look up a required object entry (used by derived impls).
pub fn field_value<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Look up and deserialize a required object entry (used by derived impls).
pub fn field<T: DeserializeOwned>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    T::from_value(field_value(entries, name)?)
}

/// Look up and deserialize an object entry, falling back to `T::default()`
/// when the key is absent (used by derived impls for `#[serde(default)]`).
pub fn field_or_default<T: DeserializeOwned + Default>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::from_value(value),
        None => Ok(T::default()),
    }
}

fn integer(value: &Value) -> Result<i128, DeError> {
    match value {
        Value::U64(u) => Ok(i128::from(*u)),
        Value::I64(i) => Ok(i128::from(*i)),
        other => Err(DeError::expected("integer", other)),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = integer(value)?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_seq().ok_or_else(|| DeError::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let got = items.len();
        items.try_into().map_err(|_| DeError(format!("expected array of length {N}, found {got}")))
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_seq().ok_or_else(|| DeError::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: crate::ser::MapKey + Ord,
    V: DeserializeOwned,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("object", value))?;
        entries
            .iter()
            .map(|(key, v)| {
                let k =
                    K::from_key(key).ok_or_else(|| DeError(format!("invalid map key `{key}`")))?;
                Ok((k, V::from_value(v)?))
            })
            .collect()
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq().ok_or_else(|| DeError::expected("array", value))?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
    (5: A.0, B.1, C.2, D.3, E.4)
    (6: A.0, B.1, C.2, D.3, E.4, F.5)
}
