//! The owned data-model tree every serialization funnels through.

/// A self-describing serialized value (JSON-shaped).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers (always rendered with a fractional or
    /// exponent part so they re-parse as floats).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}
