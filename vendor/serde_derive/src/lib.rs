//! Derive macros for the vendored, reduced `serde`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` offline) and emits
//! `to_value` / `from_value` impls against the reduced data model. Supports
//! exactly the shapes this workspace derives on: non-generic structs (unit,
//! tuple, named) and enums (unit, tuple, and struct variants), plus the
//! `#[serde(with = "module")]` and `#[serde(default)]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

#[derive(Clone)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Data {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// Derive `serde::Serialize` (reduced model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (reduced model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is unsupported");
    }
    let data = match kw.as_str() {
        "struct" => Data::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde stub derive: unexpected struct body {other:?}"),
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item { name, data }
}

/// Skip leading attributes; return the token streams of any `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<TokenStream> {
    let mut serde_attrs = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" {
                        serde_attrs.push(args.stream());
                    }
                }
                *i += 1;
            }
            other => panic!("serde stub derive: malformed attribute {other:?}"),
        }
    }
    serde_attrs
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected identifier, found {other:?}"),
    }
}

/// Field-level options collected from `#[serde(...)]` attribute bodies.
#[derive(Default)]
struct FieldOpts {
    with: Option<String>,
    default: bool,
}

/// Parse `with = "path"` / `default` (comma-separable) from collected
/// `#[serde(...)]` attribute bodies.
fn field_opts(serde_attrs: &[TokenStream]) -> FieldOpts {
    let mut opts = FieldOpts::default();
    for attr in serde_attrs {
        let parts: Vec<TokenTree> = attr.clone().into_iter().collect();
        let mut i = 0;
        while i < parts.len() {
            match (parts.get(i), parts.get(i + 1), parts.get(i + 2)) {
                (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if key.to_string() == "with" && eq.as_char() == '=' => {
                    opts.with = Some(lit.to_string().trim_matches('"').to_owned());
                    i += 3;
                }
                (Some(TokenTree::Ident(key)), _, _) if key.to_string() == "default" => {
                    opts.default = true;
                    i += 1;
                }
                _ => panic!(
                    "serde stub derive: unsupported #[serde(...)] attribute `{attr}` \
                     (only `with = \"module\"` and `default` are implemented)"
                ),
            }
            if matches!(parts.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                i += 1;
            }
        }
    }
    opts
}

/// Skip one type (or expression) up to a top-level comma, tracking `<...>`
/// nesting so commas inside generics don't terminate early.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let serde_attrs = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde stub derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_to_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        let opts = field_opts(&serde_attrs);
        fields.push(Field { name, with: opts.with, default: opts.default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                skip_to_comma(&tokens, &mut i);
                Shape::Unit
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn ser_field_expr(access: &str, with: &Option<String>) -> String {
    match with {
        Some(path) => {
            format!("::serde::ser::to_value_with(|__s| {path}::serialize({access}, __s))")
        }
        None => format!("::serde::ser::Serialize::to_value({access})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Shape::Unit) => "::serde::value::Value::Null".to_owned(),
        Data::Struct(Shape::Tuple(1)) => "::serde::ser::Serialize::to_value(&self.0)".to_owned(),
        Data::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::ser::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::value::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), {1})",
                        f.name,
                        ser_field_expr(&format!("&self.{}", f.name), &f.with)
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::value::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::ser::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|idx| format!("__f{idx}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({0}) => ::serde::value::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::value::Value::Seq(::std::vec![{1}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), {1})",
                                        f.name,
                                        ser_field_expr(&f.name, &f.with)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {0} }} => ::serde::value::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::value::Value::Map(::std::vec![{1}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn de_field_expr(source: &str, with: &Option<String>) -> String {
    match with {
        Some(path) => format!("{path}::deserialize(::serde::de::ValueDeserializer({source}))?"),
        None => format!("::serde::de::Deserialize::from_value({source})?"),
    }
}

fn gen_named_ctor(prefix: &str, fields: &[Field], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| match (&f.with, f.default) {
            (Some(_), _) => format!(
                "{0}: {1}",
                f.name,
                de_field_expr(
                    &format!("::serde::de::field_value({map_var}, \"{}\")?", f.name),
                    &f.with
                )
            ),
            (None, true) => {
                format!("{0}: ::serde::de::field_or_default({map_var}, \"{0}\")?", f.name)
            }
            (None, false) => format!("{0}: ::serde::de::field({map_var}, \"{0}\")?", f.name),
        })
        .collect();
    format!("{prefix} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Struct(Shape::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::de::Deserialize::from_value(__value)?))"
        ),
        Data::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|idx| de_field_expr(&format!("&__items[{idx}]"), &None)).collect();
            format!(
                "let __items = __value.as_seq().ok_or_else(|| \
                 ::serde::de::DeError::expected(\"array\", __value))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::DeError::new(::std::format!(\
                 \"expected array of length {n}, found {{}}\", __items.len()))); }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Data::Struct(Shape::Named(fields)) => {
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::de::DeError::expected(\"object\", __value))?;\n\
                 ::std::result::Result::Ok({})",
                gen_named_ctor(name, fields, "__map")
            )
        }
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::de::Deserialize::from_value(__inner)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|idx| de_field_expr(&format!("&__items[{idx}]"), &None))
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __items = __inner.as_seq().ok_or_else(|| \
                                 ::serde::de::DeError::expected(\"array\", __inner))?;\n\
                                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::de::DeError::new(::std::format!(\
                                 \"expected array of length {n}, found {{}}\", __items.len()))); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                                 }}",
                                elems = elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => format!(
                            "\"{vname}\" => {{\n\
                             let __vmap = __inner.as_map().ok_or_else(|| \
                             ::serde::de::DeError::expected(\"object\", __inner))?;\n\
                             ::std::result::Result::Ok({})\n\
                             }}",
                            gen_named_ctor(&format!("{name}::{vname}"), fields, "__vmap")
                        ),
                        Shape::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::std::result::Result::Err(::serde::de::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::value::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __inner) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {datas}\n\
                 __other => ::std::result::Result::Err(::serde::de::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::de::DeError::expected(\"variant\", __other)),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::value::Value) \
             -> ::std::result::Result<Self, ::serde::de::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
