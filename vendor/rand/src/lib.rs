//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the slice of the `rand` API it uses: the [`Rng`] / [`RngExt`] /
//! [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`, but the workspace only relies on *determinism*
//! (same seed ⇒ same stream) and statistical quality, never on matching
//! upstream's exact output.

/// Core random source: everything derives from a 64-bit output.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the "standard" distribution via [`RngExt::random`].
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range sampling and convenience draws, blanket-implemented for every
/// [`Rng`].
pub trait RngExt: Rng {
    /// Sample a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from an integer or float range (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` by rejection sampling.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Types with a uniform-over-a-range distribution. A single generic
/// `Range<T>: SampleRange<T>` impl (rather than one impl per type) keeps
/// integer-literal inference working the way upstream rand's does.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i128 - low as i128) as u64;
                let draw = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    uniform_below(rng, span + 1)
                } else {
                    uniform_below(rng, span)
                };
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, low: f64, high: f64, _inclusive: bool) -> f64 {
        let u: f64 = f64::sample_standard(rng);
        low + u * (high - low)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        T::sample_in(rng, start, end, true)
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64`, expanded internally.
    fn seed_from_u64(state: u64) -> Self;
}

/// Pre-packaged generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn ranges_hit_every_bucket() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        for _ in 0..1000 {
            let v = rng.random_range(1..16u8);
            assert!((1..16).contains(&v));
            let w = rng.random_range(3..=5i32);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }
}
