//! Minimal offline stand-in for the `num-complex` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the slice of the `num-complex` API it actually uses: `Complex<f64>`
//! (via the [`Complex64`] alias) with the usual field access, constructors,
//! arithmetic operators, and polar helpers. Semantics match the upstream
//! crate for every method provided here.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Double-precision complex number.
pub type Complex64 = Complex<f64>;
/// Single-precision complex number.
pub type Complex32 = Complex<f32>;

impl<T> Complex<T> {
    /// Build a complex number from rectangular parts.
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f64> {
    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Complex::new(0.0, 1.0)
    }

    /// Build from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn norm(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in `(-π, π]`.
    pub fn arg(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiply by a real scalar.
    pub fn scale(&self, t: f64) -> Self {
        Complex::new(self.re * t, self.im * t)
    }

    /// Divide by a real scalar.
    pub fn unscale(&self, t: f64) -> Self {
        Complex::new(self.re / t, self.im / t)
    }

    /// Multiplicative inverse.
    pub fn inv(&self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential.
    pub fn exp(&self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(&self) -> Self {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Integer power by repeated squaring through polar form.
    pub fn powi(&self, exp: i32) -> Self {
        Complex::from_polar(self.norm().powi(exp), self.arg() * f64::from(exp))
    }

    /// True when both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex<f64> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex<f64> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex<f64> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex<f64> {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex<f64> {
    type Output = Self;
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex<f64> {
    type Output = Self;
    fn add(self, rhs: f64) -> Self {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex<f64> {
    type Output = Self;
    fn sub(self, rhs: f64) -> Self {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex<f64> {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex<f64> {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    fn add(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self + rhs.re, rhs.im)
    }
}

impl Sub<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    fn sub(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex<f64>> for f64 {
    type Output = Complex<f64>;
    fn mul(self, rhs: Complex<f64>) -> Complex<f64> {
        Complex::new(self * rhs.re, self * rhs.im)
    }
}

/// Forward reference-operand combinations to the by-value impls, the way
/// upstream num-complex does.
macro_rules! forward_ref_binop {
    ($($imp:ident :: $method:ident for $rhs:ty),*) => {$(
        impl $imp<&$rhs> for Complex<f64> {
            type Output = Complex<f64>;
            fn $method(self, rhs: &$rhs) -> Complex<f64> {
                $imp::$method(self, *rhs)
            }
        }
        impl $imp<$rhs> for &Complex<f64> {
            type Output = Complex<f64>;
            fn $method(self, rhs: $rhs) -> Complex<f64> {
                $imp::$method(*self, rhs)
            }
        }
        impl $imp<&$rhs> for &Complex<f64> {
            type Output = Complex<f64>;
            fn $method(self, rhs: &$rhs) -> Complex<f64> {
                $imp::$method(*self, *rhs)
            }
        }
    )*};
}

forward_ref_binop!(
    Add::add for Complex<f64>, Sub::sub for Complex<f64>,
    Mul::mul for Complex<f64>, Div::div for Complex<f64>,
    Add::add for f64, Sub::sub for f64, Mul::mul for f64, Div::div for f64
);

impl Neg for &Complex<f64> {
    type Output = Complex<f64>;
    fn neg(self) -> Complex<f64> {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex<f64> {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex<f64> {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex<f64> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex<f64> {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex<f64> {
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex<f64> {
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl AddAssign<&Complex<f64>> for Complex<f64> {
    fn add_assign(&mut self, rhs: &Complex<f64>) {
        *self += *rhs;
    }
}

impl SubAssign<&Complex<f64>> for Complex<f64> {
    fn sub_assign(&mut self, rhs: &Complex<f64>) {
        *self -= *rhs;
    }
}

impl Sum for Complex<f64> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex<f64>> for Complex<f64> {
    fn sum<I: Iterator<Item = &'a Complex<f64>>>(iter: I) -> Self {
        iter.fold(Complex::new(0.0, 0.0), |a, b| a + *b)
    }
}

impl From<f64> for Complex<f64> {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex<f64> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im < 0.0 {
            write!(f, "{}-{}i", self.re, -self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Complex<f64> {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Seq(vec![
            serde::Serialize::to_value(&self.re),
            serde::Serialize::to_value(&self.im),
        ])
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Complex<f64> {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::de::DeError> {
        let parts: Vec<f64> = serde::Deserialize::from_value(value)?;
        if parts.len() != 2 {
            return Err(serde::de::DeError::new("expected [re, im] pair"));
        }
        Ok(Complex::new(parts[0], parts[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_hand_results() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        let q = (a / b) * b;
        assert!((q - a).norm() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, 0.5);
        assert!((c.norm() - 2.0).abs() < 1e-12);
        assert!((c.arg() - 0.5).abs() < 1e-12);
    }
}
