//! Minimal offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with ranges / tuples / `prop_map` /
//! [`collection::vec`] / [`prop_oneof!`] / [`Just`] / [`any`], and the
//! [`proptest!`] macro with `#![proptest_config(...)]` support. Generation
//! is deterministic (fixed seed per test function, varied per case); there
//! is no shrinking — on failure the offending inputs are printed as-is.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; each test case gets its own stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Build from the candidate strategies.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String strategies from regex-like patterns, as in upstream proptest.
///
/// Only the subset the workspace uses is supported: a single `.` atom with
/// a `{m,n}` repetition (arbitrary strings of bounded length), plus plain
/// literals containing no regex metacharacters.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((min, max)) = parse_dot_repetition(self) {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            return (0..len).map(|_| arbitrary_char(rng)).collect();
        }
        assert!(
            !self.contains(['.', '*', '+', '?', '[', '(', '{', '\\', '|']),
            "unsupported regex pattern {self:?}: the vendored proptest stub only \
             supports `.{{m,n}}` and literal strings"
        );
        self.to_owned()
    }
}

/// Match `.{m,n}` exactly; returns the inclusive length bounds.
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = body.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// A char distribution that stresses parsers: mostly printable ASCII, with
/// control characters and arbitrary Unicode mixed in.
fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\u{1}'),
        1 => {
            let raw = rng.below(0x11_0000) as u32;
            char::from_u32(raw).unwrap_or('\u{fffd}')
        }
        _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' '),
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitives.
#[derive(Clone, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive { _marker: std::marker::PhantomData }
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty size range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// Strategy yielding vectors of `element` values.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `vec(element, len)` — a vector strategy (proptest-compatible shape).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R>
    where
        S::Value: Debug,
    {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Hash a test-function name into a per-test base seed (deterministic).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Compose existing strategies into a named strategy-returning function,
/// upstream-style: `fn name(outer)(bindings) -> Out { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)(
            $($pat:pat in $strategy:expr),+ $(,)?
        ) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::Strategy::prop_map(($($strategy,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn` runs `cases` times over fresh inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::__run_property!(__config, $name, ($($pat in $strategy),+) $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $crate::ProptestConfig::default();
                $crate::__run_property!(__config, $name, ($($pat in $strategy),+) $body);
            }
        )*
    };
}

/// Internal: drive one property function. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __run_property {
    ($config:expr, $name:ident, ($($pat:pat in $strategy:expr),+) $body:block) => {{
        let __base = $crate::seed_for(stringify!($name));
        for __case in 0..$config.cases {
            let mut __rng = $crate::TestRng::new(
                __base ^ (u64::from(__case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let __values = ($($crate::Strategy::generate(&$strategy, &mut __rng),)+);
            let __debug = format!("{:?}", __values);
            let ($($pat,)+) = __values;
            // The body runs in a Result-returning closure so upstream-style
            // early exits (`return Ok(())`) compile unchanged.
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                },
            ));
            match __outcome {
                Ok(Ok(())) => {}
                Ok(Err(__msg)) => {
                    eprintln!(
                        "proptest case {} of {} failed for inputs: {}",
                        __case + 1,
                        $config.cases,
                        __debug
                    );
                    panic!("{}", __msg);
                }
                Err(__panic) => {
                    eprintln!(
                        "proptest case {} of {} failed for inputs: {}",
                        __case + 1,
                        $config.cases,
                        __debug
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 3)) {
            prop_assert!(v == 3 || v == 6);
        }
    }

    #[test]
    fn seeds_differ_between_names() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
