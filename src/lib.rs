#![warn(missing_docs)]
//! # noisy-qsim
//!
//! Facade crate for the reproduction of *Eliminating Redundant Computation
//! in Noisy Quantum Computing Simulation* (DAC 2020). It re-exports the
//! workspace crates under stable module names and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! * [`statevec`] — dense state-vector substrate.
//! * [`circuit`] — circuit IR, transpiler, benchmark catalog.
//! * [`qasm`] — OpenQASM 2.0 front end.
//! * [`noise`] — error models and Monte-Carlo trial generation.
//! * [`redsim`] — the paper's contribution: trial reordering and
//!   prefix-state-cached execution.
//! * [`analyzer`] — static plan verifier: proves trial plans, cache
//!   schedules, and fused programs sound before execution.
//! * [`telemetry`] — structured runtime tracing and metrics; every
//!   executor has a `*_traced` variant whose totals mirror its
//!   [`redsim::ExecStats`] exactly.
//!
//! # Quickstart
//!
//! ```
//! use noisy_qsim::circuit::catalog;
//! let qc = catalog::bv(4, 0b101);
//! assert_eq!(qc.n_qubits(), 4);
//! ```

pub use qsim_analyzer as analyzer;
pub use qsim_circuit as circuit;
pub use qsim_noise as noise;
pub use qsim_qasm as qasm;
pub use qsim_statevec as statevec;
pub use qsim_telemetry as telemetry;
pub use redsim;
pub use redsim_msvstore as msvstore;

/// One-line import for the common workflow:
/// `use noisy_qsim::prelude::*;`.
pub mod prelude {
    pub use qsim_analyzer::{verify, Diagnostic, ExecutionPlan};
    pub use qsim_circuit::transpile::{transpile, TranspileOptions};
    pub use qsim_circuit::{catalog, Circuit, CouplingMap, Gate, LayeredCircuit};
    pub use qsim_noise::{NoiseModel, PauliWeights, TrialGenerator, TrialSet};
    pub use qsim_statevec::{MeasureOutcome, Pauli, PauliString, StateVector};
    pub use redsim::{CostReport, Histogram, RunResult, Simulation};
}
