//! A miniature of the paper's scalability study (Figs. 7–8): sweep quantum
//! volume circuits and error rates, reporting computation saving and MSVs
//! from the static analyzer — no amplitudes are ever allocated, which is
//! why this works for 30+ qubit circuits on a laptop.
//!
//! Run with: `cargo run --release --example scalability_sweep [trials]`

use noisy_qsim::circuit::catalog;
use noisy_qsim::noise::{NoiseModel, TrialGenerator};
use noisy_qsim::redsim::analysis::analyze_sorted;
use noisy_qsim::redsim::order::reorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(100_000);
    println!("{trials} trials per configuration\n");
    println!("{:<10} {:>12} {:>14} {:>8}", "circuit", "1q rate", "normalized", "MSVs");

    for (n_qubits, depth) in [(10, 10), (20, 10), (30, 10)] {
        let layered = catalog::quantum_volume(n_qubits, depth, 99).layered()?;
        for rate in [1e-3, 1e-4] {
            let model = NoiseModel::artificial(n_qubits, rate);
            let generator = TrialGenerator::new(&layered, &model)?;
            let mut set = generator.generate_fast(trials, 5).into_trials();
            reorder(&mut set);
            let report = analyze_sorted(&layered, &set)?;
            println!(
                "{:<10} {:>12.0e} {:>14.3} {:>8}",
                format!("n{n_qubits},d{depth}"),
                rate,
                report.normalized_computation(),
                report.msv_peak
            );
        }
    }
    println!("\nreading: savings grow as error rates shrink; MSVs stay small throughout.");
    Ok(())
}
