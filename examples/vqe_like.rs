//! A VQE-style workflow: optimize a hardware-efficient two-qubit ansatz
//! against a transverse-field Ising Hamiltonian on the noiseless simulator,
//! then re-evaluate the optimum under device noise — the kind of algorithm
//! study the paper's fast noisy simulation exists to serve.
//!
//! Run with: `cargo run --release --example vqe_like`

use noisy_qsim::prelude::*;
use noisy_qsim::statevec::Observable;

/// H = −ZZ − 0.6·(XI + IX): ground energy −√(1 + 0.6²)·... (computed below
/// by dense diagonalization as the reference).
fn hamiltonian() -> Result<Observable, Box<dyn std::error::Error>> {
    Ok(Observable::new(2)
        .with_term(-1.0, "ZZ".parse()?)
        .with_term(-0.6, "XI".parse()?)
        .with_term(-0.6, "IX".parse()?))
}

/// Hardware-efficient ansatz: Ry layer, CX, Ry layer.
fn ansatz(params: &[f64; 4]) -> Circuit {
    let mut qc = Circuit::new("ansatz", 2, 2);
    qc.ry(params[0], 0).ry(params[1], 1).cx(0, 1).ry(params[2], 0).ry(params[3], 1);
    qc
}

fn energy(params: &[f64; 4], h: &Observable) -> f64 {
    let state = ansatz(params).simulate().expect("ansatz simulates");
    h.expectation(&state).expect("matching width")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = hamiltonian()?;

    // Exact ground energy from the dense matrix (Jacobi eigensolver).
    let dim = 4;
    let mut dense = vec![noisy_qsim::statevec::C64::new(0.0, 0.0); dim * dim];
    for col in 0..dim {
        let basis = StateVector::basis_state(2, col)?;
        // H|col⟩ column by column via term application.
        for (coeff, term) in h.terms() {
            let mut transformed = basis.clone();
            for q in 0..2 {
                if let Some(p) = term.op(q) {
                    transformed.apply_pauli(p, q)?;
                }
            }
            for (row, amp) in transformed.amplitudes().iter().enumerate() {
                dense[row * dim + col] += amp * *coeff;
            }
        }
    }
    let ground = noisy_qsim::statevec::hermitian_eigenvalues(&dense, dim)[0];
    println!("exact ground energy: {ground:.6}");

    // Coordinate descent on the 4 ansatz angles.
    let mut params = [0.4f64, -0.3, 0.2, 0.1];
    let mut best = energy(&params, &h);
    for sweep in 0..60 {
        for i in 0..4 {
            let mut step = 0.4 / (1.0 + sweep as f64 / 8.0);
            for _ in 0..8 {
                for direction in [step, -step] {
                    let mut candidate = params;
                    candidate[i] += direction;
                    let e = energy(&candidate, &h);
                    if e < best {
                        best = e;
                        params = candidate;
                    }
                }
                step *= 0.5;
            }
        }
    }
    println!("variational optimum:  {best:.6} (gap {:.2e})", best - ground);
    assert!(best - ground < 1e-3, "optimizer failed to converge: {best} vs {ground}");

    // Under Yorktown noise the energy estimate degrades; quantify it with
    // the redundancy-eliminated Monte-Carlo run via ⟨ZZ⟩/⟨X⟩ readouts.
    // (Z-basis histogram gives ⟨ZZ⟩; an H-rotated copy gives ⟨XI⟩/⟨IX⟩.)
    let shots = 60_000;
    let mut z_circuit = ansatz(&params);
    z_circuit.measure_all();
    let mut x_circuit = ansatz(&params);
    x_circuit.h(0).h(1).measure_all();
    let model = NoiseModel::ibm_yorktown();
    let mut noisy_energy = 0.0;
    for (weight_zz, circuit) in [(true, z_circuit), (false, x_circuit)] {
        let compiled = transpile(&circuit, &TranspileOptions::for_device(CouplingMap::yorktown()))?;
        let mut sim = Simulation::from_circuit(&compiled.circuit, model.clone())?;
        sim.generate_trials(shots, 5)?;
        let run = sim.run_reordered()?;
        let histogram = sim.histogram(&run);
        if weight_zz {
            noisy_energy -= histogram.expectation_parity(&[0, 1]);
        } else {
            noisy_energy += -0.6 * (histogram.expectation_z(0) + histogram.expectation_z(1));
        }
    }
    println!("noisy estimate:       {noisy_energy:.4} (bias {:+.4})", noisy_energy - best);
    assert!(noisy_energy > best - 0.05, "noise should raise, not lower, the energy");
    Ok(())
}
