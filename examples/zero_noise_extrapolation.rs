//! Zero-noise extrapolation on the redundancy-eliminated simulator: measure
//! a GHZ pair-parity ⟨Z₀Z₁⟩ under the Yorktown model at amplified noise
//! scales, fit the decay, and extrapolate to the zero-noise limit — the
//! standard error-mitigation technique, driven end to end by this stack.
//!
//! Run with: `cargo run --release --example zero_noise_extrapolation`

use noisy_qsim::prelude::*;

fn parity_at_scale(base: &NoiseModel, scale: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let mut ghz = Circuit::new("ghz3", 3, 3);
    ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
    let compiled = transpile(&ghz, &TranspileOptions::for_device(CouplingMap::yorktown()))?;
    let mut sim = Simulation::from_circuit(&compiled.circuit, base.scaled(scale)?)?;
    sim.generate_trials(60_000, 11)?;
    let result = sim.run_reordered()?;
    Ok(sim.histogram(&result).expectation_parity(&[0, 1]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = NoiseModel::ibm_yorktown();
    let scales = [1.0f64, 1.5, 2.0];
    let mut points = Vec::new();
    println!("{:>8}  {:>10}", "scale", "⟨Z0·Z1⟩");
    for &scale in &scales {
        let parity = parity_at_scale(&base, scale)?;
        println!("{scale:>8.2}  {parity:>10.4}");
        points.push((scale, parity));
    }

    // Least-squares linear fit E(s) ≈ a + b·s; the mitigated estimate is a.
    let n = points.len() as f64;
    let sum_s: f64 = points.iter().map(|(s, _)| s).sum();
    let sum_e: f64 = points.iter().map(|(_, e)| e).sum();
    let sum_ss: f64 = points.iter().map(|(s, _)| s * s).sum();
    let sum_se: f64 = points.iter().map(|(s, e)| s * e).sum();
    let slope = (n * sum_se - sum_s * sum_e) / (n * sum_ss - sum_s * sum_s);
    let intercept = (sum_e - slope * sum_s) / n;

    let raw = points[0].1;
    println!("\nraw ⟨Z0·Z1⟩ at scale 1:   {raw:.4}");
    println!("extrapolated to scale 0:  {intercept:.4}  (ideal: 1.0000)");
    let raw_error = (1.0 - raw).abs();
    let mitigated_error = (1.0 - intercept).abs();
    println!("mitigation removed {:.0}% of the bias", 100.0 * (1.0 - mitigated_error / raw_error));
    assert!(
        mitigated_error < raw_error,
        "extrapolation must improve on the raw estimate ({mitigated_error} vs {raw_error})"
    );
    Ok(())
}
