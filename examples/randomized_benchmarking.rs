//! Single-qubit randomized benchmarking under the Monte-Carlo noise model:
//! random self-inverting gate sequences of growing length, survival
//! probability decaying as `A·pᵐ + B`, and the per-gate error estimated
//! from the decay — the experiment the paper's `rb` benchmark belongs to.
//!
//! Run with: `cargo run --release --example randomized_benchmarking`

use noisy_qsim::circuit::catalog::rb_sequence;
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate_error = 2e-3; // per-gate depolarizing rate to recover
    let model = NoiseModel::uniform(1, gate_error, 0.0, 0.0);
    let mut rng = StdRng::seed_from_u64(7);
    let shots = 20_000;
    let sequences_per_length = 8;

    println!("per-gate depolarizing rate in the model: {gate_error:.1e}\n");
    println!("{:>4}  {:>10}  {:>12}", "m", "P(survive)", "ops saved");
    let mut survivals = Vec::new();
    for m in [2usize, 8, 32, 128] {
        let mut p_total = 0.0;
        let mut saving = 0.0;
        for _ in 0..sequences_per_length {
            let qc = rb_sequence(m, rng.random::<u64>());
            let mut sim = Simulation::from_circuit(&qc, model.clone())?;
            sim.generate_trials(shots / sequences_per_length, rng.random::<u64>())?;
            let report = sim.analyze()?;
            saving += report.savings();
            let result = sim.run_reordered()?;
            p_total += sim.histogram(&result).probability(0);
        }
        let p = p_total / sequences_per_length as f64;
        println!("{m:>4}  {p:>10.4}  {:>11.1}%", 100.0 * saving / sequences_per_length as f64);
        survivals.push((m, p));
    }

    // Fit P(m) = A·pᵐ + 1/2 between the shortest and longest lengths.
    let (m1, p1) = survivals[0];
    let (m2, p2) = survivals[survivals.len() - 1];
    let decay = ((p2 - 0.5) / (p1 - 0.5)).powf(1.0 / (m2 - m1) as f64);
    // For a symmetric Pauli channel of total rate r, each injected operator
    // anticommutes with the measured axis with probability 2/3, so the
    // survival decay per gate is 1 − (2/3)·2r·… ≈ 1 − (4/3)r for the
    // depolarizing parameter; inverting the standard RB relation
    // r ≈ (3/4)(1 − p) recovers the model's per-gate rate.
    let estimated = 0.75 * (1.0 - decay);
    println!(
        "\nfitted decay p = {decay:.5} → estimated per-gate error {estimated:.2e} (model {gate_error:.1e})"
    );
    let ratio = estimated / gate_error;
    assert!((0.3..3.0).contains(&ratio), "estimate off by more than 3x: ratio {ratio}");
    println!("estimate within statistical range of the model rate");
    Ok(())
}
