//! The 3-qubit bit-flip repetition code under the Monte-Carlo noise model:
//! encode a logical qubit, let bit-flip noise act for several layers, and
//! majority-vote the readout in classical post-processing.
//! The logical error rate must be suppressed quadratically,
//! `p_L ≈ 3·p_eff²`, relative to the unencoded qubit — the textbook result,
//! recovered here from the redundancy-eliminated simulator.
//!
//! Run with: `cargo run --release --example repetition_code`

use noisy_qsim::circuit::Circuit;
use noisy_qsim::noise::{NoiseModel, PauliWeights};
use noisy_qsim::redsim::Simulation;

const IDLE_LAYERS: usize = 4;

/// Encoded memory: |0⟩_L = |000⟩, hold for idle layers, decode, measure.
fn encoded_memory() -> Circuit {
    let mut qc = Circuit::new("rep3", 3, 3);
    // Encode |0⟩_L (two CNOTs — trivial on |000⟩ but they carry gate noise
    // slots; we keep gates noiseless here and study idle noise only).
    qc.cx(0, 1).cx(0, 2);
    // Idle layers: identity gates on qubit 0 only, so qubits 1 and 2 idle
    // too — every qubit sees the idle channel each layer... qubit 0 is
    // "busy" with an identity, so to expose all three equally we idle all
    // three by inserting barriers.
    for _ in 0..IDLE_LAYERS {
        qc.barrier();
        qc.push_gate(noisy_qsim::circuit::Gate::I, vec![0]).expect("valid");
        qc.push_gate(noisy_qsim::circuit::Gate::I, vec![1]).expect("valid");
        qc.push_gate(noisy_qsim::circuit::Gate::I, vec![2]).expect("valid");
    }
    // Readout decodes classically: measure all three, majority-vote.
    qc.measure_all();
    qc
}

/// Unencoded reference: one qubit holding |0⟩ for the same duration.
fn bare_memory() -> Circuit {
    let mut qc = Circuit::new("bare", 1, 1);
    for _ in 0..IDLE_LAYERS {
        qc.barrier();
        qc.push_gate(noisy_qsim::circuit::Gate::I, vec![0]).expect("valid");
    }
    qc.measure(0, 0);
    qc
}

fn logical_error_rates(
    p_flip: f64,
    trials: usize,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    // Gate errors off; only the per-layer bit-flip channel acts on every
    // qubit every layer (identity gates count as "busy", so attach the
    // flip channel to the gates themselves via single-qubit weights).
    let mut model3 = NoiseModel::uniform(3, 0.0, 0.0, 0.0);
    for q in 0..3 {
        model3.set_single_weights(q, PauliWeights::bit_flip(p_flip))?;
    }
    let mut sim = Simulation::from_circuit(&encoded_memory(), model3)?;
    sim.generate_trials(trials, 7)?;
    let result = sim.run_reordered()?;
    let histogram = sim.histogram(&result);
    // Majority vote: logical error iff two or more bits flipped.
    let mut p_logical = 0.0;
    for (pattern, count) in histogram.iter() {
        if (pattern.count_ones() as usize) >= 2 {
            p_logical += count as f64;
        }
    }
    p_logical /= trials as f64;

    let mut model1 = NoiseModel::uniform(1, 0.0, 0.0, 0.0);
    model1.set_single_weights(0, PauliWeights::bit_flip(p_flip))?;
    let mut sim = Simulation::from_circuit(&bare_memory(), model1)?;
    sim.generate_trials(trials, 9)?;
    let result = sim.run_reordered()?;
    let p_bare = 1.0 - sim.histogram(&result).probability(0);
    Ok((p_logical, p_bare))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("3-qubit repetition code vs bare qubit ({IDLE_LAYERS} noisy layers)\n");
    println!("{:>10}  {:>12}  {:>12}  {:>10}", "p(flip)", "p_L encoded", "p bare", "gain");
    let trials = 200_000;
    for p in [0.02f64, 0.01, 0.005] {
        let (p_logical, p_bare) = logical_error_rates(p, trials)?;
        println!(
            "{p:>10.3}  {p_logical:>12.5}  {p_bare:>12.5}  {:>9.1}x",
            p_bare / p_logical.max(1e-9)
        );
        // Quadratic suppression: p_L ≈ 3·p_eff² with p_eff the per-qubit
        // cumulative flip probability over the memory time.
        let p_eff = (1.0 - (1.0 - 2.0 * p).powi(IDLE_LAYERS as i32)) / 2.0;
        let theory = 3.0 * p_eff * p_eff - 2.0 * p_eff * p_eff * p_eff;
        assert!(
            (p_logical - theory).abs() < 0.25 * theory + 3.0 / (trials as f64).sqrt(),
            "p={p}: measured {p_logical}, theory {theory}"
        );
        assert!(p_logical < p_bare, "encoding must help at p={p}");
    }
    println!("\nencoded memory beats the bare qubit at every rate; suppression matches 3p² theory");
    Ok(())
}
