//! Grover search on a realistic noisy device: compile a 3-qubit Grover
//! circuit to IBM Yorktown, simulate it under the paper's Fig. 4 calibration
//! with both executors, and measure how noise degrades the success
//! probability.
//!
//! Run with: `cargo run --release --example noisy_grover`

use std::time::Instant;

use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, CouplingMap};
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Grover with 2 iterations finds |111⟩ with probability ≈ 0.945
    // noiselessly.
    let logical = catalog::grover_3q(2);
    let noiseless = logical.simulate()?;
    println!("noiseless P(111) = {:.3}", noiseless.probability(0b111));

    // Compile to the Yorktown device (decompose → route → fuse), exactly as
    // the paper's evaluation does via the Enfield compiler.
    let compiled = transpile(&logical, &TranspileOptions::for_device(CouplingMap::yorktown()))?;
    let counts = compiled.circuit.counts();
    println!("compiled to Yorktown: {} single-qubit gates, {} CNOTs", counts.single, counts.cnot);

    // Simulate under the real calibration data (paper Fig. 4).
    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())?;
    sim.generate_trials(8192, 7)?;

    let report = sim.analyze()?;
    println!("static analysis: {report}");

    let t0 = Instant::now();
    let baseline = sim.run_baseline()?;
    let t_baseline = t0.elapsed();
    let t0 = Instant::now();
    let optimized = sim.run_reordered()?;
    let t_optimized = t0.elapsed();
    assert_eq!(baseline.outcomes, optimized.outcomes);

    println!(
        "baseline: {:?} ({} ops) | reordered: {:?} ({} ops) | speedup {:.2}x",
        t_baseline,
        baseline.stats.ops,
        t_optimized,
        optimized.stats.ops,
        t_baseline.as_secs_f64() / t_optimized.as_secs_f64()
    );

    let histogram = sim.histogram(&optimized);
    println!(
        "noisy P(111) = {:.3} (over {} shots)",
        histogram.probability(0b111),
        histogram.total()
    );
    Ok(())
}
