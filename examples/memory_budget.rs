//! The memory/computation trade-off: the same noisy simulation executed
//! with an unbounded frontier cache, hard stored-state budgets, compressed
//! at-rest frontiers, and multiple threads — all with bitwise-identical
//! outcomes.
//!
//! Run with: `cargo run --release --example memory_budget`

use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, CouplingMap};
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::compressed::run_reordered_compressed;
use noisy_qsim::redsim::order::reorder;
use noisy_qsim::redsim::Simulation;
use noisy_qsim::statevec::StoredState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled =
        transpile(&catalog::qft(5), &TranspileOptions::for_device(CouplingMap::yorktown()))?;
    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())?;
    sim.generate_trials(8192, 1)?;

    let baseline = sim.run_baseline()?;
    println!("baseline:            {:>9} ops, 0 cached states", baseline.stats.ops);

    for budget in [1usize, 2, 3, usize::MAX] {
        let result = sim.run_reordered_with_budget(budget)?;
        assert_eq!(result.outcomes, baseline.outcomes, "budget run diverged");
        let label = if budget == usize::MAX { "∞".to_owned() } else { budget.to_string() };
        println!(
            "budget {label:>2}:           {:>9} ops, {} cached states at peak",
            result.stats.ops, result.stats.peak_msv
        );
    }

    // Compressed at-rest frontiers: identical outcomes, byte-level stats.
    let mut trials = sim.trials().expect("generated").trials().to_vec();
    reorder(&mut trials);
    let (result, comp) = run_reordered_compressed(sim.layered(), &trials)?;
    let dense_unit = StoredState::dense_bytes(sim.layered().n_qubits());
    println!(
        "compressed frontiers: {:>8} ops, peak {} B vs {} B dense ({}/{} frames sparse)",
        result.stats.ops,
        comp.peak_stored_bytes,
        result.stats.peak_msv * dense_unit,
        comp.sparse_frames,
        comp.frames_stored,
    );

    // Threads: identical outcomes again, chunked caching.
    let par = sim.run_reordered_parallel(0)?;
    assert_eq!(par.outcomes, baseline.outcomes, "parallel run diverged");
    println!(
        "parallel (all cores): {:>8} ops across workers, {} cached states summed",
        par.stats.ops, par.stats.peak_msv
    );
    println!("\nall five strategies produced bitwise-identical outcomes");
    Ok(())
}
