//! Quickstart: noisy Monte-Carlo simulation of Bernstein–Vazirani with the
//! redundancy-eliminating executor.
//!
//! Run with: `cargo run --example quickstart`

use noisy_qsim::circuit::catalog;
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-qubit Bernstein–Vazirani circuit with hidden string 101.
    let circuit = catalog::bv(4, 0b101);
    println!("circuit: {circuit}");

    // A uniform depolarizing model: 0.1% per 1q gate, 1% per CNOT and per
    // readout (the paper's "artificial" future-device shape).
    let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
    let mut sim = Simulation::from_circuit(&circuit, model)?;

    // Statically generate 4096 Monte-Carlo error-injection trials.
    sim.generate_trials(4096, 42)?;
    println!("trials: {}", sim.trials().expect("just generated"));

    // Static analysis: how much computation does trial reordering save?
    let report = sim.analyze()?;
    println!("analysis: {report}");

    // Actually run both strategies. Outcomes are bitwise identical.
    let baseline = sim.run_baseline()?;
    let optimized = sim.run_reordered()?;
    assert_eq!(baseline.outcomes, optimized.outcomes);
    println!(
        "baseline ops: {}, optimized ops: {} ({:.1}% saved), {} states cached at peak",
        baseline.stats.ops,
        optimized.stats.ops,
        100.0 * report.savings(),
        optimized.stats.peak_msv,
    );

    // The measured distribution still peaks at the hidden string.
    let histogram = sim.histogram(&optimized);
    println!("\nmeasured distribution:\n{histogram}");
    println!("P(101) = {:.3}", histogram.probability(0b101));
    Ok(())
}
