//! Rare-event estimation: what is the probability that Bernstein–Vazirani
//! *fails* given that at least three errors struck? Direct Monte-Carlo
//! wastes nearly all its trials on the common 0–1-error cases; the exact
//! conditional sampler spends every trial inside the tail — and conditional
//! trial sets share long prefixes, so the reordered executor accelerates
//! them even more than ordinary ones.
//!
//! Run with: `cargo run --release --example rare_events`

use noisy_qsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::bv(5, 0b1011);
    let layered = circuit.layered()?;
    let model = NoiseModel::uniform(5, 2e-3, 2e-2, 0.0);
    let generator = TrialGenerator::new(&layered, &model)?;
    let min_errors = 3;

    // Conditional set: every trial has ≥ 3 injections.
    let (conditional, p_event) = generator.generate_conditional(40_000, min_errors, 7);
    println!(
        "P(≥{min_errors} errors) = {p_event:.3e}  (λ = {:.3} expected errors/trial)",
        generator.expected_injections()
    );

    let exec = noisy_qsim::redsim::exec::ReuseExecutor::new(&layered);
    let run = exec.run(conditional.trials())?;
    let histogram = Histogram::from_outcomes(layered.n_cbits(), &run.outcomes);
    let fail_given_tail = 1.0 - histogram.probability(0b1011);
    println!("P(wrong answer | ≥{min_errors} errors) = {fail_given_tail:.4}");
    println!("tail contribution to total failure: {:.3e}", p_event * fail_given_tail);

    // Contrast with direct sampling at the same budget.
    let direct = generator.generate(40_000, 8);
    let tail_hits = direct.trials().iter().filter(|t| t.n_injections() >= min_errors).count();
    println!("\ndirect sampling at the same budget produced only {tail_hits} tail trials of 40000");
    assert!(tail_hits < conditional.len() / 20, "the event is supposed to be rare");

    // Bonus: even though every conditional trial carries ≥ 3 distinct
    // errors (the worst case for prefix sharing), reordering still
    // eliminates the large majority of the computation.
    let report_cond = {
        let mut sorted = conditional.into_trials();
        noisy_qsim::redsim::order::reorder(&mut sorted);
        noisy_qsim::redsim::analysis::analyze_sorted(&layered, &sorted)?
    };
    println!(
        "reordering still saves {:.1}% on the all-multi-error conditional set",
        100.0 * report_cond.savings()
    );
    Ok(())
}
