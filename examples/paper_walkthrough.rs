//! A literate reproduction of the paper's Fig. 2 walkthrough (§IV.A/B):
//! four executions of a small circuit — three with one injected error each
//! and the error-free one — in both the inefficient order ①②③ and the
//! optimized order ③②①.
//!
//! Run with: `cargo run --example paper_walkthrough`

use noisy_qsim::circuit::Circuit;
use noisy_qsim::noise::{Injection, Pauli, Trial};
use noisy_qsim::redsim::analysis::analyze_sorted;
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::order::reorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-qubit circuit with three layers, in the spirit of Fig. 2: the
    // states after layer 1 and layer 2 are the paper's S1 and S2.
    let mut qc = Circuit::new("fig2", 2, 2);
    qc.h(0).h(1); // layer 0 (reaching S1)
    qc.cx(0, 1); // layer 1 (reaching S2)
    qc.h(0).h(1); // layer 2
    qc.measure_all();
    let layered = qc.layered()?;
    println!("circuit: {layered}");

    // The paper's four executions: ① error after layer 2, ② after layer 1,
    // ③ after layer 0, plus the error-free run (a).
    let one = Trial::new(vec![Injection::single(2, 0, Pauli::X)], 0, 1);
    let two = Trial::new(vec![Injection::single(1, 0, Pauli::X)], 0, 2);
    let three = Trial::new(vec![Injection::single(0, 0, Pauli::X)], 0, 3);
    let error_free = Trial::error_free(0);

    // Inefficient order ① ② ③ (a): every later trial branches *earlier*
    // than its predecessor, so nothing consecutive can be shared without
    // keeping S1 and S2 alive simultaneously — the paper's motivating
    // problem. Our executor reorders internally, so to show the contrast we
    // use the generation-order analysis:
    let inefficient = [one.clone(), two.clone(), three.clone(), error_free.clone()];
    let naive = noisy_qsim::redsim::analysis::analyze_generation_order(&layered, &inefficient)?;
    println!(
        "\ninefficient order ①②③(a): {} ops, {} snapshot states",
        naive.optimized_ops, naive.msv_peak
    );

    // Optimized order ③ ② ① (a): reorder sorts by the first error location.
    let mut trials = inefficient.to_vec();
    reorder(&mut trials);
    println!("optimized order:");
    for (i, t) in trials.iter().enumerate() {
        println!("  {}: {t}", i + 1);
    }
    let report = analyze_sorted(&layered, &trials)?;
    println!(
        "optimized:  {} ops (baseline {}), {} maintained state vector(s)",
        report.optimized_ops, report.baseline_ops, report.msv_peak
    );
    // The paper's headline for this example: only ONE state vector stored.
    assert_eq!(report.msv_peak, 1);

    // And the executors agree bitwise, as §IV.B promises ("mathematically
    // equivalent to the original simulation").
    let baseline = BaselineExecutor::new(&layered).run(&inefficient)?;
    let optimized = ReuseExecutor::new(&layered).run(&inefficient)?;
    assert_eq!(baseline.outcomes, optimized.outcomes);
    println!(
        "\nexecutors agree bitwise; reuse executor spent {} ops vs {} baseline",
        optimized.stats.ops, baseline.stats.ops
    );
    Ok(())
}
