//! Full front-to-back pipeline from OpenQASM source: parse → transpile to a
//! device → noisy Monte-Carlo simulation with redundancy elimination.
//!
//! Run with: `cargo run --example qasm_pipeline`

use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::CouplingMap;
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;

/// A GHZ-state preparation with a user-defined gate, as it might arrive
/// from an external toolchain.
const SOURCE: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];

// Entangle a pair, then extend to a GHZ state.
gate entangle a, b {
    h a;
    cx a, b;
}

entangle q[0], q[1];
cx q[1], q[2];
barrier q;
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parsed = noisy_qsim::qasm::parse(SOURCE)?;
    println!("parsed: {parsed}");

    let compiled = transpile(&parsed, &TranspileOptions::for_device(CouplingMap::yorktown()))?;
    println!("compiled: {}", compiled.circuit);

    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())?;
    sim.generate_trials(4096, 11)?;
    let report = sim.analyze()?;
    println!("analysis: {report}");

    let result = sim.run_reordered()?;
    let histogram = sim.histogram(&result);
    println!("\nnoisy GHZ distribution (ideal: 50/50 between 000 and 111):\n{histogram}");
    Ok(())
}
