//! The observatory's exactness contract, stated over every shipped
//! benchmark: a JSONL trace round-tripped through the offline analysis
//! engine must reproduce the executor's own accounting (`ExecStats`) and
//! the static analyzer's dry-run prediction (`CostReport`) — exact
//! equality, no sampling — and every internal conservation law checked by
//! [`TraceAnalysis::cross_check`] must hold. The rendered HTML report
//! must be self-contained (no external fetches).

use std::path::Path;

use noisy_qsim::noise::{NoiseModel, TrialGenerator};
use noisy_qsim::redsim::analysis::analyze;
use noisy_qsim::redsim::exec::ReuseExecutor;
use noisy_qsim::redsim::testkit;
use noisy_qsim::telemetry::{JsonlRecorder, TraceMeta};
use qsim_observatory::{render_html, render_json, Trace, TraceAnalysis};

const TRIALS: usize = 64;
const SEED: u64 = 2020;

fn shipped_benchmarks() -> Vec<(String, noisy_qsim::circuit::LayeredCircuit, NoiseModel)> {
    testkit::yorktown_benchmarks(Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks")))
}

#[test]
fn trace_analysis_matches_exec_stats_and_analyzer_on_all_shipped_benchmarks() {
    let dir = std::env::temp_dir().join(format!("observatory_matrix_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut checked = 0usize;
    for (name, layered, model) in shipped_benchmarks() {
        let generator = TrialGenerator::new(&layered, &model).expect("native circuit");
        let set = generator.generate(TRIALS, SEED);
        let cost = analyze(&layered, &set).expect("static analysis");

        let trace_path = dir.join(format!("{name}.trace.jsonl"));
        let trace_path = trace_path.to_str().expect("utf-8 temp path");
        let meta = TraceMeta {
            git_rev: "test".to_owned(),
            seed: SEED,
            qubits: layered.n_qubits() as u64,
            strategy: "reuse".to_owned(),
        };
        let run = {
            let recorder = JsonlRecorder::create(trace_path, &meta).expect("trace file");
            ReuseExecutor::new(&layered).run_traced(set.trials(), &recorder).expect("reuse run")
        };

        let trace = Trace::load(trace_path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = TraceAnalysis::from_trace(&trace);

        // Internal conservation laws first: kernel totals vs counters,
        // per-trial attribution, cache and MSV lifecycle accounting.
        let problems = analysis.cross_check();
        assert!(problems.is_empty(), "{name}: cross-check failed: {problems:?}");

        // Trace ↔ ExecStats: counter-for-counter equality.
        assert_eq!(analysis.counter("trials"), run.stats.n_trials as u64, "{name}: trials");
        assert_eq!(analysis.counter("ops"), run.stats.ops, "{name}: ops");
        assert_eq!(analysis.counter("fused_ops"), run.stats.fused_ops, "{name}: fused_ops");
        assert_eq!(
            analysis.counter("amplitude_passes"),
            run.stats.amplitude_passes,
            "{name}: amplitude_passes"
        );
        assert_eq!(
            analysis.total_kernel_count(),
            run.stats.amplitude_passes,
            "{name}: kernel histogram total"
        );
        assert_eq!(analysis.peak_residency, run.stats.peak_msv as u64, "{name}: MSV residency");
        let (hits, misses) = analysis.cache_totals();
        assert_eq!(hits + misses, TRIALS as u64, "{name}: one cache lookup per trial");
        assert_eq!(analysis.trials.len(), TRIALS, "{name}: one timeline slice per trial");

        // Trace ↔ CostReport: the static dry-run prediction is exact.
        assert_eq!(analysis.counter("ops"), cost.optimized_ops, "{name}: analyzer ops");
        assert_eq!(analysis.peak_residency, cost.msv_peak as u64, "{name}: analyzer MSV peak");

        // The derived per-layer attribution is complete: layer cells sum
        // to the pass total, and no layer index exceeds the circuit.
        let layer_total: u64 = analysis.by_layer.values().map(|c| c.count).sum();
        assert_eq!(layer_total, run.stats.amplitude_passes, "{name}: per-layer attribution");

        checked += 1;
    }
    std::fs::remove_dir_all(&dir).ok();
    assert!(checked >= 6, "expected the full Yorktown suite, checked {checked}");
}

#[test]
fn tree_traces_satisfy_every_conservation_law() {
    let dir = std::env::temp_dir().join(format!("observatory_tree_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for workload in testkit::tree_workloads(TRIALS, SEED) {
        let name = workload.name;
        let trace_path = dir.join(format!("{name}.trace.jsonl"));
        let trace_path = trace_path.to_str().expect("utf-8 temp path");
        let meta = TraceMeta {
            git_rev: "test".to_owned(),
            seed: SEED,
            qubits: workload.layered.n_qubits() as u64,
            strategy: "tree".to_owned(),
        };
        let run = {
            let recorder = JsonlRecorder::create(trace_path, &meta).expect("trace file");
            noisy_qsim::redsim::TreeExecutor::new(&workload.layered)
                .run_traced(workload.trials.trials(), &recorder)
                .expect("tree run")
        };

        let trace = Trace::load(trace_path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = TraceAnalysis::from_trace(&trace);

        // The offline cross-check includes the batched-sweep envelope
        // (`batch_sweeps <= fused_ops <= batch_sweeps * batch_width_max`).
        let problems = analysis.cross_check();
        assert!(problems.is_empty(), "{name}: cross-check failed: {problems:?}");

        assert_eq!(analysis.counter("trials"), run.stats.n_trials as u64, "{name}: trials");
        assert_eq!(analysis.counter("ops"), run.stats.ops, "{name}: ops");
        assert_eq!(
            analysis.counter("amplitude_passes"),
            run.stats.amplitude_passes,
            "{name}: amplitude_passes"
        );
        assert_eq!(
            analysis.total_kernel_count(),
            run.stats.amplitude_passes,
            "{name}: kernel histogram total"
        );
        assert_eq!(analysis.counter("batch_sweeps"), run.stats.batch_sweeps, "{name}: sweeps");
        assert_eq!(
            analysis.counter("batch_width_max"),
            run.stats.batch_width_max,
            "{name}: widest frontier"
        );
        assert_eq!(
            analysis.peak_residency, run.stats.peak_msv as u64,
            "{name}: frontier residency"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn html_report_is_self_contained_and_json_counters_match_stats() {
    let (name, layered, model) = shipped_benchmarks().into_iter().next().expect("suite");
    let generator = TrialGenerator::new(&layered, &model).expect("native circuit");
    let set = generator.generate(TRIALS, SEED);

    let dir = std::env::temp_dir().join(format!("observatory_html_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join(format!("{name}.trace.jsonl"));
    let trace_path = trace_path.to_str().expect("utf-8 temp path");
    let run = {
        let recorder =
            JsonlRecorder::create(trace_path, &TraceMeta::default()).expect("trace file");
        ReuseExecutor::new(&layered).run_traced(set.trials(), &recorder).expect("reuse run")
    };

    let trace = Trace::load(trace_path).expect("trace parses");
    let analysis = TraceAnalysis::from_trace(&trace);

    let html = render_html(&trace, &analysis);
    assert!(html.starts_with("<!DOCTYPE html>"), "HTML preamble");
    for banned in ["http://", "https://", "src=", "href="] {
        assert!(!html.contains(banned), "HTML report must be self-contained, found {banned:?}");
    }
    // The report's headline counters are the executor's own numbers.
    for value in [run.stats.ops, run.stats.fused_ops, run.stats.amplitude_passes] {
        assert!(html.contains(&value.to_string()), "HTML report missing counter {value}");
    }

    let json = render_json(&trace, &analysis);
    assert!(json.contains(&format!("\"ops\": {}", run.stats.ops)), "JSON ops counter");
    assert!(
        json.contains(&format!("\"amplitude_passes\": {}", run.stats.amplitude_passes)),
        "JSON amplitude_passes counter"
    );
    std::fs::remove_dir_all(&dir).ok();
}
