//! Cross-crate integration tests: the complete pipeline from logical
//! circuits (built or parsed from QASM), through transpilation, noise
//! modeling, trial reordering, and execution.

use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, to_qasm, CouplingMap};
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;

/// Compile + noisy-simulate every Table-I benchmark; baseline and reordered
/// executors must agree bitwise and the analyzer must predict both costs.
#[test]
fn whole_suite_executes_equivalently_under_yorktown_noise() {
    let options = TranspileOptions::for_device(CouplingMap::yorktown());
    for logical in catalog::realistic_suite() {
        let compiled = transpile(&logical, &options).expect("compiles");
        let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())
            .expect("model covers device");
        sim.generate_trials(200, 1).expect("generates");
        let report = sim.analyze().expect("analyzes");
        let baseline = sim.run_baseline().expect("baseline runs");
        let optimized = sim.run_reordered().expect("reordered runs");
        assert_eq!(baseline.outcomes, optimized.outcomes, "{}", logical.name());
        assert_eq!(baseline.stats.ops, report.baseline_ops, "{}", logical.name());
        assert_eq!(optimized.stats.ops, report.optimized_ops, "{}", logical.name());
        assert_eq!(optimized.stats.peak_msv, report.msv_peak, "{}", logical.name());
        assert!(report.savings() > 0.0, "{}: no saving", logical.name());
    }
}

/// QASM text → parse → transpile → noisy simulation, end to end.
#[test]
fn qasm_source_to_noisy_histogram() {
    let qasm = to_qasm(&catalog::bv(4, 0b011));
    let parsed = noisy_qsim::qasm::parse(&qasm).expect("emitted QASM parses");
    let compiled = transpile(&parsed, &TranspileOptions::for_device(CouplingMap::yorktown()))
        .expect("compiles");
    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())
        .expect("model covers device");
    sim.generate_trials(2048, 5).expect("generates");
    let result = sim.run_reordered().expect("runs");
    let histogram = sim.histogram(&result);
    // Noise is weak enough that the hidden string still dominates.
    assert!(
        histogram.probability(0b011) > 0.5,
        "hidden-string probability {}",
        histogram.probability(0b011)
    );
}

/// The deterministic 7x1 mod 15 benchmark survives the full noisy pipeline
/// with its modal outcome intact.
#[test]
fn modular_multiplication_modal_outcome_is_seven() {
    let compiled = transpile(
        &catalog::seven_x1_mod15(),
        &TranspileOptions::for_device(CouplingMap::yorktown()),
    )
    .expect("compiles");
    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())
        .expect("model covers device");
    sim.generate_trials(2048, 9).expect("generates");
    let result = sim.run_reordered().expect("runs");
    let histogram = sim.histogram(&result);
    let modal = (0..16u64)
        .max_by(|&a, &b| {
            histogram.probability(a).partial_cmp(&histogram.probability(b)).expect("finite")
        })
        .expect("nonempty");
    assert_eq!(modal, 7);
}

/// Trial-count scaling: the paper's central claim that more trials expose
/// more redundancy, on a compiled benchmark under the realistic model.
#[test]
fn savings_scale_with_trial_count_on_compiled_circuits() {
    let compiled =
        transpile(&catalog::qft(4), &TranspileOptions::for_device(CouplingMap::yorktown()))
            .expect("compiles");
    let mut sim = Simulation::from_circuit(&compiled.circuit, NoiseModel::ibm_yorktown())
        .expect("model covers device");
    let mut previous = f64::INFINITY;
    for n in [512usize, 2048, 8192] {
        sim.generate_trials(n, 3).expect("generates");
        let norm = sim.analyze().expect("analyzes").normalized_computation();
        assert!(norm < previous + 0.02, "{n} trials: {norm} vs {previous}");
        previous = norm;
    }
    assert!(previous < 0.35, "normalized computation {previous} at 8192 trials");
}

/// The analytic savings estimator predicts the measured savings of the
/// compiled realistic suite without generating a single trial.
#[test]
fn analytic_estimate_predicts_compiled_suite_savings() {
    use noisy_qsim::noise::TrialGenerator;
    use noisy_qsim::redsim::analysis::analyze;
    use noisy_qsim::redsim::estimate::estimate_first_order;
    let options = TranspileOptions::for_device(CouplingMap::yorktown());
    for logical in [catalog::bv(5, 0b1111), catalog::qft(5), catalog::grover_3q(2)] {
        let compiled = transpile(&logical, &options).expect("compiles");
        let layered = compiled.circuit.layered().expect("layers");
        let model = NoiseModel::ibm_yorktown();
        let generator = TrialGenerator::new(&layered, &model).expect("native");
        let predicted = estimate_first_order(&layered, &generator, 4096).normalized_computation();
        let measured = analyze(&layered, &generator.generate(4096, 7))
            .expect("analyzes")
            .normalized_computation();
        // The model ignores sharing beyond the first error, so it reads
        // high — by more as the expected error count λ grows (deep sharing
        // becomes common). Bound the relative excess by (1 + λ)/4.
        let lambda = generator.expected_injections();
        assert!(
            predicted >= measured - 0.02,
            "{}: prediction {predicted:.4} below measured {measured:.4}",
            logical.name()
        );
        let tolerance = (0.35 * measured * (1.0 + lambda)).max(0.02);
        assert!(
            (predicted - measured).abs() < tolerance,
            "{}: predicted {predicted:.4} vs measured {measured:.4} (lambda {lambda:.2})",
            logical.name()
        );
    }
}

/// Lower error rates expose more redundancy (the scalability claim), and
/// the binomial fast-path generator agrees with the direct one.
#[test]
fn error_rate_scaling_and_generator_agreement() {
    let layered = catalog::quantum_volume(8, 6, 3).layered().expect("layers");
    let mut norms = Vec::new();
    for rate in [2e-3, 2e-4] {
        let model = NoiseModel::artificial(8, rate);
        let mut sim = Simulation::new(layered.clone(), model).expect("native circuit");
        sim.generate_trials_fast(20_000, 7).expect("generates");
        let fast_norm = sim.analyze().expect("analyzes").normalized_computation();
        sim.generate_trials(20_000, 7).expect("generates");
        let direct_norm = sim.analyze().expect("analyzes").normalized_computation();
        assert!(
            (fast_norm - direct_norm).abs() < 0.05,
            "generators disagree: {fast_norm} vs {direct_norm}"
        );
        norms.push(fast_norm);
    }
    assert!(norms[1] < norms[0], "lower error rate must save more: {norms:?}");
}
