//! The advisor auto-select hook: `Simulation::run_advised_traced` compiles
//! the plan once, records its predictions into telemetry, and executes the
//! cheapest executable strategy — whose measured [`ExecStats`] must then
//! match the recorded prediction bitwise.

use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, Circuit};
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::Simulation;
use noisy_qsim::telemetry::AggregatingRecorder;

fn simulation(circuit: &Circuit, seed: u64) -> Simulation {
    let layered = transpile(circuit, &TranspileOptions::logical())
        .expect("transpile")
        .circuit
        .layered()
        .expect("layering");
    let model = NoiseModel::uniform(layered.n_qubits(), 0.01, 0.05, 0.02);
    let mut sim = Simulation::new(layered, model).expect("simulation");
    sim.generate_trials(64, seed).expect("trials");
    sim
}

fn catalog_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rb", catalog::rb()),
        ("grover_3q", catalog::grover_3q(1)),
        ("wstate_3q", catalog::wstate_3q()),
        ("bv", catalog::bv(5, 0b1011)),
        ("qft", catalog::qft(4)),
        ("rb_sequence", catalog::rb_sequence(6, 5)),
        ("ghz", catalog::ghz(5)),
        ("qpe", catalog::qpe(3, 1)),
        ("hidden_shift", catalog::hidden_shift(4, 0b0110)),
    ]
}

const SELECTED: &[&str] = &[
    "advisor.selected.sequential",
    "advisor.selected.fused",
    "advisor.selected.reuse",
    "advisor.selected.compressed",
    "advisor.selected.frame-tracking",
];

#[test]
fn advised_runs_match_their_recorded_predictions() {
    for (name, circuit) in catalog_circuits() {
        for seed in [1u64, 2, 3] {
            let sim = simulation(&circuit, seed);
            let recorder = AggregatingRecorder::new();
            let (result, chosen) = sim.run_advised_traced(&recorder).expect("advised run");
            let report = recorder.report();

            // The prediction the advisor committed to is the one measured.
            let label = format!("{name} seed {seed} ({})", chosen.strategy);
            assert_eq!(chosen.amplitude_passes, result.stats.amplitude_passes, "{label}: passes");
            assert_eq!(chosen.ops, result.stats.ops, "{label}: ops");
            assert_eq!(chosen.fused_ops, result.stats.fused_ops, "{label}: fused_ops");
            assert_eq!(chosen.msv_peak, result.stats.peak_msv, "{label}: msv_peak");

            // And the telemetry counters carry the same numbers.
            assert_eq!(
                report.counter("advisor.predicted_passes"),
                result.stats.amplitude_passes,
                "{label}: recorded pass prediction"
            );
            assert_eq!(
                report.counter("advisor.predicted_ops"),
                result.stats.ops,
                "{label}: recorded ops prediction"
            );
            assert_eq!(
                report.counter("advisor.predicted_msv"),
                result.stats.peak_msv as u64,
                "{label}: recorded msv prediction"
            );
            let selections: u64 = SELECTED.iter().map(|s| report.counter(s)).sum();
            assert_eq!(selections, 1, "{label}: exactly one strategy selected");
            assert_eq!(
                report.counter("advisor.selected.frame-tracking"),
                0,
                "{label}: frame tracking is never executable"
            );
        }
    }
}

#[test]
fn advised_run_agrees_with_baseline_outcomes() {
    let sim = simulation(&catalog::qft(4), 9);
    let (advised, _) = sim.run_advised().expect("advised run");
    let baseline = sim.run_baseline().expect("baseline run");
    assert_eq!(advised.outcomes, baseline.outcomes, "advised run changed measurement outcomes");
}

#[test]
fn advise_and_verify_share_one_plan_compilation() {
    // Regression for the duplicated-compile bug: asking for advice and
    // verifying the same plan must compile the fused program exactly once.
    let sim = simulation(&catalog::bv(5, 0b1011), 3);
    let recorder = AggregatingRecorder::new();
    let set = sim.trials().expect("trials generated");
    let plan = noisy_qsim::analyzer::ExecutionPlan::compile_traced(
        sim.layered(),
        set,
        usize::MAX,
        &recorder,
    );
    let advice = noisy_qsim::analyzer::advise(&plan);
    let plan = plan.with_advice(advice);
    let diags = noisy_qsim::analyzer::verify(&plan);
    assert!(diags.is_empty(), "{}", noisy_qsim::analyzer::render_tty(&diags));
    assert!(plan.advice.is_some());
    assert_eq!(
        recorder.report().counter("plan.fuse_compile"),
        1,
        "advise + verify re-compiled the fused program"
    );
}
