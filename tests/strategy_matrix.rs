//! The full strategy matrix: every execution strategy × every compiled
//! Table-I benchmark × both trial generators must produce outcomes bitwise
//! identical to the baseline. This is the repository's broadest single
//! correctness statement. A second matrix sweeps the same strategies over
//! the canonical execution-tree shapes from `testkit::tree_workloads`, so
//! the batched tree executor is exercised on every trie shape it
//! specializes for.

use noisy_qsim::circuit::LayeredCircuit;
use noisy_qsim::noise::{NoiseModel, Trial, TrialGenerator};
use noisy_qsim::redsim::compressed::run_reordered_compressed;
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::parallel::run_reordered_parallel;
use noisy_qsim::redsim::testkit;
use noisy_qsim::redsim::TreeExecutor;
use noisy_qsim::statevec::MeasureOutcome;

/// Every non-baseline strategy's outcomes for one workload, labelled.
fn all_strategies(
    layered: &LayeredCircuit,
    trials: &[Trial],
) -> Vec<(&'static str, Vec<MeasureOutcome>)> {
    vec![
        ("reuse", ReuseExecutor::new(layered).run(trials).expect("reuse").outcomes),
        (
            "budget-1",
            ReuseExecutor::new(layered).run_with_budget(trials, 1).expect("budget").outcomes,
        ),
        (
            "budget-2",
            ReuseExecutor::new(layered).run_with_budget(trials, 2).expect("budget").outcomes,
        ),
        ("compressed", run_reordered_compressed(layered, trials).expect("compressed").0.outcomes),
        ("tree", TreeExecutor::new(layered).run(trials).expect("tree").outcomes),
        ("parallel-3", run_reordered_parallel(layered, trials, 3).expect("parallel").outcomes),
    ]
}

#[test]
fn every_strategy_agrees_on_every_benchmark() {
    let model = NoiseModel::ibm_yorktown();
    let mut checked = 0usize;
    for (name, layered) in testkit::yorktown_suite() {
        let generator = TrialGenerator::new(&layered, &model).expect("native");
        for (label, set) in
            [("direct", generator.generate(150, 3)), ("fast", generator.generate_fast(150, 3))]
        {
            let reference = BaselineExecutor::new(&layered).run(set.trials()).expect("baseline");
            for (strategy, outcomes) in all_strategies(&layered, set.trials()) {
                assert_eq!(
                    outcomes, reference.outcomes,
                    "{name} / {label} generator / {strategy} diverged"
                );
                checked += 1;
            }
        }
    }
    // 12 benchmarks × 2 generators × 6 strategies.
    assert_eq!(checked, 144);
}

#[test]
fn every_strategy_agrees_on_every_tree_shape() {
    let mut checked = 0usize;
    for workload in testkit::tree_workloads(96, 2020) {
        let reference = BaselineExecutor::new(&workload.layered)
            .run(workload.trials.trials())
            .expect("baseline");
        for (strategy, outcomes) in all_strategies(&workload.layered, workload.trials.trials()) {
            assert_eq!(
                outcomes, reference.outcomes,
                "{} shape / {strategy} diverged",
                workload.name
            );
            checked += 1;
        }
    }
    // 6 shapes × 6 strategies.
    assert_eq!(checked, 36);
}
