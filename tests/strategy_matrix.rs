//! The full strategy matrix: every execution strategy × every compiled
//! Table-I benchmark × both trial generators must produce outcomes bitwise
//! identical to the baseline. This is the repository's broadest single
//! correctness statement.

use noisy_qsim::noise::{NoiseModel, TrialGenerator};
use noisy_qsim::redsim::compressed::run_reordered_compressed;
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::parallel::run_reordered_parallel;
use noisy_qsim::redsim::testkit;

#[test]
fn every_strategy_agrees_on_every_benchmark() {
    let model = NoiseModel::ibm_yorktown();
    let mut checked = 0usize;
    for (name, layered) in testkit::yorktown_suite() {
        let generator = TrialGenerator::new(&layered, &model).expect("native");
        for (label, set) in
            [("direct", generator.generate(150, 3)), ("fast", generator.generate_fast(150, 3))]
        {
            let reference = BaselineExecutor::new(&layered).run(set.trials()).expect("baseline");
            let strategies: Vec<(&str, Vec<_>)> = vec![
                ("reuse", ReuseExecutor::new(&layered).run(set.trials()).expect("reuse").outcomes),
                (
                    "budget-1",
                    ReuseExecutor::new(&layered)
                        .run_with_budget(set.trials(), 1)
                        .expect("budget")
                        .outcomes,
                ),
                (
                    "budget-2",
                    ReuseExecutor::new(&layered)
                        .run_with_budget(set.trials(), 2)
                        .expect("budget")
                        .outcomes,
                ),
                (
                    "compressed",
                    run_reordered_compressed(&layered, set.trials())
                        .expect("compressed")
                        .0
                        .outcomes,
                ),
                (
                    "parallel-3",
                    run_reordered_parallel(&layered, set.trials(), 3).expect("parallel").outcomes,
                ),
            ];
            for (strategy, outcomes) in strategies {
                assert_eq!(
                    outcomes, reference.outcomes,
                    "{name} / {label} generator / {strategy} diverged"
                );
                checked += 1;
            }
        }
    }
    // 12 benchmarks × 2 generators × 5 strategies.
    assert_eq!(checked, 120);
}
