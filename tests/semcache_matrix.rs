//! The semantic prefix cache's exactness contract, stated over every
//! shipped benchmark and three seeds: outcomes, `ExecStats`, and
//! histograms must be bitwise identical across the uncached reordered
//! run, the cold cached run (store consulted, prefix published), and the
//! warm cached run (prefix restored from disk). The cache may only change
//! where amplitudes come from — never what they are.

use std::path::Path;

use noisy_qsim::msvstore::MsvStore;
use noisy_qsim::noise::NoiseModel;
use noisy_qsim::redsim::testkit;
use noisy_qsim::redsim::{RunResult, Simulation};

const SEEDS: [u64; 3] = [2020, 7, 99];
const TRIALS: usize = 48;

fn shipped_benchmarks() -> Vec<(String, noisy_qsim::circuit::LayeredCircuit, NoiseModel)> {
    testkit::shipped_benchmarks(Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks")))
}

fn assert_identical(name: &str, seed: u64, pass: &str, got: &RunResult, want: &RunResult) {
    assert_eq!(got.stats, want.stats, "{name} seed {seed}: {pass} ExecStats drifted");
    assert_eq!(got.outcomes, want.outcomes, "{name} seed {seed}: {pass} outcomes drifted");
}

#[test]
fn cached_runs_are_bitwise_identical_across_shipped_catalog_and_seeds() {
    let dir = std::env::temp_dir().join(format!("semcache_matrix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = MsvStore::open(&dir, 0).expect("store opens");
    let mut checked = 0usize;
    let mut warm_hits = 0usize;
    for (name, layered, model) in shipped_benchmarks() {
        for seed in SEEDS {
            let mut sim = Simulation::new(layered.clone(), model.clone())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sim.generate_trials(TRIALS, seed).unwrap_or_else(|e| panic!("{name}: {e}"));

            let uncached = sim.run_reordered().unwrap_or_else(|e| panic!("{name}: {e}"));
            let (cold, cold_cache) =
                sim.run_reordered_cached(&store).unwrap_or_else(|e| panic!("{name}: {e}"));
            let (warm, warm_cache) =
                sim.run_reordered_cached(&store).unwrap_or_else(|e| panic!("{name}: {e}"));

            assert_identical(&name, seed, "cold", &cold, &uncached);
            assert_identical(&name, seed, "warm", &warm, &uncached);
            let hist: Vec<(u64, u64)> = sim.histogram(&uncached).iter().collect();
            for result in [&cold, &warm] {
                let got: Vec<(u64, u64)> = sim.histogram(result).iter().collect();
                assert_eq!(got, hist, "{name} seed {seed}: histogram drifted");
            }

            // Every run is keyed, and after the cold run the key is
            // resident (hit or published), so the warm run always hits.
            assert!(cold_cache.key.is_some(), "{name} seed {seed}: uncacheable");
            assert_eq!(
                cold_cache.key, warm_cache.key,
                "{name} seed {seed}: key must be a pure function of the workload"
            );
            assert!(
                cold_cache.hit || cold_cache.stored,
                "{name} seed {seed}: cold run neither hit nor published"
            );
            assert!(warm_cache.hit, "{name} seed {seed}: warm run missed");
            warm_hits += 1;
            checked += 1;
        }
    }
    assert!(checked >= 30, "suite shrank: only {checked} benchmark x seed cells");
    assert_eq!(warm_hits, checked);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_points_share_their_prefix_across_runs() {
    let dir = std::env::temp_dir().join(format!("semcache_sweep_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = MsvStore::open(&dir, 0).expect("store opens");
    let (model, points) = testkit::vqa_sweep(5, 4, 3, 8, 11);
    for point in &points {
        let mut sim = Simulation::new(point.layered.clone(), model.clone()).expect("valid model");
        sim.set_trials(point.trials.clone()).expect("trial geometry matches");
        let uncached = sim.run_reordered().expect("sweep point runs");
        let (cold, cold_cache) = sim.run_reordered_cached(&store).expect("sweep point runs");
        let (warm, warm_cache) = sim.run_reordered_cached(&store).expect("sweep point runs");
        assert_identical(&point.name, 11, "cold", &cold, &uncached);
        assert_identical(&point.name, 11, "warm", &warm, &uncached);
        assert!(!cold_cache.hit, "{}: distinct angles must not collide", point.name);
        assert!(warm_cache.hit, "{}: rerun must restore from disk", point.name);
        assert_eq!(
            cold_cache.prefix_layer,
            point.layered.n_layers() - 1,
            "{}: tail-concentrated errors cache the whole pre-measurement state",
            point.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
