//! The batched tree executor's differential matrix: on the 13-circuit
//! catalog × 3 seeds, tree outcomes and histograms must be bitwise
//! identical to the fused baseline, sequential reuse, compressed reuse,
//! and both msvstore passes (cold and warm); its pass accounting must
//! equal unbounded reuse; its frontier peak must equal the distinct
//! injection-list count the advisor predicts; and every sweep must stay
//! inside the batched envelope. This suite is the differential harness
//! for THEORY.md §13's batched-sweep exactness claim.

use noisy_qsim::analyzer::{advise, ExecutionPlan, Strategy};
use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, Circuit, LayeredCircuit};
use noisy_qsim::msvstore::MsvStore;
use noisy_qsim::noise::{Injection, NoiseModel, Trial};
use noisy_qsim::redsim::{RunResult, Simulation};

const SEEDS: [u64; 3] = [2020, 7, 99];
const TRIALS: usize = 64;

fn native(circuit: &Circuit) -> LayeredCircuit {
    transpile(circuit, &TranspileOptions::logical())
        .expect("transpile")
        .circuit
        .layered()
        .expect("layering")
}

/// The same 13-circuit catalog the advisor matrix sweeps.
fn catalog_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rb", catalog::rb()),
        ("grover_3q", catalog::grover_3q(1)),
        ("grover", catalog::grover(3, 0b101, 1)),
        ("wstate_3q", catalog::wstate_3q()),
        ("seven_x1_mod15", catalog::seven_x1_mod15()),
        ("bv", catalog::bv(5, 0b1011)),
        ("qft", catalog::qft(4)),
        ("quantum_volume", catalog::quantum_volume(4, 3, 11)),
        ("rb_sequence", catalog::rb_sequence(6, 5)),
        ("ghz", catalog::ghz(5)),
        ("qpe", catalog::qpe(3, 1)),
        ("adder_2bit", catalog::adder_2bit(2, 3)),
        ("hidden_shift", catalog::hidden_shift(4, 0b0110)),
    ]
}

/// The buffer-steal theorem's closed form for the tree frontier peak.
fn distinct_injection_lists(trials: &[Trial]) -> usize {
    let mut lists: Vec<&[Injection]> = trials.iter().map(Trial::injections).collect();
    lists.sort_unstable();
    lists.dedup();
    lists.len()
}

#[track_caller]
fn assert_bitwise(label: &str, sim: &Simulation, got: &RunResult, want: &RunResult) {
    assert_eq!(got.outcomes, want.outcomes, "{label}: outcomes diverged");
    let hist: Vec<(u64, u64)> = sim.histogram(want).iter().collect();
    let got_hist: Vec<(u64, u64)> = sim.histogram(got).iter().collect();
    assert_eq!(got_hist, hist, "{label}: histogram diverged");
}

#[test]
fn tree_runs_are_bitwise_identical_across_catalog_seeds_and_cache_passes() {
    let dir = std::env::temp_dir().join(format!("tree_matrix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = MsvStore::open(&dir, 0).expect("store opens");
    let mut checked = 0usize;
    for (name, circuit) in catalog_circuits() {
        let layered = native(&circuit);
        let model = NoiseModel::uniform(layered.n_qubits(), 0.01, 0.05, 0.02);
        let mut sim =
            Simulation::new(layered.clone(), model).unwrap_or_else(|e| panic!("{name}: {e}"));
        for seed in SEEDS {
            sim.generate_trials(TRIALS, seed).unwrap_or_else(|e| panic!("{name}: {e}"));
            let label = |s: &str| format!("{name} seed {seed} vs {s}");

            let tree = sim.run_tree().unwrap_or_else(|e| panic!("{name}: {e}"));
            let fused = sim.run_baseline().unwrap_or_else(|e| panic!("{name}: {e}"));
            let reuse = sim.run_reordered().unwrap_or_else(|e| panic!("{name}: {e}"));
            let (compressed, _) =
                sim.run_reordered_compressed().unwrap_or_else(|e| panic!("{name}: {e}"));
            let (cold, cold_cache) =
                sim.run_reordered_cached(&store).unwrap_or_else(|e| panic!("{name}: {e}"));
            let (warm, warm_cache) =
                sim.run_reordered_cached(&store).unwrap_or_else(|e| panic!("{name}: {e}"));

            // Bitwise physics: batching changes which state is touched
            // next, never what happens to it.
            assert_bitwise(&label("fused baseline"), &sim, &tree, &fused);
            assert_bitwise(&label("sequential reuse"), &sim, &tree, &reuse);
            assert_bitwise(&label("compressed"), &sim, &tree, &compressed);
            assert_bitwise(&label("cold msvstore"), &sim, &tree, &cold);
            assert_bitwise(&label("warm msvstore"), &sim, &tree, &warm);
            assert!(
                cold_cache.hit || cold_cache.stored,
                "{name} seed {seed}: cold run neither hit nor published"
            );
            assert!(warm_cache.hit, "{name} seed {seed}: warm run missed");

            // Pass accounting: the tree performs exactly the unbounded
            // reuse walk, one amplitude pass per state per fused op.
            assert_eq!(
                (tree.stats.ops, tree.stats.fused_ops, tree.stats.amplitude_passes),
                (reuse.stats.ops, reuse.stats.fused_ops, reuse.stats.amplitude_passes),
                "{name} seed {seed}: pass accounting diverged from reuse"
            );

            // The batched-sweep envelope: each sweep covers between one
            // state and the widest recorded frontier.
            let sweeps = tree.stats.batch_sweeps;
            let width = tree.stats.batch_width_max;
            assert!(
                tree.stats.fused_ops >= sweeps && tree.stats.fused_ops <= sweeps * width.max(1),
                "{name} seed {seed}: fused_ops {} outside [{}, {}]",
                tree.stats.fused_ops,
                sweeps,
                sweeps * width.max(1)
            );

            // Buffer-steal closed form, and the advisor's prediction of
            // it — every field of the tree prediction is exact.
            let set = sim.trials().expect("generated");
            let distinct = distinct_injection_lists(set.trials());
            assert_eq!(tree.stats.peak_msv, distinct, "{name} seed {seed}: frontier peak");
            let plan = ExecutionPlan::compile(&layered, set, usize::MAX);
            let advice = advise(&plan);
            let p = advice.prediction(Strategy::Tree).expect("tree ranked");
            assert_eq!(p.msv_peak, tree.stats.peak_msv, "{name} seed {seed}: predicted peak");
            assert_eq!(p.ops, tree.stats.ops, "{name} seed {seed}: predicted ops");
            assert_eq!(p.fused_ops, tree.stats.fused_ops, "{name} seed {seed}: predicted fused");
            assert_eq!(
                p.amplitude_passes, tree.stats.amplitude_passes,
                "{name} seed {seed}: predicted passes"
            );

            checked += 1;
        }
    }
    // 13 catalog circuits × 3 seeds.
    assert_eq!(checked, 39);
    let _ = std::fs::remove_dir_all(&dir);
}
