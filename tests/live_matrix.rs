//! The live observability plane's exactness contract, stated over every
//! shipped Yorktown benchmark and every execution strategy: the final
//! [`LiveSnapshot`] taken after a traced run must reconcile **bitwise**
//! with the executor's own accounting (`ExecStats`) — trials, ops, fused
//! kernels, amplitude passes, credited passes, cache hits — and the
//! published JSON must round-trip through the observatory's `LiveView`
//! with every conservation law intact. The live plane is an observation
//! surface, not an estimate: if it drifts from the executor by one count,
//! these tests fail.

use std::path::Path;

use noisy_qsim::msvstore::MsvStore;
use noisy_qsim::noise::TrialGenerator;
use noisy_qsim::redsim::compressed::run_reordered_compressed_traced;
use noisy_qsim::redsim::exec::{BaselineExecutor, ExecStats, ReuseExecutor};
use noisy_qsim::redsim::parallel::{run_baseline_parallel_traced, run_reordered_parallel_traced};
use noisy_qsim::redsim::semcache::run_reordered_cached_traced;
use noisy_qsim::redsim::testkit;
use noisy_qsim::telemetry::{
    AggregatingRecorder, LiveRecorder, LiveSnapshot, Recorder, TeeRecorder, TraceMeta,
};
use qsim_observatory::{ExpectedStats, LiveView};

const TRIALS: usize = 64;
const SEED: u64 = 2020;

fn meta(strategy: &str, qubits: usize) -> TraceMeta {
    TraceMeta {
        git_rev: "live-matrix".to_owned(),
        seed: SEED,
        qubits: qubits as u64,
        strategy: strategy.to_owned(),
    }
}

/// Reconcile one final snapshot against the run's `ExecStats` plus the
/// independent figures (credited passes, cache hits) the tee'd aggregating
/// recorder observed, both directly and through the observatory round-trip.
fn reconcile(
    label: &str,
    snapshot: &LiveSnapshot,
    stats: &ExecStats,
    credited_passes: u64,
    cache_hits: u64,
) {
    // One heartbeat per completed trial, each carrying a delta of one.
    assert_eq!(snapshot.trials_total, stats.n_trials as u64, "{label}: trials_total");
    assert_eq!(snapshot.trials_done, stats.n_trials as u64, "{label}: trials_done");
    assert_eq!(snapshot.heartbeats, stats.n_trials as u64, "{label}: one heartbeat per trial");

    // Counter-for-counter equality with the executor's accounting.
    assert_eq!(snapshot.ops, stats.ops, "{label}: ops");
    assert_eq!(snapshot.fused_ops, stats.fused_ops, "{label}: fused_ops");
    assert_eq!(snapshot.amplitude_passes, stats.amplitude_passes, "{label}: amplitude_passes");

    // Kernel-application conservation: every amplitude pass was either
    // observed as a kernel event or credited by the semantic store.
    assert_eq!(snapshot.credited_passes, credited_passes, "{label}: credited_passes");
    assert_eq!(
        snapshot.passes + snapshot.credited_passes,
        stats.amplitude_passes,
        "{label}: executed + credited passes"
    );

    // Round-trip: the published JSON must parse back, pass every
    // conservation law, and reconcile bitwise against the same figures.
    let view = LiveView::parse(&snapshot.render_json())
        .unwrap_or_else(|e| panic!("{label}: published snapshot rejected: {e}"));
    assert!(view.finished(), "{label}: final snapshot must read as finished");
    let problems = view.cross_check();
    assert!(problems.is_empty(), "{label}: cross-check failed:\n  {}", problems.join("\n  "));
    let expected = ExpectedStats {
        trials: stats.n_trials as u64,
        ops: stats.ops,
        fused_ops: stats.fused_ops,
        amplitude_passes: stats.amplitude_passes,
        credited_passes: Some(credited_passes),
        cache_hits: Some(cache_hits),
    };
    let problems = view.reconcile(&expected);
    assert!(problems.is_empty(), "{label}: reconciliation failed:\n  {}", problems.join("\n  "));
}

#[test]
fn final_snapshots_reconcile_bitwise_with_exec_stats_across_all_strategies() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks"));
    let mut checked = 0usize;
    for (name, layered, model) in testkit::yorktown_benchmarks(root) {
        let set =
            TrialGenerator::new(&layered, &model).expect("native circuit").generate(TRIALS, SEED);
        let trials = set.trials();
        let qubits = layered.n_qubits();

        type Runner<'a> = Box<dyn Fn(&dyn Recorder) -> ExecStats + 'a>;
        let strategies: Vec<(&str, bool, Runner)> = vec![
            (
                "baseline",
                true,
                Box::new(|r: &dyn Recorder| {
                    BaselineExecutor::new(&layered).run_traced(trials, r).expect("baseline").stats
                }),
            ),
            (
                "reuse",
                true,
                Box::new(|r: &dyn Recorder| {
                    ReuseExecutor::new(&layered).run_traced(trials, r).expect("reuse").stats
                }),
            ),
            (
                "budget-2",
                true,
                Box::new(|r: &dyn Recorder| {
                    ReuseExecutor::new(&layered)
                        .run_with_budget_traced(trials, 2, r)
                        .expect("budget")
                        .stats
                }),
            ),
            (
                "compressed",
                true,
                Box::new(|r: &dyn Recorder| {
                    run_reordered_compressed_traced(&layered, trials, r)
                        .expect("compressed")
                        .0
                        .stats
                }),
            ),
            (
                "parallel-baseline",
                false,
                Box::new(|r: &dyn Recorder| {
                    run_baseline_parallel_traced(&layered, trials, 3, r).expect("parallel").stats
                }),
            ),
            (
                "parallel-reuse",
                false,
                Box::new(|r: &dyn Recorder| {
                    run_reordered_parallel_traced(&layered, trials, 3, r).expect("parallel").stats
                }),
            ),
        ];

        for (strategy, sequential, run) in &strategies {
            let label = format!("{name} / {strategy}");
            let live = LiveRecorder::new(&meta(strategy, qubits), TRIALS as u64);
            let aggregate = AggregatingRecorder::new();
            let tee = TeeRecorder::new(&aggregate, &live);
            let stats = run(&tee);
            let snapshot = live.snapshot();

            // Cache hits come from the independent aggregating recorder,
            // not from the snapshot under test.
            let (agg_hits, agg_misses) = aggregate.report().cache_totals();
            assert_eq!(snapshot.cache_hits, agg_hits, "{label}: cache_hits vs aggregate");
            assert_eq!(snapshot.cache_misses, agg_misses, "{label}: cache_misses vs aggregate");
            reconcile(&label, &snapshot, &stats, 0, agg_hits);

            // Sequential executors expose an exact MSV residency trail;
            // parallel workers interleave theirs, so only the sequential
            // peaks are pinned to the executor's accounting.
            if *sequential {
                assert_eq!(snapshot.msv_peak, stats.peak_msv as u64, "{label}: msv_peak");
            }
            checked += 1;
        }
    }
    // 12 benchmarks x 6 strategies.
    assert_eq!(checked, 72);
}

#[test]
fn cached_runs_reconcile_credited_passes_cold_and_warm() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks"));
    let dir = std::env::temp_dir().join(format!("live_matrix_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut warm_credits = 0u64;
    for (index, (name, layered, model)) in
        testkit::yorktown_benchmarks(root).into_iter().enumerate()
    {
        // A fresh store per benchmark: semantically equivalent prefixes
        // recur across the suite (including repeated parsed names), and a
        // shared store would warm them up.
        let store = MsvStore::open(&dir.join(format!("bench{index}")), 0).expect("store opens");
        let set =
            TrialGenerator::new(&layered, &model).expect("native circuit").generate(TRIALS, SEED);
        let trials = set.trials();
        let qubits = layered.n_qubits();

        // Cold: the store is consulted (one miss), nothing is credited.
        let live = LiveRecorder::new(&meta("cached", qubits), TRIALS as u64);
        let aggregate = AggregatingRecorder::new();
        let tee = TeeRecorder::new(&aggregate, &live);
        let (cold, cold_outcome) =
            run_reordered_cached_traced(&layered, &model, trials, &store, &tee).expect("cold run");
        let snapshot = live.snapshot();
        assert!(!cold_outcome.hit, "{name}: cold run must miss");
        assert_eq!((snapshot.store_hits, snapshot.store_misses), (0, 1), "{name}: cold store");
        let (agg_hits, _) = aggregate.report().cache_totals();
        reconcile(&format!("{name} / cached-cold"), &snapshot, &cold.stats, 0, agg_hits);

        // Warm: the prefix is restored, and the passes it skipped are
        // credited — executed + credited must still equal the executor's
        // amplitude-pass total bitwise.
        let live = LiveRecorder::new(&meta("cached", qubits), TRIALS as u64);
        let aggregate = AggregatingRecorder::new();
        let tee = TeeRecorder::new(&aggregate, &live);
        let (warm, warm_outcome) =
            run_reordered_cached_traced(&layered, &model, trials, &store, &tee).expect("warm run");
        let snapshot = live.snapshot();
        assert!(warm_outcome.hit, "{name}: warm run must hit");
        assert_eq!((snapshot.store_hits, snapshot.store_misses), (1, 0), "{name}: warm store");
        let (agg_hits, _) = aggregate.report().cache_totals();
        reconcile(
            &format!("{name} / cached-warm"),
            &snapshot,
            &warm.stats,
            warm_outcome.credited_passes,
            agg_hits,
        );
        assert_eq!(warm.stats, cold.stats, "{name}: caching changed the accounting");
        warm_credits += warm_outcome.credited_passes;
    }
    assert!(warm_credits > 0, "no warm run credited any work — the store never engaged");
    let _ = std::fs::remove_dir_all(&dir);
}
