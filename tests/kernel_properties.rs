//! Property tests for the specialized kernel engine: algebraic laws that
//! must hold for *every* matrix the classifier routes to a fast path.
//!
//! * A gate followed by its adjoint, both through their specialized
//!   kernels, restores the state to within `1e-12`.
//! * The product of two diagonal operators classifies back into the
//!   diagonal kernel family, and the composed kernel equals applying the
//!   factors in sequence.
//! * Permutation kernels preserve the norm — exactly (bitwise) when their
//!   phases are drawn from `{±1, ±i}`, whose products with amplitudes are
//!   sign/component swaps.

use proptest::prelude::*;

use noisy_qsim::redsim::testkit::random_state;
use noisy_qsim::statevec::{FusedOp, Matrix2, Matrix4, StateVector, C64};

const TOL: f64 = 1e-12;

fn arb_angle() -> impl Strategy<Value = f64> {
    -6.3f64..6.3f64
}

fn arb_u() -> impl Strategy<Value = Matrix2> {
    (arb_angle(), arb_angle(), arb_angle()).prop_map(|(t, p, l)| Matrix2::u(t, p, l))
}

/// A matrix from each one-qubit kernel family the classifier knows.
fn arb_1q_kernel_matrix() -> impl Strategy<Value = Matrix2> {
    prop_oneof![
        arb_angle().prop_map(Matrix2::phase), // phase1
        (arb_angle(), arb_angle()).prop_map(|(a, b)| {
            Matrix2::rz(a) * Matrix2::phase(b) // diag1
        }),
        arb_angle().prop_map(|t| Matrix2::x() * Matrix2::phase(t)), // perm1
        arb_u(),                                                    // dense1
    ]
}

/// A matrix from each two-qubit kernel family the classifier knows.
fn arb_2q_kernel_matrix() -> impl Strategy<Value = Matrix4> {
    prop_oneof![
        arb_angle().prop_map(Matrix4::cphase),
        arb_angle().prop_map(|t| Matrix4::controlled(&Matrix2::rz(t))),
        arb_u().prop_map(|u| Matrix4::controlled(&u)),
        (arb_angle(), arb_angle())
            .prop_map(|(a, b)| Matrix4::kron(&Matrix2::rz(a), &Matrix2::rz(b))),
        Just(Matrix4::cx()),
        Just(Matrix4::swap()),
        (arb_u(), arb_u()).prop_map(|(a, b)| Matrix4::kron(&a, &b)),
    ]
}

fn max_deviation(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes().iter().zip(b.amplitudes()).map(|(x, y)| (x - y).norm()).fold(0.0, f64::max)
}

fn diagonal_family(name: &str) -> bool {
    matches!(name, "phase1" | "diag1")
}

proptest! {
    #[test]
    fn gate_then_adjoint_through_specialized_kernels_restores_the_state(
        m in arb_1q_kernel_matrix(),
        q in 0usize..4,
        seed in 0u64..32,
    ) {
        let original = random_state(4, seed);
        let mut s = original.clone();
        s.apply_fused(&FusedOp::classify_1q(&m, q)).unwrap();
        s.apply_fused(&FusedOp::classify_1q(&m.adjoint(), q)).unwrap();
        let dev = max_deviation(&s, &original);
        prop_assert!(dev <= TOL, "round trip deviated by {dev:e}");
    }

    #[test]
    fn gate_then_adjoint_through_specialized_2q_kernels_restores_the_state(
        m in arb_2q_kernel_matrix(),
        low in 0usize..4,
        delta in 1usize..4,
        seed in 0u64..32,
    ) {
        // delta ∈ 1..4 keeps `high` distinct from `low` modulo 4.
        let high = (low + delta) % 4;
        let original = random_state(4, seed);
        let mut s = original.clone();
        s.apply_fused(&FusedOp::classify_2q(&m, low, high)).unwrap();
        s.apply_fused(&FusedOp::classify_2q(&m.adjoint(), low, high)).unwrap();
        let dev = max_deviation(&s, &original);
        prop_assert!(dev <= TOL, "round trip deviated by {dev:e}");
    }

    #[test]
    fn diagonal_kernels_compose_within_the_diagonal_family(
        a in arb_angle(),
        b in arb_angle(),
        c in arb_angle(),
        q in 0usize..3,
        seed in 0u64..16,
    ) {
        let d1 = Matrix2::rz(a) * Matrix2::phase(b);
        let d2 = Matrix2::phase(c);
        prop_assert!(diagonal_family(FusedOp::classify_1q(&d1, q).kernel_name()));
        prop_assert!(diagonal_family(FusedOp::classify_1q(&d2, q).kernel_name()));
        // Closure: the product classifies into the diagonal family too.
        let product = d2 * d1;
        let composed = FusedOp::classify_1q(&product, q);
        prop_assert!(
            diagonal_family(composed.kernel_name()),
            "diag∘diag classified as {}",
            composed.kernel_name()
        );
        // And the composed kernel is the sequential application.
        let mut sequential = random_state(3, seed);
        let mut fused = sequential.clone();
        sequential.apply_fused(&FusedOp::classify_1q(&d1, q)).unwrap();
        sequential.apply_fused(&FusedOp::classify_1q(&d2, q)).unwrap();
        fused.apply_fused(&composed).unwrap();
        let dev = max_deviation(&fused, &sequential);
        prop_assert!(dev <= TOL, "composition deviated by {dev:e}");
    }

    #[test]
    fn quarter_turn_permutation_kernels_preserve_probabilities_bitwise(
        kind in 0usize..3,
        phase_idx in 0usize..4,
        q in 0usize..4,
        delta in 1usize..4,
        seed in 0u64..32,
    ) {
        // Phases in {1, i, −1, −i}: multiplying an amplitude by one of
        // these only swaps/negates its components, so each |amp|² —
        // computed as re·re + im·im — is bit-for-bit unchanged. A
        // permutation kernel with such phases must preserve the multiset
        // of probability bit patterns exactly, not just approximately.
        let zero = C64::new(0.0, 0.0);
        let phase = [
            C64::new(1.0, 0.0),
            C64::new(0.0, 1.0),
            C64::new(-1.0, 0.0),
            C64::new(0.0, -1.0),
        ][phase_idx];
        let state = random_state(4, seed);
        let mut s = state.clone();
        let p = (q + delta) % 4;
        let op = match kind {
            0 => FusedOp::classify_1q(&Matrix2([[zero, phase], [phase, zero]]), q),
            1 => FusedOp::classify_2q(&Matrix4::cx(), q.min(p), q.max(p)),
            _ => FusedOp::classify_2q(&Matrix4::swap(), q.min(p), q.max(p)),
        };
        let expected_kernel = ["perm1", "cx", "perm2"][kind];
        prop_assert_eq!(op.kernel_name(), expected_kernel);
        s.apply_fused(&op).unwrap();
        let probs = |sv: &StateVector| {
            let mut bits: Vec<u64> =
                sv.amplitudes().iter().map(|a| a.norm_sqr().to_bits()).collect();
            bits.sort_unstable();
            bits
        };
        prop_assert_eq!(probs(&state), probs(&s), "probability multiset changed");
    }

    #[test]
    fn general_permutation_kernels_preserve_the_norm(
        t in arb_angle(),
        q in 0usize..4,
        seed in 0u64..32,
    ) {
        let mut s = random_state(4, seed);
        let op = FusedOp::classify_1q(&(Matrix2::x() * Matrix2::phase(t)), q);
        prop_assert_eq!(op.kernel_name(), "perm1");
        s.apply_fused(&op).unwrap();
        prop_assert!((s.norm_sqr() - 1.0).abs() <= TOL);
    }
}
