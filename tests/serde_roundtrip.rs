//! JSON round-trips for the workspace's data structures (the root crate's
//! dev-dependencies enable the `serde` features).

use noisy_qsim::analyzer::{DiagCode, Diagnostic, Location, Severity};
use noisy_qsim::circuit::{catalog, Circuit, CouplingMap, LayeredCircuit};
use noisy_qsim::noise::{NoiseModel, PauliWeights, TrialGenerator, TrialSet};
use noisy_qsim::redsim::{CostReport, Simulation};
use noisy_qsim::statevec::{MeasureOutcome, Pauli, PauliString, StateVector, StoredState};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn statevec_types_roundtrip() {
    assert_eq!(roundtrip(&Pauli::Y), Pauli::Y);
    let outcome = MeasureOutcome::from_index(0b101, 4);
    assert_eq!(roundtrip(&outcome), outcome);
    let mut psi = StateVector::zero_state(3);
    psi.apply_1q(&noisy_qsim::statevec::Matrix2::u(0.7, 0.2, -0.4), 1).expect("valid");
    assert_eq!(roundtrip(&psi), psi);
    let stored = StoredState::compress(&StateVector::basis_state(6, 9).expect("valid"));
    assert_eq!(roundtrip(&stored), stored);
    let pauli_string: PauliString = "ZIX".parse().expect("parses");
    assert_eq!(roundtrip(&pauli_string), pauli_string);
}

#[test]
fn circuit_types_roundtrip() {
    let circuit = catalog::qft(4);
    let recovered: Circuit = roundtrip(&circuit);
    assert_eq!(recovered, circuit);
    // The recovered circuit still simulates to the same state.
    let a = circuit.simulate().expect("simulates");
    let b = recovered.simulate().expect("simulates");
    assert!(a.fidelity(&b).expect("same width") > 1.0 - 1e-12);
    let layered: LayeredCircuit = circuit.layered().expect("layers");
    assert_eq!(roundtrip(&layered), layered);
    let map = CouplingMap::yorktown();
    assert_eq!(roundtrip(&map), map);
}

#[test]
fn noise_types_roundtrip() {
    let weights = PauliWeights::new(1e-3, 2e-3, 3e-3).expect("valid");
    assert_eq!(roundtrip(&weights), weights);
    let mut model = NoiseModel::ibm_yorktown();
    model.set_idle_weights_all(PauliWeights::dephasing(1e-4));
    assert_eq!(roundtrip(&model), model);
    let layered = catalog::bv(4, 0b101).layered().expect("layers");
    let trials: TrialSet = TrialGenerator::new(&layered, &NoiseModel::uniform(4, 0.05, 0.2, 0.1))
        .expect("native")
        .generate(100, 3);
    assert_eq!(roundtrip(&trials), trials);
}

#[test]
fn reports_roundtrip_and_replay_is_exact() {
    let mut sim =
        Simulation::from_circuit(&catalog::bv(4, 0b111), NoiseModel::uniform(4, 1e-2, 5e-2, 1e-2))
            .expect("valid model");
    sim.generate_trials(200, 9).expect("generates");
    let report: CostReport = sim.analyze().expect("analyzes");
    assert_eq!(roundtrip(&report), report);
    let result = sim.run_reordered().expect("runs");
    assert_eq!(roundtrip(&result.stats), result.stats);
    // Full replay through JSON: serialize trials, reload, re-run, identical
    // outcomes.
    let trials_json = serde_json::to_string(sim.trials().expect("generated")).expect("serializes");
    let reloaded: TrialSet = serde_json::from_str(&trials_json).expect("deserializes");
    let mut sim2 =
        Simulation::from_circuit(&catalog::bv(4, 0b111), NoiseModel::uniform(4, 1e-2, 5e-2, 1e-2))
            .expect("valid model");
    sim2.set_trials(reloaded).expect("geometry matches");
    let replayed = sim2.run_reordered().expect("runs");
    assert_eq!(replayed.outcomes, result.outcomes);
}

#[test]
fn diagnostics_roundtrip() {
    let diag = Diagnostic::new(
        DiagCode::UseAfterDrop,
        Location::trial(5).at_layer(2),
        "frame 3 read after drop".to_owned(),
    );
    let recovered = roundtrip(&diag);
    assert_eq!(recovered, diag);
    assert_eq!(recovered.severity, Severity::Error);
    // The code serializes as its string form, so external tooling can match
    // on "MSV001" without knowing the enum.
    let json = serde_json::to_string(&diag).expect("serializes");
    assert!(json.contains("\"MSV001\""), "code missing from {json}");
    let warn = Diagnostic::new(DiagCode::EmptyTrialSet, Location::none(), "no trials".to_owned());
    assert_eq!(roundtrip(&warn), warn);
}

#[test]
fn legacy_reports_without_new_fields_still_load() {
    // JSON captured before `fused_ops`/`amplitude_passes` (ExecStats) and
    // `msv_path_peak` (CostReport) existed must still deserialize, with the
    // missing fields defaulting to zero.
    let stats: noisy_qsim::redsim::ExecStats =
        serde_json::from_str(r#"{"ops":120,"peak_msv":3,"n_trials":40}"#).expect("legacy stats");
    assert_eq!(stats.ops, 120);
    assert_eq!(stats.fused_ops, 0);
    assert_eq!(stats.amplitude_passes, 0);
    assert_eq!(stats.peak_msv, 3);
    let report: CostReport = serde_json::from_str(
        r#"{"n_trials":40,"gates_per_trial":12,"baseline_ops":520,"optimized_ops":260,"msv_peak":3}"#,
    )
    .expect("legacy report");
    assert_eq!(report.optimized_ops, 260);
    assert_eq!(report.msv_path_peak, 0);
    // A field that was never optional still errors when missing.
    assert!(serde_json::from_str::<CostReport>(r#"{"n_trials":40}"#).is_err());
}
