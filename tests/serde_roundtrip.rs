//! JSON round-trips for the workspace's data structures (the root crate's
//! dev-dependencies enable the `serde` features).

use noisy_qsim::circuit::{catalog, Circuit, CouplingMap, LayeredCircuit};
use noisy_qsim::noise::{NoiseModel, PauliWeights, TrialGenerator, TrialSet};
use noisy_qsim::redsim::{CostReport, Simulation};
use noisy_qsim::statevec::{MeasureOutcome, Pauli, PauliString, StateVector, StoredState};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn statevec_types_roundtrip() {
    assert_eq!(roundtrip(&Pauli::Y), Pauli::Y);
    let outcome = MeasureOutcome::from_index(0b101, 4);
    assert_eq!(roundtrip(&outcome), outcome);
    let mut psi = StateVector::zero_state(3);
    psi.apply_1q(&noisy_qsim::statevec::Matrix2::u(0.7, 0.2, -0.4), 1).expect("valid");
    assert_eq!(roundtrip(&psi), psi);
    let stored = StoredState::compress(&StateVector::basis_state(6, 9).expect("valid"));
    assert_eq!(roundtrip(&stored), stored);
    let pauli_string: PauliString = "ZIX".parse().expect("parses");
    assert_eq!(roundtrip(&pauli_string), pauli_string);
}

#[test]
fn circuit_types_roundtrip() {
    let circuit = catalog::qft(4);
    let recovered: Circuit = roundtrip(&circuit);
    assert_eq!(recovered, circuit);
    // The recovered circuit still simulates to the same state.
    let a = circuit.simulate().expect("simulates");
    let b = recovered.simulate().expect("simulates");
    assert!(a.fidelity(&b).expect("same width") > 1.0 - 1e-12);
    let layered: LayeredCircuit = circuit.layered().expect("layers");
    assert_eq!(roundtrip(&layered), layered);
    let map = CouplingMap::yorktown();
    assert_eq!(roundtrip(&map), map);
}

#[test]
fn noise_types_roundtrip() {
    let weights = PauliWeights::new(1e-3, 2e-3, 3e-3).expect("valid");
    assert_eq!(roundtrip(&weights), weights);
    let mut model = NoiseModel::ibm_yorktown();
    model.set_idle_weights_all(PauliWeights::dephasing(1e-4));
    assert_eq!(roundtrip(&model), model);
    let layered = catalog::bv(4, 0b101).layered().expect("layers");
    let trials: TrialSet = TrialGenerator::new(&layered, &NoiseModel::uniform(4, 0.05, 0.2, 0.1))
        .expect("native")
        .generate(100, 3);
    assert_eq!(roundtrip(&trials), trials);
}

#[test]
fn reports_roundtrip_and_replay_is_exact() {
    let mut sim =
        Simulation::from_circuit(&catalog::bv(4, 0b111), NoiseModel::uniform(4, 1e-2, 5e-2, 1e-2))
            .expect("valid model");
    sim.generate_trials(200, 9).expect("generates");
    let report: CostReport = sim.analyze().expect("analyzes");
    assert_eq!(roundtrip(&report), report);
    let result = sim.run_reordered().expect("runs");
    assert_eq!(roundtrip(&result.stats), result.stats);
    // Full replay through JSON: serialize trials, reload, re-run, identical
    // outcomes.
    let trials_json = serde_json::to_string(sim.trials().expect("generated")).expect("serializes");
    let reloaded: TrialSet = serde_json::from_str(&trials_json).expect("deserializes");
    let mut sim2 =
        Simulation::from_circuit(&catalog::bv(4, 0b111), NoiseModel::uniform(4, 1e-2, 5e-2, 1e-2))
            .expect("valid model");
    sim2.set_trials(reloaded).expect("geometry matches");
    let replayed = sim2.run_reordered().expect("runs");
    assert_eq!(replayed.outcomes, result.outcomes);
}
