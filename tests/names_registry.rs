//! The names-registry exhaustiveness gate: every counter or span name
//! spelled as a string literal at a production call site anywhere under
//! `crates/` must appear in the telemetry registry
//! (`names::COUNTERS_ALL` / `names::SPANS_ALL`). Emitters use the
//! registry constants, but consumers (the observatory's cross-checks)
//! read counters back by spelled name — a typo there silently reads zero
//! forever. This test greps the workspace so the registry stays the
//! single source of truth.

use std::path::{Path, PathBuf};

use noisy_qsim::telemetry::names;

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Every string literal opened immediately after `pattern`, e.g. the `X`
/// of `.counter("X"` for pattern `.counter("`.
fn literals_after<'a>(text: &'a str, pattern: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(pattern) {
        rest = &rest[pos + pattern.len()..];
        if let Some(end) = rest.find('"') {
            out.push(&rest[..end]);
            rest = &rest[end..];
        }
    }
    out
}

#[test]
fn every_spelled_counter_and_span_name_is_registered() {
    let crates = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/crates"));
    let mut files = Vec::new();
    rust_sources(crates, &mut files);
    assert!(files.len() >= 20, "workspace walk found only {} sources", files.len());

    let mut spelled = 0usize;
    for path in &files {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Only production code: inline test modules follow their
        // `#[cfg(test)]` attribute by workspace convention, and tests are
        // free to spell throwaway names.
        let production = text.split("#[cfg(test)]").next().expect("split is non-empty");
        for name in literals_after(production, ".counter(\"") {
            assert!(
                names::COUNTERS_ALL.contains(&name),
                "{}: counter \"{name}\" is not in names::COUNTERS_ALL",
                path.display()
            );
            spelled += 1;
        }
        for name in literals_after(production, ".span(\"") {
            assert!(
                names::SPANS_ALL.contains(&name),
                "{}: span \"{name}\" is not in names::SPANS_ALL",
                path.display()
            );
            spelled += 1;
        }
    }
    // The observatory's cross-checks alone spell over a dozen counter
    // reads; finding fewer means the extraction broke, not the workspace.
    assert!(spelled >= 12, "only {spelled} spelled names found — extraction is broken");
}
