//! Differential conformance suite for the specialized kernel engine.
//!
//! Every specialized apply path (phase, diagonal, permutation, controlled,
//! cache-blocked dense) is checked against the generic dense kernel — and
//! the generic kernels themselves against a naive textbook loop — on
//! randomized fully-entangled states, across edge placements: lowest and
//! highest qubit, adjacent and non-adjacent pairs, control above and below
//! the target. Amplitude deviation must stay within `1e-12`; measurement
//! outcomes through the full executor stack must be bitwise identical.

use noisy_qsim::redsim::compressed::run_reordered_compressed;
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::parallel::run_reordered_parallel;
use noisy_qsim::redsim::testkit::{random_circuit, random_state, uniform_workload, XorShift64};
use noisy_qsim::statevec::{FusedOp, Matrix2, Matrix4, StateVector, C64};

const TOL: f64 = 1e-12;

fn max_deviation(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes().iter().zip(b.amplitudes()).map(|(x, y)| (x - y).norm()).fold(0.0, f64::max)
}

fn assert_close(a: &StateVector, b: &StateVector, label: &str) {
    let dev = max_deviation(a, b);
    assert!(dev <= TOL, "{label}: max amplitude deviation {dev:e} > {TOL:e}");
}

/// Textbook indexed-loop reference for a one-qubit apply.
fn naive_1q(amps: &[C64], m: &Matrix2, qubit: usize) -> Vec<C64> {
    let mut out = amps.to_vec();
    let mask = 1usize << qubit;
    for i in 0..amps.len() {
        if i & mask == 0 {
            let j = i | mask;
            out[i] = m.0[0][0] * amps[i] + m.0[0][1] * amps[j];
            out[j] = m.0[1][0] * amps[i] + m.0[1][1] * amps[j];
        }
    }
    out
}

/// Textbook indexed-loop reference for a two-qubit apply over local index
/// `2·bit(high) + bit(low)`.
fn naive_2q(amps: &[C64], m: &Matrix4, low: usize, high: usize) -> Vec<C64> {
    let mut out = amps.to_vec();
    let (ml, mh) = (1usize << low, 1usize << high);
    for i in 0..amps.len() {
        if i & ml == 0 && i & mh == 0 {
            let idx = [i, i | ml, i | mh, i | ml | mh];
            for r in 0..4 {
                let mut acc = C64::new(0.0, 0.0);
                for (c, &source) in idx.iter().enumerate() {
                    acc += m.0[r][c] * amps[source];
                }
                out[idx[r]] = acc;
            }
        }
    }
    out
}

fn edge_states(n: usize) -> Vec<(String, StateVector)> {
    let dim = 1usize << n;
    let mut uniform = StateVector::zero_state(n);
    for q in 0..n {
        uniform.apply_1q(&Matrix2::h(), q).expect("valid qubit");
    }
    let mut states = vec![
        ("zero".to_owned(), StateVector::zero_state(n)),
        ("ones".to_owned(), StateVector::basis_state(n, dim - 1).expect("in range")),
        ("uniform".to_owned(), uniform),
    ];
    for seed in [1u64, 7] {
        states.push((format!("random{seed}"), random_state(n, seed)));
    }
    states
}

#[test]
fn blocked_dense_1q_sweep_is_bitwise_identical_to_naive_loop() {
    // n = 12 with a high target pushes the stride past the 512-pair tile,
    // exercising the cache-blocked path; small n exercise the short path.
    for (n, qubits) in
        [(1usize, vec![0usize]), (2, vec![0, 1]), (3, vec![0, 1, 2]), (12, vec![0, 5, 10, 11])]
    {
        let mut rng = XorShift64::new(n as u64);
        for &q in &qubits {
            let m = Matrix2::u(6.3 * rng.next_f64(), 6.3 * rng.next_f64(), 6.3 * rng.next_f64());
            for (label, state) in edge_states(n) {
                let reference = naive_1q(state.amplitudes(), &m, q);
                let mut swept = state.clone();
                swept.apply_1q(&m, q).expect("valid qubit");
                // Same multiply-add expressions in the same order: the
                // blocked sweep must agree bit for bit, not just closely.
                assert_eq!(
                    swept.amplitudes(),
                    &reference[..],
                    "n={n} q={q} {label}: blocked sweep drifted from the naive loop"
                );
            }
        }
    }
}

#[test]
fn dense_2q_kernel_matches_naive_loop() {
    for (n, pairs) in [
        (2usize, vec![(0usize, 1usize)]),
        (3, vec![(0, 1), (0, 2), (1, 2)]),
        (6, vec![(0, 1), (0, 5), (2, 3), (1, 4)]),
    ] {
        let mut rng = XorShift64::new(17 + n as u64);
        for &(low, high) in &pairs {
            let m = Matrix4::kron(
                &Matrix2::u(6.3 * rng.next_f64(), 6.3 * rng.next_f64(), 6.3 * rng.next_f64()),
                &Matrix2::u(6.3 * rng.next_f64(), 6.3 * rng.next_f64(), 6.3 * rng.next_f64()),
            );
            for (label, state) in edge_states(n) {
                let reference = naive_2q(state.amplitudes(), &m, low, high);
                let mut applied = state.clone();
                applied.apply_2q(&m, low, high).expect("valid pair");
                let dev = applied
                    .amplitudes()
                    .iter()
                    .zip(&reference)
                    .map(|(x, y)| (x - y).norm())
                    .fold(0.0, f64::max);
                assert!(dev <= TOL, "n={n} ({low},{high}) {label}: deviation {dev:e}");
            }
        }
    }
}

#[test]
fn specialized_1q_kernels_match_the_dense_apply() {
    let mut rng = XorShift64::new(99);
    let theta = 2.0 * std::f64::consts::PI * rng.next_f64();
    let cases: Vec<(&str, Matrix2, &str)> = vec![
        ("z", Matrix2::z(), "phase1"),
        ("t", Matrix2::t(), "phase1"),
        ("phase", Matrix2::phase(theta), "phase1"),
        ("rz", Matrix2::rz(0.4), "diag1"),
        ("rz-rand", Matrix2::rz(theta), "diag1"),
        ("x", Matrix2::x(), "perm1"),
        ("y", Matrix2::y(), "perm1"),
        ("h", Matrix2::h(), "dense1"),
        ("u-rand", Matrix2::u(theta, theta / 2.0, theta / 3.0), "dense1"),
    ];
    for n in [1usize, 2, 3, 5, 8] {
        // Lowest, highest, and a middle qubit.
        let mut qubits = vec![0, n - 1, n / 2];
        qubits.dedup();
        for &q in &qubits {
            for (gate, m, expected) in &cases {
                let op = FusedOp::classify_1q(m, q);
                assert_eq!(
                    op.kernel_name(),
                    *expected,
                    "{gate} on qubit {q} classified as {}",
                    op.kernel_name()
                );
                for (label, state) in edge_states(n) {
                    let mut dense = state.clone();
                    dense.apply_1q(m, q).expect("valid qubit");
                    let mut specialized = state.clone();
                    specialized.apply_fused(&op).expect("valid op");
                    assert_close(&specialized, &dense, &format!("{gate} (n={n}, q={q}, {label})"));
                }
            }
        }
    }
}

#[test]
fn specialized_2q_kernels_match_the_dense_apply() {
    let mut rng = XorShift64::new(2020);
    let theta = 2.0 * std::f64::consts::PI * rng.next_f64();
    let iswap = {
        let i = C64::new(0.0, 1.0);
        let zero = C64::new(0.0, 0.0);
        let one = C64::new(1.0, 0.0);
        Matrix4([
            [one, zero, zero, zero],
            [zero, zero, i, zero],
            [zero, i, zero, zero],
            [zero, zero, zero, one],
        ])
    };
    let cases: Vec<(&str, Matrix4, &str)> = vec![
        ("cz", Matrix4::cz(), "cphase2"),
        ("cphase", Matrix4::cphase(theta), "cphase2"),
        ("crz", Matrix4::controlled(&Matrix2::rz(theta)), "cdiag1"),
        ("crz-low", Matrix4::controlled(&Matrix2::rz(theta)).swapped_operands(), "cdiag1"),
        ("cx", Matrix4::cx(), "cx"),
        ("cx-low", Matrix4::cx().swapped_operands(), "cx"),
        ("ch", Matrix4::controlled(&Matrix2::h()), "ctrl1"),
        ("ch-low", Matrix4::controlled(&Matrix2::h()).swapped_operands(), "ctrl1"),
        ("cy", Matrix4::controlled(&Matrix2::y()), "ctrl1"),
        ("cu", Matrix4::controlled(&Matrix2::u(theta, 0.3, 0.9)), "ctrl1"),
        ("swap", Matrix4::swap(), "perm2"),
        ("iswap", iswap, "perm2"),
        ("rz⊗rz", Matrix4::kron(&Matrix2::rz(0.3), &Matrix2::rz(theta)), "diag2"),
        ("u⊗u", Matrix4::kron(&Matrix2::u(theta, 0.1, 0.7), &Matrix2::h()), "dense2"),
    ];
    for n in [2usize, 3, 6] {
        // Adjacent and maximally separated pairs, both operand orders, so
        // controls land both above and below their targets.
        let mut pairs = vec![(0usize, 1usize), (1, 0), (0, n - 1), (n - 1, 0)];
        if n >= 4 {
            pairs.push((2, 3));
            pairs.push((3, 1));
        }
        pairs.retain(|(a, b)| a != b);
        pairs.dedup();
        for &(low, high) in &pairs {
            for (gate, m, expected) in &cases {
                let op = FusedOp::classify_2q(m, low, high);
                assert_eq!(
                    op.kernel_name(),
                    *expected,
                    "{gate} on ({low},{high}) classified as {}",
                    op.kernel_name()
                );
                for (label, state) in edge_states(n) {
                    let mut dense = state.clone();
                    dense.apply_2q(m, low, high).expect("valid pair");
                    let mut specialized = state.clone();
                    specialized.apply_fused(&op).expect("valid op");
                    assert_close(
                        &specialized,
                        &dense,
                        &format!("{gate} (n={n}, pair=({low},{high}), {label})"),
                    );
                }
            }
        }
    }
}

#[test]
fn executor_stack_outcomes_are_bitwise_identical_on_random_circuits() {
    for seed in [1u64, 2, 3, 4] {
        let circuit = random_circuit(5, 60, seed);
        let (layered, set) = uniform_workload(&circuit, (1e-2, 5e-2, 2e-2), 200, seed);
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).expect("baseline");
        let reuse = ReuseExecutor::new(&layered).run(set.trials()).expect("reuse");
        let (compressed, _) = run_reordered_compressed(&layered, set.trials()).expect("compressed");
        let parallel = run_reordered_parallel(&layered, set.trials(), 3).expect("parallel");
        assert_eq!(reuse.outcomes, baseline.outcomes, "seed {seed}: reuse diverged");
        assert_eq!(compressed.outcomes, baseline.outcomes, "seed {seed}: compressed diverged");
        assert_eq!(parallel.outcomes, baseline.outcomes, "seed {seed}: parallel diverged");
    }
}
