//! Golden semantic keys: the canonicalizer's output for fixed workloads,
//! pinned to committed hex strings. These keys name on-disk artifacts
//! that survive across processes and versions — any drift silently
//! invalidates every existing cache, so drift must be a deliberate,
//! reviewed change (bump the domain tag when the format changes).

use noisy_qsim::circuit::catalog;
use noisy_qsim::msvstore::{SemanticKey, DEFAULT_SEED_POLICY};
use noisy_qsim::noise::NoiseModel;
use std::f64::consts::PI;

fn key_hex(circuit: &noisy_qsim::circuit::Circuit, model: &NoiseModel, layer: usize) -> String {
    let layered = circuit.layered().expect("catalog circuit layers");
    SemanticKey::compute(&layered, layer, model, DEFAULT_SEED_POLICY).hex()
}

#[test]
fn seed_policy_tag_is_pinned() {
    assert_eq!(DEFAULT_SEED_POLICY, "stdrng-per-trial-v1");
}

#[test]
fn canonical_keys_match_their_committed_values() {
    let uniform = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
    let hot = NoiseModel::uniform(4, 2e-3, 2e-2, 2e-2);
    let cases: [(&str, String, &str); 4] = [
        ("ghz4@1", key_hex(&catalog::ghz(4), &uniform, 1), "fc902494e859c7d8462d88b2c706e541"),
        (
            "bv4(0b101)@2",
            key_hex(&catalog::bv(4, 0b101), &uniform, 2),
            "f421b2c967e1b4f95ad7947821f3e00f",
        ),
        ("qft4@3", key_hex(&catalog::qft(4), &hot, 3), "fdb409e0d662c99a0c17e21ae18e70d0"),
        (
            "vqa4x2@6",
            key_hex(&catalog::vqa_ansatz(4, 2, PI / 3.0), &uniform, 6),
            "9e44aecfade0adf3c41139076047ba3e",
        ),
    ];
    for (name, got, want) in &cases {
        assert_eq!(got, want, "{name}: semantic key drifted from its committed value");
    }
}

#[test]
fn keys_separate_every_semantic_ingredient() {
    let uniform = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
    let hot = NoiseModel::uniform(4, 2e-3, 2e-2, 2e-2);
    let base = key_hex(&catalog::ghz(4), &uniform, 1);
    assert_ne!(base, key_hex(&catalog::ghz(4), &uniform, 2), "prefix layer must key");
    assert_ne!(base, key_hex(&catalog::ghz(4), &hot, 1), "noise model must key");
    assert_ne!(base, key_hex(&catalog::bv(4, 0b101), &uniform, 1), "circuit must key");
    let layered = catalog::ghz(4).layered().expect("layers");
    assert_ne!(
        base,
        SemanticKey::compute(&layered, 1, &uniform, "other-policy-v0").hex(),
        "seed policy must key"
    );
    // The VQA sweep parameter lives in the tail: it must change the
    // whole-circuit key but not a prefix cut below the final layer.
    let a = catalog::vqa_ansatz(4, 2, PI / 3.0);
    let b = catalog::vqa_ansatz(4, 2, PI / 5.0);
    assert_ne!(key_hex(&a, &uniform, 6), key_hex(&b, &uniform, 6));
    assert_eq!(key_hex(&a, &uniform, 3), key_hex(&b, &uniform, 3));
}
