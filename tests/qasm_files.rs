//! The shipped `benchmarks/*.qasm` files must stay loadable and equivalent
//! to the catalog builders that generated them.

use std::path::Path;

use noisy_qsim::circuit::{catalog, Circuit};

fn load(path: &Path) -> Circuit {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("{}: {e} (run `cargo run -p redsim-bench --bin export_qasm`)", path.display())
    });
    noisy_qsim::qasm::parse(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn assert_equivalent(file: &Circuit, built: &Circuit) {
    let a = file.simulate().expect("file circuit simulates");
    let b = built.simulate().expect("catalog circuit simulates");
    let fidelity = a.fidelity(&b).expect("same width");
    assert!(fidelity > 1.0 - 1e-9, "{}: fidelity {fidelity}", built.name());
}

#[test]
fn every_shipped_logical_file_parses_and_simulates() {
    let dir = Path::new("benchmarks/logical");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("benchmarks/logical exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("qasm") {
            continue;
        }
        let circuit = load(&path);
        assert!(circuit.n_qubits() > 0, "{}", path.display());
        let state = circuit.simulate().expect("simulates");
        assert!((state.norm_sqr() - 1.0).abs() < 1e-9, "{}", path.display());
        seen += 1;
    }
    assert!(seen >= 16, "only {seen} logical benchmark files found");
}

#[test]
fn shipped_files_match_their_catalog_builders() {
    let pairs: Vec<(&str, Circuit)> = vec![
        ("bv4", catalog::bv(4, 0b111)),
        ("qft4", catalog::qft(4)),
        ("wstate", catalog::wstate_3q()),
        ("7x1mod15", catalog::seven_x1_mod15()),
        ("ghz4", catalog::ghz(4)),
        ("hs4", catalog::hidden_shift(4, 0b1011)),
    ];
    for (name, built) in pairs {
        let file = load(&Path::new("benchmarks/logical").join(format!("{name}.qasm")));
        assert_equivalent(&file, &built);
    }
}

#[test]
fn compiled_files_respect_yorktown_and_simulate_noisily() {
    use noisy_qsim::noise::NoiseModel;
    use noisy_qsim::redsim::Simulation;
    let path = Path::new("benchmarks/yorktown/bv4.qasm");
    let circuit = load(path);
    assert_eq!(circuit.n_qubits(), 5);
    let mut sim = Simulation::from_circuit(&circuit, NoiseModel::ibm_yorktown())
        .expect("compiled file is native");
    sim.generate_trials(512, 1).expect("generates");
    let result = sim.run_reordered().expect("runs");
    let histogram = sim.histogram(&result);
    assert!(histogram.probability(0b111) > 0.5);
}
