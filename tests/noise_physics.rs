//! Physics-level integration tests: the Monte-Carlo machinery must converge
//! to the exact quantum channel, and noise must act the way hardware noise
//! acts (degrading algorithmic success smoothly).

use noisy_qsim::circuit::{catalog, Circuit};
use noisy_qsim::noise::{NoiseModel, TrialGenerator};
use noisy_qsim::redsim::exec::ReuseExecutor;
use noisy_qsim::redsim::{Histogram, Simulation};
use noisy_qsim::statevec::{DensityMatrix, Matrix2};

/// Monte-Carlo over the reuse executor vs exact density-matrix channel for a
/// 3-qubit GHZ circuit with per-gate depolarizing + readout noise.
#[test]
fn ghz_monte_carlo_matches_exact_channel() {
    let mut qc = Circuit::new("ghz", 3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measure_all();
    let layered = qc.layered().expect("layers");
    let (p1, p2, pm) = (0.05, 0.12, 0.04);
    let model = NoiseModel::uniform(3, p1, p2, pm);

    // Exact: the same gate/noise sequence on the density matrix.
    let mut rho = DensityMatrix::zero_state(3).expect("small register");
    rho.apply_1q(&Matrix2::h(), 0).expect("valid");
    rho.depolarize_1q(0, p1).expect("valid");
    rho.apply_cx(0, 1).expect("valid");
    rho.depolarize_2q(0, 1, p2).expect("valid");
    rho.apply_cx(1, 2).expect("valid");
    rho.depolarize_2q(1, 2, p2).expect("valid");
    let exact = rho.readout_distribution(&[pm; 3]).expect("width matches");

    let trials =
        TrialGenerator::new(&layered, &model).expect("native circuit").generate(80_000, 99);
    let result = ReuseExecutor::new(&layered).run(trials.trials()).expect("runs");
    let histogram = Histogram::from_outcomes(3, &result.outcomes);
    let tv = histogram.tv_distance(&exact);
    assert!(tv < 0.01, "total-variation distance {tv}");
}

/// Success probability decreases monotonically (within sampling noise) as
/// the error rate grows.
#[test]
fn success_probability_degrades_smoothly_with_noise() {
    let circuit = catalog::bv(4, 0b111);
    let mut last_success = 1.1f64;
    for scale in [0.0, 1.0, 4.0, 16.0] {
        let model = NoiseModel::uniform(4, 1e-3 * scale, 1e-2 * scale, 1e-2 * scale);
        let mut sim = Simulation::from_circuit(&circuit, model).expect("valid model");
        sim.generate_trials(6000, 11).expect("generates");
        let result = sim.run_reordered().expect("runs");
        let histogram = sim.histogram(&result);
        let success = histogram.probability(0b111);
        assert!(
            success <= last_success + 0.03,
            "scale {scale}: success {success} did not degrade (prev {last_success})"
        );
        last_success = success;
    }
    // Heavy noise must visibly hurt but not collapse to zero.
    assert!(last_success < 0.9 && last_success > 0.05, "final success {last_success}");
}

/// Zero noise: every trial is the error-free trial; the full Monte-Carlo
/// reduces to a single circuit execution plus sampling, and the histogram
/// matches the Born distribution exactly in shape.
#[test]
fn zero_noise_reduces_to_born_sampling() {
    let circuit = catalog::wstate_3q();
    let model = NoiseModel::uniform(3, 0.0, 0.0, 0.0);
    let mut sim = Simulation::from_circuit(&circuit, model).expect("valid model");
    sim.generate_trials(30_000, 5).expect("generates");
    let report = sim.analyze().expect("analyzes");
    // One shared execution: gates are computed exactly once.
    assert_eq!(report.optimized_ops, report.gates_per_trial);
    let result = sim.run_reordered().expect("runs");
    let histogram = sim.histogram(&result);
    for idx in [0b001u64, 0b010, 0b100] {
        let p = histogram.probability(idx);
        assert!((p - 1.0 / 3.0).abs() < 0.02, "P({idx:03b}) = {p}");
    }
}

/// Measurement errors alone (no gate noise) act as independent classical
/// bit flips on the ideal outcome.
#[test]
fn readout_errors_flip_bits_at_the_modeled_rate() {
    let circuit = catalog::bv(4, 0b000); // ideal outcome 000
    let flip = 0.2;
    let model = NoiseModel::uniform(4, 0.0, 0.0, flip);
    let mut sim = Simulation::from_circuit(&circuit, model).expect("valid model");
    sim.generate_trials(40_000, 13).expect("generates");
    let result = sim.run_reordered().expect("runs");
    let histogram = sim.histogram(&result);
    // Each data bit flips independently: P(exactly one specific bit set)
    // = 0.2 · 0.8² = 0.128; P(000) = 0.8³ = 0.512.
    assert!((histogram.probability(0b000) - 0.512).abs() < 0.02);
    for pattern in [0b001u64, 0b010, 0b100] {
        assert!((histogram.probability(pattern) - 0.128).abs() < 0.02);
    }
}
