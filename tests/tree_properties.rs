//! Property tests for the batched tree executor, over *random* circuits,
//! noise intensities, and trial budgets rather than the fixed catalog:
//!
//! * Tree outcomes are bitwise identical to the sequential reuse walk and
//!   the fused baseline, and the pass accounting matches unbounded reuse.
//! * The frontier peak equals the distinct injection-list count — the
//!   buffer-steal closed form — and the advisor predicts it exactly.
//! * Branching clones preserve each state's norm, and sweeping a frontier
//!   through the batched kernels is bit-for-bit the sequential per-state
//!   application of the same fused ops.

use proptest::prelude::*;

use noisy_qsim::analyzer::{advise, ExecutionPlan, Strategy as ExecStrategy};
use noisy_qsim::circuit::LayeredCircuit;
use noisy_qsim::noise::{Injection, NoiseModel, Pauli, Trial, TrialGenerator, TrialSet};
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::testkit::{random_circuit, random_state, scaled_rates};
use noisy_qsim::redsim::TreeExecutor;
use noisy_qsim::statevec::StateVector;

const NORM_TOL: f64 = 1e-12;

/// A random native workload: circuit, uniform noise at `scale`, trials.
fn workload(
    n_qubits: usize,
    n_gates: usize,
    circuit_seed: u64,
    scale: f64,
    trials: usize,
    trial_seed: u64,
) -> (LayeredCircuit, TrialSet) {
    let circuit = random_circuit(n_qubits, n_gates, circuit_seed);
    let layered = circuit.layered().expect("random circuits are native");
    let rates = scaled_rates(scale);
    let model = NoiseModel::uniform(n_qubits, rates.0, rates.1, rates.2);
    let set = TrialGenerator::new(&layered, &model).expect("native").generate(trials, trial_seed);
    (layered, set)
}

fn distinct_injection_lists(trials: &[Trial]) -> usize {
    let mut lists: Vec<&[Injection]> = trials.iter().map(Trial::injections).collect();
    lists.sort_unstable();
    lists.dedup();
    lists.len()
}

/// Every amplitude's exact bit pattern, for bitwise state comparison.
fn bits(state: &StateVector) -> Vec<(u64, u64)> {
    state.amplitudes().iter().map(|a| (a.re.to_bits(), a.im.to_bits())).collect()
}

fn arb_scale() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.2), Just(1.0), Just(4.0), Just(8.0)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_is_bitwise_identical_to_sequential_reuse_on_random_workloads(
        n_qubits in 2usize..5,
        n_gates in 4usize..24,
        circuit_seed in 0u64..1024,
        scale in arb_scale(),
        trials in 4usize..24,
        trial_seed in 0u64..1024,
    ) {
        let (layered, set) =
            workload(n_qubits, n_gates, circuit_seed, scale, trials, trial_seed);
        let tree = TreeExecutor::new(&layered).run(set.trials()).unwrap();
        let reuse = ReuseExecutor::new(&layered).run(set.trials()).unwrap();
        let baseline = BaselineExecutor::new(&layered).run(set.trials()).unwrap();
        prop_assert_eq!(&tree.outcomes, &reuse.outcomes, "tree diverged from reuse");
        prop_assert_eq!(&tree.outcomes, &baseline.outcomes, "tree diverged from baseline");
        prop_assert_eq!(
            (tree.stats.ops, tree.stats.fused_ops, tree.stats.amplitude_passes),
            (reuse.stats.ops, reuse.stats.fused_ops, reuse.stats.amplitude_passes),
            "pass accounting diverged from unbounded reuse"
        );
        // The batched-sweep envelope holds on every random workload.
        let sweeps = tree.stats.batch_sweeps;
        let width = tree.stats.batch_width_max;
        prop_assert!(
            tree.stats.fused_ops >= sweeps && tree.stats.fused_ops <= sweeps * width.max(1),
            "fused_ops {} outside [{}, {}]",
            tree.stats.fused_ops, sweeps, sweeps * width.max(1)
        );
    }

    #[test]
    fn frontier_peak_equals_the_advised_distinct_list_count(
        n_qubits in 2usize..5,
        n_gates in 4usize..24,
        circuit_seed in 0u64..1024,
        scale in arb_scale(),
        trials in 4usize..24,
        trial_seed in 0u64..1024,
    ) {
        let (layered, set) =
            workload(n_qubits, n_gates, circuit_seed, scale, trials, trial_seed);
        let run = TreeExecutor::new(&layered).run(set.trials()).unwrap();
        // Buffer-steal theorem: the frontier peaks at exactly one state
        // per distinct injection list, never at the trial count.
        let distinct = distinct_injection_lists(set.trials());
        prop_assert_eq!(run.stats.peak_msv, distinct, "frontier peak != distinct lists");
        prop_assert!(run.stats.peak_msv <= trials, "frontier exceeded the trial budget");
        // And the advisor's tree prediction is that closed form.
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        let p = advice.prediction(ExecStrategy::Tree).expect("tree ranked");
        prop_assert_eq!(p.msv_peak, run.stats.peak_msv, "advisor peak != measured");
        prop_assert_eq!(p.amplitude_passes, run.stats.amplitude_passes, "advisor passes");
    }

    #[test]
    fn branching_preserves_norm_and_batched_sweeps_match_sequential_bitwise(
        n_qubits in 2usize..5,
        n_gates in 4usize..24,
        circuit_seed in 0u64..1024,
        state_seed in 0u64..64,
        frontier in 2usize..7,
    ) {
        let circuit = random_circuit(n_qubits, n_gates, circuit_seed);
        let layered = circuit.layered().expect("random circuits are native");
        let set = TrialSet::new(n_qubits, layered.n_layers(), Vec::new());
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);

        // Branch by cloning-and-perturbing, exactly as the executor forks
        // a child from its parent: each clone must carry the parent's
        // norm (a Pauli is unitary, so up to rounding nothing changes).
        let parent = random_state(n_qubits, state_seed);
        let paulis = [Pauli::X, Pauli::Y, Pauli::Z];
        let mut states: Vec<StateVector> = Vec::with_capacity(frontier);
        for i in 0..frontier {
            let mut child = parent.clone();
            let injection = Injection::single(0, i % n_qubits, paulis[i % 3]);
            injection.apply_to(&mut child).unwrap();
            prop_assert!(
                (child.norm_sqr() - parent.norm_sqr()).abs() <= NORM_TOL,
                "branch perturbed the norm by {:e}",
                (child.norm_sqr() - parent.norm_sqr()).abs()
            );
            states.push(child);
        }

        // Sweeping the frontier through each fused op's batched kernel
        // must be bit-for-bit the sequential per-state application.
        let mut sequential = states.clone();
        for segment in plan.program.segments() {
            for op in segment.ops() {
                op.apply_batch(&mut states).unwrap();
                for state in &mut sequential {
                    state.apply_fused(op).unwrap();
                }
                for (batched, one_by_one) in states.iter().zip(&sequential) {
                    prop_assert_eq!(
                        bits(batched),
                        bits(one_by_one),
                        "batched sweep diverged bitwise on kernel {}",
                        op.kernel_name()
                    );
                }
            }
        }
    }
}
