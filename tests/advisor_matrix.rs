//! Advisor exactness matrix: on the 13-circuit catalog × 3 seeds the
//! analytic cost model's predictions must equal measured [`ExecStats`]
//! **bitwise** for every shipped strategy, and on the shipped benchmark
//! set the structure lattice and frame-commutation claims must verify by
//! dense reconstruction (≤ 1e-12).

use std::path::Path;

use noisy_qsim::analyzer::passes::structure::{check_structure, SegmentClass, STRUCTURE_TOL};
use noisy_qsim::analyzer::{advise, commute_frame, ExecutionPlan, Strategy, StrategyPrediction};
use noisy_qsim::circuit::transpile::{transpile, TranspileOptions};
use noisy_qsim::circuit::{catalog, Circuit, LayeredCircuit};
use noisy_qsim::noise::{NoiseModel, TrialGenerator, TrialSet};
use noisy_qsim::redsim::compressed::run_reordered_compressed;
use noisy_qsim::redsim::exec::{BaselineExecutor, ExecStats, ReuseExecutor};
use noisy_qsim::redsim::testkit::shipped_benchmarks;

fn native(circuit: &Circuit) -> LayeredCircuit {
    transpile(circuit, &TranspileOptions::logical())
        .expect("transpile")
        .circuit
        .layered()
        .expect("layering")
}

/// The same 13-circuit catalog the mutation self-test sweeps.
fn catalog_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rb", catalog::rb()),
        ("grover_3q", catalog::grover_3q(1)),
        ("grover", catalog::grover(3, 0b101, 1)),
        ("wstate_3q", catalog::wstate_3q()),
        ("seven_x1_mod15", catalog::seven_x1_mod15()),
        ("bv", catalog::bv(5, 0b1011)),
        ("qft", catalog::qft(4)),
        ("quantum_volume", catalog::quantum_volume(4, 3, 11)),
        ("rb_sequence", catalog::rb_sequence(6, 5)),
        ("ghz", catalog::ghz(5)),
        ("qpe", catalog::qpe(3, 1)),
        ("adder_2bit", catalog::adder_2bit(2, 3)),
        ("hidden_shift", catalog::hidden_shift(4, 0b0110)),
    ]
}

fn generate(layered: &LayeredCircuit, seed: u64) -> TrialSet {
    let model = NoiseModel::uniform(layered.n_qubits(), 0.01, 0.05, 0.02);
    TrialGenerator::new(layered, &model).expect("generator").generate(64, seed)
}

#[track_caller]
fn assert_prediction(label: &str, predicted: &StrategyPrediction, measured: &ExecStats) {
    assert_eq!(predicted.amplitude_passes, measured.amplitude_passes, "{label}: passes");
    assert_eq!(predicted.ops, measured.ops, "{label}: ops");
    assert_eq!(predicted.fused_ops, measured.fused_ops, "{label}: fused_ops");
    assert_eq!(predicted.msv_peak, measured.peak_msv, "{label}: msv_peak");
}

#[test]
fn catalog_predictions_match_measured_execstats_bitwise() {
    for (name, circuit) in catalog_circuits() {
        let layered = native(&circuit);
        for seed in [1u64, 2, 3] {
            let set = generate(&layered, seed);
            let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
            let advice = advise(&plan);
            let label = |s: &str| format!("{name} seed {seed} {s}");
            let p = |s: Strategy| advice.prediction(s).expect("all strategies ranked");

            let baseline = BaselineExecutor::new(&layered);
            let sequential = baseline.run_unfused(set.trials()).expect("sequential run");
            assert_prediction(&label("sequential"), p(Strategy::Sequential), &sequential.stats);

            let fused = baseline.run(set.trials()).expect("fused run");
            assert_prediction(&label("fused"), p(Strategy::Fused), &fused.stats);

            let reuse_exec = ReuseExecutor::new(&layered);
            let reuse = reuse_exec.run(set.trials()).expect("reuse run");
            assert_prediction(&label("reuse"), p(Strategy::Reuse), &reuse.stats);

            let (compressed, _) =
                run_reordered_compressed(&layered, set.trials()).expect("compressed run");
            assert_prediction(&label("compressed"), p(Strategy::Compressed), &compressed.stats);

            // Budgeted reuse: the prediction tracks the plan's budget.
            for budget in [1usize, 2, 3] {
                let plan = ExecutionPlan::compile(&layered, &set, budget);
                let advice = advise(&plan);
                let run = reuse_exec.run_with_budget(set.trials(), budget).expect("budgeted run");
                assert_prediction(
                    &label(&format!("reuse budget {budget}")),
                    advice.prediction(Strategy::Reuse).expect("ranked"),
                    &run.stats,
                );
            }
        }
    }
}

#[test]
fn shipped_benchmark_lattice_is_sound_and_predictions_match() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks"));
    for (name, layered, model) in shipped_benchmarks(root) {
        for seed in [1u64, 2, 3] {
            let set = TrialGenerator::new(&layered, &model).expect("generator").generate(48, seed);
            let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
            let advice = advise(&plan);

            // Lattice soundness: every claimed class verifies by dense
            // matrix reconstruction at 1e-12.
            for (claim, seg) in advice.segments.iter().zip(plan.program.segments()) {
                check_structure(seg.ops(), *claim, STRUCTURE_TOL).unwrap_or_else(|why| {
                    panic!("{name} seed {seed}: segment claim {claim:?} unsound: {why}")
                });
                if claim.class == SegmentClass::Identity {
                    assert!(seg.ops().is_empty());
                }
            }

            // Prediction exactness on the shipped strategies.
            let baseline = BaselineExecutor::new(&layered);
            let p = |s: Strategy| advice.prediction(s).expect("ranked");
            let seq = baseline.run_unfused(set.trials()).expect("sequential");
            assert_prediction(
                &format!("{name} seed {seed} sequential"),
                p(Strategy::Sequential),
                &seq.stats,
            );
            let fused = baseline.run(set.trials()).expect("fused");
            assert_prediction(
                &format!("{name} seed {seed} fused"),
                p(Strategy::Fused),
                &fused.stats,
            );
            let reuse = ReuseExecutor::new(&layered).run(set.trials()).expect("reuse");
            assert_prediction(
                &format!("{name} seed {seed} reuse"),
                p(Strategy::Reuse),
                &reuse.stats,
            );
            let (comp, _) = run_reordered_compressed(&layered, set.trials()).expect("compressed");
            assert_prediction(
                &format!("{name} seed {seed} compressed"),
                p(Strategy::Compressed),
                &comp.stats,
            );
        }
    }
}

#[test]
fn frame_commutation_is_sound_at_state_level() {
    // For every trackable injection across the catalog: injecting the
    // Pauli at its cut and running the suffix must equal running the
    // suffix and applying the commuted frame (with its i^k phase).
    let mut verified = 0usize;
    for (name, circuit) in catalog_circuits() {
        let layered = native(&circuit);
        let set = generate(&layered, 5);
        let plan = ExecutionPlan::compile(&layered, &set, usize::MAX);
        let advice = advise(&plan);
        let program = &plan.program;
        let last = layered.n_layers() as i64 - 1;
        for verdict in &advice.verdicts {
            if !verdict.trackable {
                assert!(
                    commute_frame(program, &verdict.injection).is_none(),
                    "{name}: verdict disagrees with commute_frame"
                );
                continue;
            }
            let frame = commute_frame(program, &verdict.injection)
                .expect("trackable verdicts carry a frame");
            // Prefix state at the cut.
            let mut state = noisy_qsim::statevec::StateVector::zero_state(layered.n_qubits());
            let mut done = -1i64;
            program
                .apply_through(&mut state, &mut done, verdict.injection.layer() as i64)
                .expect("prefix");
            // Path A: inject, then run the suffix.
            let mut injected = state.clone();
            verdict.injection.apply_to(&mut injected).expect("inject");
            let mut done_a = done;
            program.apply_through(&mut injected, &mut done_a, last).expect("suffix");
            // Path B: run the suffix, then apply the commuted frame.
            let mut tracked = state;
            let mut done_b = done;
            program.apply_through(&mut tracked, &mut done_b, last).expect("suffix");
            for (q, factor) in frame.factors.iter().enumerate() {
                if let Some(p) = factor {
                    tracked.apply_pauli(*p, q).expect("frame pauli");
                }
            }
            let phase =
                [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)][frame.phase_quarters as usize];
            let phase = noisy_qsim::statevec::C64::new(phase.0, phase.1);
            for (a, b) in injected.amplitudes().iter().zip(tracked.amplitudes()) {
                let diff = *a - *b * phase;
                assert!(
                    diff.norm() <= 1e-9,
                    "{name}: frame-tracked amplitudes diverge for {} (|Δ| = {:.3e})",
                    verdict.injection,
                    diff.norm()
                );
            }
            verified += 1;
        }
    }
    assert!(verified > 50, "expected many trackable injections, verified {verified}");
}
