//! The exactness contract of the telemetry subsystem, stated over every
//! shipped benchmark: the runtime observation plane (recorder counters,
//! kernel totals, MSV residency) must agree with the executor's own
//! accounting (`ExecStats`) **and** with the static analyzer's dry-run
//! prediction (`CostReport`) — no sampling, no tolerance, exact equality.

use std::path::Path;

use noisy_qsim::noise::TrialGenerator;
use noisy_qsim::redsim::analysis::analyze;
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::testkit;
use noisy_qsim::redsim::TreeExecutor;
use noisy_qsim::telemetry::{AggregatingRecorder, MsvEvent};

const TRIALS: usize = 64;
const SEED: u64 = 2020;

#[test]
fn telemetry_matches_exec_stats_and_analyzer_on_all_shipped_benchmarks() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benchmarks"));
    let mut checked = 0usize;
    for (name, layered, model) in testkit::shipped_benchmarks(root) {
        let generator = TrialGenerator::new(&layered, &model).expect("native circuit");
        let set = generator.generate(TRIALS, SEED);
        let trials = set.trials();
        let cost = analyze(&layered, &set).expect("static analysis");

        // Reordered execution under an aggregating recorder.
        let recorder = AggregatingRecorder::new();
        let run = ReuseExecutor::new(&layered).run_traced(trials, &recorder).expect("reuse run");
        let report = recorder.report();

        // Telemetry ↔ ExecStats: counter-for-counter equality.
        assert_eq!(report.counter("trials"), run.stats.n_trials as u64, "{name}: trials");
        assert_eq!(report.counter("ops"), run.stats.ops, "{name}: ops");
        assert_eq!(report.counter("fused_ops"), run.stats.fused_ops, "{name}: fused_ops");
        assert_eq!(
            report.counter("amplitude_passes"),
            run.stats.amplitude_passes,
            "{name}: amplitude_passes"
        );
        assert_eq!(
            report.total_kernel_count(),
            run.stats.amplitude_passes,
            "{name}: per-kernel histogram totals"
        );
        assert_eq!(report.peak_residency(), run.stats.peak_msv, "{name}: MSV residency");
        // Lifecycle conservation: one root created, never dropped (it is
        // the error-free frontier held until the run ends), and every
        // forked frontier eventually dropped.
        assert_eq!(report.msv_count(MsvEvent::Create), 1, "{name}: one root MSV");
        assert_eq!(
            report.msv_count(MsvEvent::Fork),
            report.msv_count(MsvEvent::Drop),
            "{name}: MSV fork/drop conservation"
        );
        // Prefix cache: exactly one lookup per trial, first one a miss.
        let (hits, misses) = report.cache_totals();
        assert_eq!(hits + misses, TRIALS as u64, "{name}: one cache lookup per trial");

        // Telemetry/ExecStats ↔ CostReport: the dry-run prediction is
        // exact for the sequential reordered execution.
        assert_eq!(run.stats.ops, cost.optimized_ops, "{name}: analyzer ops");
        assert_eq!(run.stats.peak_msv, cost.msv_peak, "{name}: analyzer MSV peak");

        // Baseline under the same contract: analyzer predicts its cost
        // exactly too, and it stores no intermediate states.
        let base_recorder = AggregatingRecorder::new();
        let base = BaselineExecutor::new(&layered)
            .run_traced(trials, &base_recorder)
            .expect("baseline run");
        let base_report = base_recorder.report();
        assert_eq!(base_report.counter("ops"), base.stats.ops, "{name}: baseline ops");
        assert_eq!(base.stats.ops, cost.baseline_ops, "{name}: analyzer baseline ops");
        assert_eq!(base_report.peak_residency(), 0, "{name}: baseline stores nothing");

        // And none of the observation machinery may perturb the physics.
        assert_eq!(run.outcomes, base.outcomes, "{name}: traced strategies diverged");
        checked += 1;
    }
    assert!(checked >= 12, "expected the full shipped suite, checked {checked}");
}

#[test]
fn tree_telemetry_preserves_the_exactness_contract_on_every_shape() {
    for workload in testkit::tree_workloads(TRIALS, SEED) {
        let name = workload.name;
        let trials = workload.trials.trials();
        let recorder = AggregatingRecorder::new();
        let run =
            TreeExecutor::new(&workload.layered).run_traced(trials, &recorder).expect("tree run");
        let report = recorder.report();

        // Batching must not loosen the exactness contract: recorded
        // kernel events still account for every amplitude pass, one by
        // one, even though each sweep covers a whole frontier.
        assert_eq!(report.counter("trials"), run.stats.n_trials as u64, "{name}: trials");
        assert_eq!(report.counter("ops"), run.stats.ops, "{name}: ops");
        assert_eq!(report.counter("fused_ops"), run.stats.fused_ops, "{name}: fused_ops");
        assert_eq!(
            report.counter("amplitude_passes"),
            run.stats.amplitude_passes,
            "{name}: amplitude_passes"
        );
        assert_eq!(
            report.total_kernel_count(),
            run.stats.amplitude_passes,
            "{name}: kernel totals == amplitude passes"
        );
        assert_eq!(report.peak_residency(), run.stats.peak_msv, "{name}: frontier residency");
        assert_eq!(report.msv_count(MsvEvent::Create), 1, "{name}: one root MSV");
        assert_eq!(
            report.msv_count(MsvEvent::Fork),
            report.msv_count(MsvEvent::Drop),
            "{name}: MSV fork/drop conservation"
        );
        // The batched-sweep envelope: each sweep covers between 1 and
        // `batch_width_max` states.
        let sweeps = report.counter("batch_sweeps");
        let width = report.counter("batch_width_max");
        assert_eq!(sweeps, run.stats.batch_sweeps, "{name}: batch_sweeps");
        assert_eq!(width, run.stats.batch_width_max, "{name}: batch_width_max");
        assert!(
            run.stats.fused_ops >= sweeps && run.stats.fused_ops <= sweeps * width.max(1),
            "{name}: fused_ops {} outside [{}, {}]",
            run.stats.fused_ops,
            sweeps,
            sweeps * width.max(1)
        );

        // And batching never perturbs the physics or the pass counts.
        let reuse = ReuseExecutor::new(&workload.layered).run(trials).expect("reuse run");
        assert_eq!(run.outcomes, reuse.outcomes, "{name}: tree diverged from reuse");
        assert_eq!(
            (run.stats.ops, run.stats.fused_ops, run.stats.amplitude_passes),
            (reuse.stats.ops, reuse.stats.fused_ops, reuse.stats.amplitude_passes),
            "{name}: pass accounting diverged from reuse"
        );
    }
}
