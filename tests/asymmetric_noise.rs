//! Integration tests for the asymmetric-channel and idle-error extensions:
//! the Monte-Carlo machinery must still converge to the exact channel, and
//! the redundancy elimination must remain exact.

use noisy_qsim::circuit::Circuit;
use noisy_qsim::noise::{NoiseModel, PauliWeights, TrialGenerator};
use noisy_qsim::redsim::exec::{BaselineExecutor, ReuseExecutor};
use noisy_qsim::redsim::Histogram;
use noisy_qsim::statevec::{DensityMatrix, Matrix2};

#[test]
fn dephasing_channel_monte_carlo_matches_exact_channel() {
    // H puts the qubit on the equator; dephasing shrinks coherence, which
    // the closing H converts into a population signature.
    let mut qc = Circuit::new("ramsey", 1, 1);
    qc.h(0).h(0).measure_all();
    let layered = qc.layered().expect("layers");
    let pz = 0.2;
    let mut model = NoiseModel::uniform(1, 0.0, 0.0, 0.0);
    model.set_single_weights(0, PauliWeights::dephasing(pz)).expect("valid qubit");

    let mut rho = DensityMatrix::zero_state(1).expect("small");
    rho.apply_1q(&Matrix2::h(), 0).expect("valid");
    rho.pauli_channel_1q(0, 0.0, 0.0, pz).expect("valid");
    rho.apply_1q(&Matrix2::h(), 0).expect("valid");
    rho.pauli_channel_1q(0, 0.0, 0.0, pz).expect("valid");
    let exact = rho.probabilities();
    // Analytic: P(1) = pz(1−pz) + (1−pz)pz ... final dephasing does not
    // change populations, so P(1) = pz.
    assert!((exact[1] - pz).abs() < 1e-12);

    let trials = TrialGenerator::new(&layered, &model).expect("native").generate(60_000, 3);
    let result = ReuseExecutor::new(&layered).run(trials.trials()).expect("runs");
    let hist = Histogram::from_outcomes(1, &result.outcomes);
    assert!((hist.probability(1) - pz).abs() < 0.01, "P(1) = {}", hist.probability(1));
}

#[test]
fn idle_errors_affect_waiting_qubits_and_stay_exact() {
    // Qubit 1 idles for 6 layers while qubit 0 works; idle bit-flip noise
    // must flip qubit 1's readout with the per-layer rate compounded.
    let mut qc = Circuit::new("waiter", 2, 2);
    for _ in 0..6 {
        qc.h(0);
    }
    qc.measure_all();
    let layered = qc.layered().expect("layers");
    let p_idle = 0.05;
    let mut model = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
    model.set_idle_weights(1, PauliWeights::bit_flip(p_idle)).expect("valid qubit");

    let generator = TrialGenerator::new(&layered, &model).expect("native");
    // 6 idle positions on qubit 1 (qubit 0 is always busy).
    assert_eq!(generator.n_positions(), 6 + 6);
    let trials = generator.generate(40_000, 9);

    let baseline = BaselineExecutor::new(&layered).run(trials.trials()).expect("runs");
    let reuse = ReuseExecutor::new(&layered).run(trials.trials()).expect("runs");
    assert_eq!(baseline.outcomes, reuse.outcomes, "equivalence holds with idle errors");
    assert!(reuse.stats.ops < baseline.stats.ops);

    let hist = Histogram::from_outcomes(2, &reuse.outcomes);
    // P(qubit 1 reads 1) = probability of an odd number of flips among 6
    // Bernoulli(p) events = (1 − (1−2p)^6) / 2.
    let expected = (1.0 - (1.0 - 2.0 * p_idle).powi(6)) / 2.0;
    let measured = hist.probability(0b10) + hist.probability(0b11);
    assert!((measured - expected).abs() < 0.01, "{measured} vs {expected}");
}

#[test]
fn biased_noise_preserves_bitwise_equivalence_and_savings() {
    let mut qc = Circuit::new("mix", 3, 3);
    qc.h(0).cx(0, 1).t(2).cx(1, 2).h(0).cx(2, 0).measure_all();
    let layered = qc.layered().expect("layers");
    let mut model = NoiseModel::uniform(3, 0.0, 0.08, 0.02);
    for q in 0..3 {
        model
            .set_single_weights(q, PauliWeights::new(0.01, 0.002, 0.05).expect("valid"))
            .expect("valid qubit");
    }
    model.set_idle_weights_all(PauliWeights::dephasing(0.01));
    let trials = TrialGenerator::new(&layered, &model).expect("native").generate(2_000, 17);
    let baseline = BaselineExecutor::new(&layered).run(trials.trials()).expect("runs");
    let reuse = ReuseExecutor::new(&layered).run(trials.trials()).expect("runs");
    assert_eq!(baseline.outcomes, reuse.outcomes);
    let saving = 1.0 - reuse.stats.ops as f64 / baseline.stats.ops as f64;
    assert!(saving > 0.3, "saving {saving}");
}
