use std::fmt;

use qsim_statevec::Pauli;
use rand::{Rng, RngExt};

use crate::NoiseError;

/// Per-operator error probabilities for a one-qubit Pauli channel — the
/// general form of the paper's error-probability table (§III.B.1: "we still
/// need to know the probability for each error position with each error
/// operator").
///
/// The symmetric depolarizing channel of the paper's Fig. 3 is the special
/// case `x = y = z = p`; asymmetric channels model dephasing-dominated
/// hardware (`z ≫ x, y`) or bit-flip-dominated links.
///
/// ```
/// use qsim_noise::PauliWeights;
///
/// let sym = PauliWeights::symmetric(0.03);
/// assert!((sym.total() - 0.03).abs() < 1e-12);
/// let deph = PauliWeights::dephasing(0.01);
/// assert_eq!(deph.z, 0.01);
/// assert_eq!(deph.x, 0.0);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct PauliWeights {
    /// Probability of injecting X.
    pub x: f64,
    /// Probability of injecting Y.
    pub y: f64,
    /// Probability of injecting Z.
    pub z: f64,
}

impl PauliWeights {
    /// Build from per-operator probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidProbability`] if any component is
    /// negative or the total exceeds 1.
    pub fn new(x: f64, y: f64, z: f64) -> Result<Self, NoiseError> {
        for (value, what) in [(x, "Pauli X weight"), (y, "Pauli Y weight"), (z, "Pauli Z weight")] {
            if !(0.0..=1.0).contains(&value) {
                return Err(NoiseError::InvalidProbability { what, value });
            }
        }
        let total = x + y + z;
        if total > 1.0 + 1e-12 {
            return Err(NoiseError::InvalidProbability {
                what: "total Pauli weight",
                value: total,
            });
        }
        Ok(PauliWeights { x, y, z })
    }

    /// The paper's symmetric depolarizing channel: each operator with
    /// probability `total / 3`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not in `[0, 1]`.
    pub fn symmetric(total: f64) -> Self {
        PauliWeights::new(total / 3.0, total / 3.0, total / 3.0)
            .expect("total must be a probability")
    }

    /// Pure dephasing: all weight on Z.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not in `[0, 1]`.
    pub fn dephasing(total: f64) -> Self {
        PauliWeights::new(0.0, 0.0, total).expect("total must be a probability")
    }

    /// Pure bit flips: all weight on X.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not in `[0, 1]`.
    pub fn bit_flip(total: f64) -> Self {
        PauliWeights::new(total, 0.0, 0.0).expect("total must be a probability")
    }

    /// No error.
    pub fn zero() -> Self {
        PauliWeights::default()
    }

    /// Pauli-twirled thermal relaxation: the standard approximation of
    /// amplitude damping (`T1`) plus pure dephasing (`T2`) over a duration
    /// `t`, twirled into a Pauli channel:
    ///
    /// ```text
    /// p_x = p_y = (1 − e^{−t/T1}) / 4
    /// p_z = (1 − e^{−t/T2}) / 2 − p_x
    /// ```
    ///
    /// This is the natural source of per-layer idle channels
    /// ([`crate::NoiseModel::set_idle_weights_all`]) with `t` the layer
    /// duration.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidProbability`] if the times are not
    /// positive or violate the physical constraint `T2 ≤ 2·T1` (which would
    /// make `p_z` negative).
    pub fn thermal_relaxation(t: f64, t1: f64, t2: f64) -> Result<Self, NoiseError> {
        if !(t >= 0.0 && t1 > 0.0 && t2 > 0.0) {
            return Err(NoiseError::InvalidProbability {
                what: "thermal relaxation time",
                value: t.min(t1).min(t2),
            });
        }
        if t2 > 2.0 * t1 + 1e-12 {
            return Err(NoiseError::InvalidProbability {
                what: "T2 (must satisfy T2 <= 2*T1)",
                value: t2,
            });
        }
        let p_xy = (1.0 - (-t / t1).exp()) / 4.0;
        let p_z = (1.0 - (-t / t2).exp()) / 2.0 - p_xy;
        PauliWeights::new(p_xy, p_xy, p_z.max(0.0))
    }

    /// Total error probability `x + y + z`.
    pub fn total(&self) -> f64 {
        self.x + self.y + self.z
    }

    /// The weight of one operator.
    pub fn weight(&self, pauli: Pauli) -> f64 {
        match pauli {
            Pauli::X => self.x,
            Pauli::Y => self.y,
            Pauli::Z => self.z,
        }
    }

    /// Sample an operator **conditioned on an error having occurred**
    /// (weights renormalized by the total).
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero — there is no conditional
    /// distribution to sample.
    pub fn sample_conditional<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let total = self.total();
        assert!(total > 0.0, "cannot sample an operator from zero weights");
        let u: f64 = rng.random::<f64>() * total;
        if u < self.x {
            Pauli::X
        } else if u < self.x + self.y {
            Pauli::Y
        } else {
            Pauli::Z
        }
    }
}

impl fmt::Display for PauliWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X:{:.2e} Y:{:.2e} Z:{:.2e}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_totals() {
        let w = PauliWeights::new(0.01, 0.02, 0.03).unwrap();
        assert!((w.total() - 0.06).abs() < 1e-12);
        assert_eq!(w.weight(Pauli::Y), 0.02);
        assert!((PauliWeights::symmetric(0.3).weight(Pauli::Z) - 0.1).abs() < 1e-12);
        assert!((PauliWeights::dephasing(0.1).total() - 0.1).abs() < 1e-12);
        assert_eq!(PauliWeights::bit_flip(0.1).weight(Pauli::X), 0.1);
        assert_eq!(PauliWeights::zero().total(), 0.0);
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(PauliWeights::new(-0.1, 0.0, 0.0).is_err());
        assert!(PauliWeights::new(0.5, 0.4, 0.3).is_err());
        assert!(PauliWeights::new(0.0, 1.1, 0.0).is_err());
    }

    #[test]
    fn conditional_sampling_follows_weights() {
        let w = PauliWeights::new(0.1, 0.0, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[w.sample_conditional(&mut rng).code() as usize] += 1;
        }
        assert_eq!(counts[1], 0); // no Y ever
        let x_freq = counts[0] as f64 / 20_000.0;
        assert!((x_freq - 0.25).abs() < 0.02, "X frequency {x_freq}");
    }

    #[test]
    #[should_panic(expected = "zero weights")]
    fn conditional_sampling_needs_mass() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PauliWeights::zero().sample_conditional(&mut rng);
    }

    #[test]
    fn thermal_relaxation_limits_and_constraints() {
        // No time elapsed → no error.
        let w = PauliWeights::thermal_relaxation(0.0, 50.0, 70.0).unwrap();
        assert!(w.total() < 1e-12);
        // Pure T1 (T2 = 2·T1, no extra dephasing): the twirled p_z is only
        // second-order in t/T1 — far below p_x = p_y.
        let w = PauliWeights::thermal_relaxation(1.0, 50.0, 100.0).unwrap();
        assert!(w.z < 0.02 * w.x, "{w}");
        assert!((w.x - w.y).abs() < 1e-15);
        // Dephasing-dominated (T2 ≪ T1): p_z ≫ p_x.
        let w = PauliWeights::thermal_relaxation(1.0, 1000.0, 10.0).unwrap();
        assert!(w.z > 10.0 * w.x, "{w}");
        // Long time → maximal channel (px = py = 1/4, pz = 1/4).
        let w = PauliWeights::thermal_relaxation(1e9, 1.0, 1.0).unwrap();
        assert!((w.x - 0.25).abs() < 1e-9 && (w.z - 0.25).abs() < 1e-9);
        // Unphysical inputs rejected.
        assert!(PauliWeights::thermal_relaxation(1.0, 1.0, 2.5).is_err());
        assert!(PauliWeights::thermal_relaxation(1.0, 0.0, 1.0).is_err());
        assert!(PauliWeights::thermal_relaxation(-1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn display_is_compact() {
        let text = PauliWeights::symmetric(0.03).to_string();
        assert!(text.contains("X:1.00e-2"));
    }
}
