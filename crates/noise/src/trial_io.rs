//! Plain-text serialization for [`TrialSet`] — save a generated Monte-Carlo
//! trial set and replay it later (or on another machine) for exact
//! reproduction of a noisy-simulation run.
//!
//! ```text
//! trialset v1
//! qubits 4 layers 9
//! trial f=0 s=12345
//! trial f=5 s=99 s:0:2:X p:3:1:2:I:Z
//! ```
//!
//! Injection atoms: `s:<layer>:<qubit>:<X|Y|Z>` for single-qubit errors and
//! `p:<layer>:<low>:<high>:<X|Y|Z|I>:<X|Y|Z|I>` for two-qubit Pauli pairs
//! (low-qubit factor first, not both identity). `f=` is the hexadecimal
//! readout-flip mask and `s=` the trial's measurement seed.

use qsim_statevec::Pauli;

use crate::{Injection, NoiseError, Site, Trial, TrialSet};

/// Render a trial set (round-trips through [`parse`]).
pub fn emit(set: &TrialSet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "trialset v1");
    let _ = writeln!(out, "qubits {} layers {}", set.n_qubits(), set.n_layers());
    for trial in set.trials() {
        let _ = write!(out, "trial f={:x} s={}", trial.meas_flip_mask(), trial.seed());
        for inj in trial.injections() {
            let (low_op, high_op) = inj.factors();
            match inj.site() {
                Site::One(q) => {
                    let p = low_op.expect("single injection has an operator");
                    let _ = write!(out, " s:{}:{}:{}", inj.layer(), q, p);
                }
                Site::Two(a, b) => {
                    let render = |p: Option<Pauli>| p.map_or("I".to_owned(), |p| p.to_string());
                    let _ = write!(
                        out,
                        " p:{}:{}:{}:{}:{}",
                        inj.layer(),
                        a,
                        b,
                        render(low_op),
                        render(high_op)
                    );
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parse a serialized trial set.
///
/// # Errors
///
/// Returns [`NoiseError::Calibration`] with the offending 1-based line.
pub fn parse(source: &str) -> Result<TrialSet, NoiseError> {
    let mut lines = source.lines().enumerate();
    let err = |line: usize, message: String| NoiseError::Calibration { line, message };

    let (_, header) = lines.next().ok_or_else(|| err(0, "empty trial file".to_owned()))?;
    if header.trim() != "trialset v1" {
        return Err(err(1, format!("expected `trialset v1`, found {header:?}")));
    }
    let (_, geometry) =
        lines.next().ok_or_else(|| err(1, "missing `qubits N layers M` line".to_owned()))?;
    let geo: Vec<&str> = geometry.split_whitespace().collect();
    let (n_qubits, n_layers) = match geo.as_slice() {
        ["qubits", n, "layers", m] => (
            n.parse().map_err(|e| err(2, format!("invalid qubit count: {e}")))?,
            m.parse().map_err(|e| err(2, format!("invalid layer count: {e}")))?,
        ),
        _ => return Err(err(2, format!("expected `qubits N layers M`, found {geometry:?}"))),
    };

    let mut trials = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        if words.next() != Some("trial") {
            return Err(err(line_no, format!("expected a `trial` line, found {line:?}")));
        }
        let mut flips: Option<u64> = None;
        let mut seed: Option<u64> = None;
        let mut injections = Vec::new();
        for word in words {
            if let Some(hex) = word.strip_prefix("f=") {
                flips = Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|e| err(line_no, format!("invalid flip mask: {e}")))?,
                );
            } else if let Some(v) = word.strip_prefix("s=") {
                seed = Some(v.parse().map_err(|e| err(line_no, format!("invalid seed: {e}")))?);
            } else {
                injections.push(parse_injection(word, line_no)?);
            }
        }
        let flips = flips.ok_or_else(|| err(line_no, "missing f= flip mask".to_owned()))?;
        let seed = seed.ok_or_else(|| err(line_no, "missing s= seed".to_owned()))?;
        for inj in &injections {
            if inj.layer() >= n_layers {
                return Err(err(
                    line_no,
                    format!(
                        "injection layer {} beyond the declared {n_layers} layers",
                        inj.layer()
                    ),
                ));
            }
        }
        trials.push(Trial::new(injections, flips, seed));
    }
    Ok(TrialSet::new(n_qubits, n_layers, trials))
}

fn parse_injection(word: &str, line: usize) -> Result<Injection, NoiseError> {
    let err = |message: String| NoiseError::Calibration { line, message };
    let parts: Vec<&str> = word.split(':').collect();
    let parse_pauli = |text: &str| -> Result<Option<Pauli>, NoiseError> {
        match text {
            "I" | "i" => Ok(None),
            other => other.parse::<Pauli>().map(Some).map_err(|e| err(e.to_string())),
        }
    };
    match parts.as_slice() {
        ["s", layer, qubit, op] => {
            let layer: usize = layer.parse().map_err(|e| err(format!("invalid layer: {e}")))?;
            let qubit: usize = qubit.parse().map_err(|e| err(format!("invalid qubit: {e}")))?;
            let pauli = parse_pauli(op)?
                .ok_or_else(|| err("single injection cannot be identity".to_owned()))?;
            Ok(Injection::single(layer, qubit, pauli))
        }
        ["p", layer, low, high, low_op, high_op] => {
            let layer: usize = layer.parse().map_err(|e| err(format!("invalid layer: {e}")))?;
            let low: usize = low.parse().map_err(|e| err(format!("invalid qubit: {e}")))?;
            let high: usize = high.parse().map_err(|e| err(format!("invalid qubit: {e}")))?;
            if low >= high {
                return Err(err(format!("pair qubits must be low<high, found {low},{high}")));
            }
            let low_op = parse_pauli(low_op)?;
            let high_op = parse_pauli(high_op)?;
            if low_op.is_none() && high_op.is_none() {
                return Err(err("pair injection needs a non-identity factor".to_owned()));
            }
            Ok(Injection::pair(layer, (low, high), low_op, high_op))
        }
        _ => Err(err(format!("unrecognized injection atom {word:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoiseModel, TrialGenerator};
    use qsim_circuit::catalog;

    fn sample_set() -> TrialSet {
        let layered = catalog::qft(4).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.05, 0.2, 0.1);
        TrialGenerator::new(&layered, &model).unwrap().generate(200, 7)
    }

    #[test]
    fn generated_sets_round_trip_exactly() {
        let set = sample_set();
        let text = emit(&set);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn handcrafted_file_parses() {
        let set = parse(
            "trialset v1\nqubits 4 layers 9\ntrial f=0 s=1\ntrial f=a s=2 s:0:2:X p:3:1:2:I:Z\n",
        )
        .unwrap();
        assert_eq!(set.n_qubits(), 4);
        assert_eq!(set.len(), 2);
        assert_eq!(set.trials()[1].meas_flip_mask(), 0xa);
        assert_eq!(set.trials()[1].n_injections(), 2);
    }

    #[test]
    fn empty_trial_lines_and_comments_ok() {
        let set = parse("trialset v1\nqubits 1 layers 1\n# nothing yet\n\n").unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn errors_are_positioned_and_specific() {
        assert!(parse("").is_err());
        let e = parse("bogus\n").unwrap_err();
        assert!(e.to_string().contains("trialset v1"), "{e}");
        let e = parse("trialset v1\nqubits x layers 2\n").unwrap_err();
        assert!(e.to_string().contains("invalid qubit count"), "{e}");
        let e = parse("trialset v1\nqubits 2 layers 2\ntrial s=1\n").unwrap_err();
        assert!(e.to_string().contains("missing f="), "{e}");
        let e = parse("trialset v1\nqubits 2 layers 2\ntrial f=0 s=1 s:9:0:X\n").unwrap_err();
        assert!(e.to_string().contains("beyond the declared"), "{e}");
        let e = parse("trialset v1\nqubits 2 layers 2\ntrial f=0 s=1 p:0:1:0:X:I\n").unwrap_err();
        assert!(e.to_string().contains("low<high"), "{e}");
        let e = parse("trialset v1\nqubits 2 layers 2\ntrial f=0 s=1 s:0:0:Q\n").unwrap_err();
        assert!(e.to_string().contains("expected X, Y, or Z"), "{e}");
        let e = parse("trialset v1\nqubits 2 layers 2\ntrial f=0 s=1 wat\n").unwrap_err();
        assert!(e.to_string().contains("unrecognized injection"), "{e}");
    }

    #[test]
    fn replay_reproduces_the_execution_exactly() {
        // The serialized trials drive an execution identical to the
        // original — the whole point of save/replay. Measurement outcomes
        // are pure functions of trial content (injections, flips, seed),
        // so trial equality implies outcome equality.
        let set = sample_set();
        let replayed = parse(&emit(&set)).unwrap();
        assert_eq!(set.trials(), replayed.trials());
    }
}
