use std::error::Error;
use std::fmt;

/// Errors from noise-model construction and trial generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NoiseError {
    /// A probability was outside `[0, 1]` (or outside the channel's valid
    /// range, e.g. a depolarizing rate above what its operator count allows).
    InvalidProbability {
        /// What the probability parameterizes.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The model covers fewer qubits than the circuit uses.
    WidthMismatch {
        /// Qubits in the model.
        model: usize,
        /// Qubits in the circuit.
        circuit: usize,
    },
    /// The circuit contains a gate outside the native set the error model
    /// understands (transpile first).
    NonNativeGate {
        /// Gate name.
        gate: String,
    },
    /// A calibration file failed to parse.
    Calibration {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidProbability { what, value } => {
                write!(f, "invalid probability {value} for {what}")
            }
            NoiseError::WidthMismatch { model, circuit } => {
                write!(f, "noise model covers {model} qubits but the circuit uses {circuit}")
            }
            NoiseError::NonNativeGate { gate } => {
                write!(f, "gate {gate} is not in the native set; transpile before noisy simulation")
            }
            NoiseError::Calibration { line, message } => {
                write!(f, "calibration line {line}: {message}")
            }
        }
    }
}

impl Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = NoiseError::InvalidProbability { what: "single-qubit gate error", value: 1.5 };
        assert_eq!(e.to_string(), "invalid probability 1.5 for single-qubit gate error");
        assert!(NoiseError::NonNativeGate { gate: "ccx".into() }.to_string().contains("ccx"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NoiseError>();
    }
}
