//! The trial-reorder key — the comparison primitives behind the paper's
//! Algorithm 1.
//!
//! Trials are ordered lexicographically by their injection sequences under
//! a missing-injection-sorts-last (+∞) key. These primitives live beside
//! [`Trial`] itself so that every layer of the stack — the executors and
//! static analyzer in `redsim`, and the plan verifier in `qsim-analyzer` —
//! agrees on one definition of the order and of shared-prefix length.
//! (`redsim` re-exports them unchanged; the full reorder algorithms stay
//! there.)

use std::cmp::Ordering;

use crate::{Injection, Trial};

/// Compare two trials under the reorder key: lexicographic by
/// `(layer, site, operator)`, with a missing injection sorting last.
///
/// ```
/// use std::cmp::Ordering;
/// use qsim_noise::{compare_trials, Injection, Pauli, Trial};
///
/// let early = Trial::new(vec![Injection::single(0, 0, Pauli::X)], 0, 0);
/// let late = Trial::new(vec![Injection::single(3, 0, Pauli::X)], 0, 0);
/// let error_free = Trial::error_free(0);
/// assert_eq!(compare_trials(&early, &late), Ordering::Less);
/// // The error-free trial (no injections at all) runs last.
/// assert_eq!(compare_trials(&late, &error_free), Ordering::Less);
/// ```
pub fn compare_trials(a: &Trial, b: &Trial) -> Ordering {
    compare_injections(a.injections(), b.injections())
}

/// [`compare_trials`] on raw injection slices.
pub fn compare_injections(a: &[Injection], b: &[Injection]) -> Ordering {
    let mut i = 0;
    loop {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) => match x.cmp(y) {
                Ordering::Equal => i += 1,
                other => return other,
            },
            // Running out of injections sorts last (+∞ key): an extension
            // precedes its prefix, and the error-free trial runs last.
            (Some(_), None) => return Ordering::Less,
            (None, Some(_)) => return Ordering::Greater,
            (None, None) => return Ordering::Equal,
        }
    }
}

/// Length of the longest common injection prefix of two trials — the number
/// of shared error operators, which determines how much computation the
/// second trial reuses from the first.
pub fn lcp(a: &Trial, b: &Trial) -> usize {
    a.injections().iter().zip(b.injections()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::Pauli;

    fn single(layer: usize, qubit: usize) -> Trial {
        Trial::new(vec![Injection::single(layer, qubit, Pauli::X)], 0, 0)
    }

    #[test]
    fn extension_precedes_prefix() {
        let prefix = single(1, 0);
        let extension = Trial::new(
            vec![Injection::single(1, 0, Pauli::X), Injection::single(4, 1, Pauli::Z)],
            0,
            0,
        );
        assert_eq!(compare_trials(&extension, &prefix), Ordering::Less);
        assert_eq!(compare_trials(&prefix, &extension), Ordering::Greater);
        assert_eq!(lcp(&prefix, &extension), 1);
    }

    #[test]
    fn equal_trials_compare_equal() {
        let a = single(2, 3);
        assert_eq!(compare_trials(&a, &a.clone()), Ordering::Equal);
        assert_eq!(lcp(&a, &a.clone()), 1);
    }

    #[test]
    fn lcp_stops_at_first_difference() {
        let a = Trial::new(
            vec![Injection::single(0, 0, Pauli::X), Injection::single(2, 1, Pauli::Y)],
            0,
            0,
        );
        let b = Trial::new(
            vec![Injection::single(0, 0, Pauli::X), Injection::single(3, 1, Pauli::Y)],
            0,
            0,
        );
        assert_eq!(lcp(&a, &b), 1);
        assert_eq!(lcp(&a, &Trial::error_free(0)), 0);
    }
}
