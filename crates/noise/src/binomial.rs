//! Exact binomial sampling by inversion.
//!
//! `rand_distr` targets an incompatible `rand` major version, and the
//! workload here is friendly to inversion: every rate class in the paper's
//! experiments has `n·p ≲ 200`, where walking the CDF costs `O(n·p)` per
//! draw with no setup. The recurrence
//! `pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)` is numerically stable for
//! these parameters (`pmf(0) = (1−p)^n ≥ e^{−n·p·(1+p)} ≫ f64::MIN_POSITIVE`).

use rand::{Rng, RngExt};

/// A binomial distribution `B(n, p)` sampled by CDF inversion.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
    /// Precomputed `(1−p)^n`, the PMF at zero.
    pmf0: f64,
}

impl Binomial {
    /// Create a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "binomial probability {p} out of range");
        Binomial { n, p, pmf0: (1.0 - p).powi(n as i32) }
    }

    /// Number of Bernoulli trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        let mut u: f64 = rng.random::<f64>();
        let ratio = self.p / (1.0 - self.p);
        let mut pmf = self.pmf0;
        let mut k = 0u64;
        loop {
            if u < pmf || k == self.n {
                return k;
            }
            u -= pmf;
            pmf *= (self.n - k) as f64 / (k + 1) as f64 * ratio;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut rng), 10);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        let _ = Binomial::new(10, 1.5);
    }

    #[test]
    fn sample_mean_and_variance_match_theory() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, p) in [(100u64, 0.03f64), (2000, 0.01), (50, 0.4), (5000, 0.001)] {
            let dist = Binomial::new(n, p);
            let draws = 30_000;
            let samples: Vec<f64> = (0..draws).map(|_| dist.sample(&mut rng) as f64).collect();
            let mean: f64 = samples.iter().sum::<f64>() / draws as f64;
            let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws as f64;
            let expect_mean = n as f64 * p;
            let expect_var = n as f64 * p * (1.0 - p);
            let mean_tol = 4.0 * (expect_var / draws as f64).sqrt() + 1e-9;
            assert!(
                (mean - expect_mean).abs() < mean_tol,
                "B({n},{p}): mean {mean} vs {expect_mean}"
            );
            assert!(
                (var - expect_var).abs() < 0.15 * expect_var.max(0.05),
                "B({n},{p}): var {var} vs {expect_var}"
            );
        }
    }

    #[test]
    fn samples_never_exceed_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Binomial::new(3, 0.9);
        for _ in 0..5000 {
            assert!(dist.sample(&mut rng) <= 3);
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let dist = Binomial::new(20, 0.25);
        assert_eq!(dist.n(), 20);
        assert_eq!(dist.p(), 0.25);
        assert_eq!(dist.mean(), 5.0);
    }
}
