use std::fmt;

use qsim_statevec::{Pauli, StateVecError, StateVector};

/// Marker for "no qubit" in the packed high-qubit slot of a single-qubit
/// injection.
const NO_QUBIT: u16 = u16::MAX;

/// Where an error strikes: a single qubit or a coupled pair (the operands of
/// the gate that triggered it).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// A one-qubit gate's operand.
    One(usize),
    /// A two-qubit gate's operands, normalized `low < high`.
    Two(usize, usize),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::One(q) => write!(f, "q{q}"),
            Site::Two(a, b) => write!(f, "(q{a},q{b})"),
        }
    }
}

/// One injected error: a Pauli error operator at an error position
/// `(layer, site)` (paper §III.B.1). The paper's trial-reorder algorithm
/// keys on exactly this triple, so `Injection` carries a total order that is
/// (layer, site, operator)-lexicographic.
///
/// The representation is packed to 12 bytes because scalability experiments
/// hold tens of millions of injections in memory at once.
///
/// ```
/// use qsim_noise::{Injection, Pauli, Site};
///
/// let early = Injection::single(0, 3, Pauli::Z);
/// let late = Injection::single(4, 0, Pauli::X);
/// assert!(early < late); // layer dominates the order
/// assert_eq!(early.site(), Site::One(3));
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Injection {
    layer: u32,
    low: u16,
    high: u16,
    /// Single site: Pauli code 0..=2. Pair site: `4·high_code + low_code`
    /// with 0 = identity factor, never both zero.
    op: u8,
}

impl Injection {
    /// A Pauli error on one qubit at the end of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` or `layer` exceed the packed ranges (65534 qubits /
    /// 4·10⁹ layers — unreachable for any simulable circuit).
    pub fn single(layer: usize, qubit: usize, pauli: Pauli) -> Self {
        assert!(qubit < NO_QUBIT as usize, "qubit index {qubit} too large to pack");
        Injection {
            layer: u32::try_from(layer).expect("layer index too large to pack"),
            low: qubit as u16,
            high: NO_QUBIT,
            op: pauli.code(),
        }
    }

    /// A two-qubit Pauli-pair error on the operands of a two-qubit gate.
    /// At least one factor must be non-identity (`None` = identity factor).
    ///
    /// # Panics
    ///
    /// Panics if both factors are identity, the qubits coincide, or indices
    /// exceed the packed ranges.
    pub fn pair(
        layer: usize,
        qubits: (usize, usize),
        low_op: Option<Pauli>,
        high_op: Option<Pauli>,
    ) -> Self {
        assert!(
            low_op.is_some() || high_op.is_some(),
            "a pair injection needs at least one non-identity factor"
        );
        let (a, b) = qubits;
        assert_ne!(a, b, "pair injection requires two distinct qubits");
        let (low, high) = (a.min(b), a.max(b));
        assert!(high < NO_QUBIT as usize, "qubit index {high} too large to pack");
        let code = |p: Option<Pauli>| p.map_or(0, |p| p.code() + 1);
        Injection {
            layer: u32::try_from(layer).expect("layer index too large to pack"),
            low: low as u16,
            high: high as u16,
            op: 4 * code(high_op) + code(low_op),
        }
    }

    /// The layer after whose gates this error is applied.
    pub fn layer(&self) -> usize {
        self.layer as usize
    }

    /// The error position's site.
    pub fn site(&self) -> Site {
        if self.high == NO_QUBIT {
            Site::One(self.low as usize)
        } else {
            Site::Two(self.low as usize, self.high as usize)
        }
    }

    /// The Pauli factors `(on_low_qubit, on_high_qubit)`; a single-qubit
    /// injection reports `(Some(p), None)`.
    pub fn factors(&self) -> (Option<Pauli>, Option<Pauli>) {
        if self.high == NO_QUBIT {
            (Some(Pauli::from_code(self.op)), None)
        } else {
            let decode = |c: u8| if c == 0 { None } else { Some(Pauli::from_code(c - 1)) };
            (decode(self.op % 4), decode(self.op / 4))
        }
    }

    /// Apply the error operator to a state. Counted as **one** basic
    /// operation in the paper's cost metric regardless of site width (a
    /// two-qubit Pauli is a single 4×4 matrix-vector product; we realise it
    /// as at most two permutation fast paths, which is cheaper but
    /// equivalent).
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] for out-of-range qubits.
    pub fn apply_to(&self, state: &mut StateVector) -> Result<(), StateVecError> {
        match self.site() {
            Site::One(q) => {
                let (p, _) = self.factors();
                state.apply_pauli(p.expect("single injection has a factor"), q)
            }
            Site::Two(a, b) => {
                let (low, high) = self.factors();
                if let Some(p) = low {
                    state.apply_pauli(p, a)?;
                }
                if let Some(p) = high {
                    state.apply_pauli(p, b)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (low, high) = self.factors();
        let render = |p: Option<Pauli>| p.map_or("I".to_owned(), |p| p.to_string());
        match self.site() {
            Site::One(_) => write!(f, "L{}:{}@{}", self.layer, render(low), self.site()),
            Site::Two(..) => {
                write!(f, "L{}:{}{}@{}", self.layer, render(low), render(high), self.site())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips_single() {
        for (layer, qubit, p) in
            [(0usize, 0usize, Pauli::X), (7, 39, Pauli::Z), (1000, 2, Pauli::Y)]
        {
            let inj = Injection::single(layer, qubit, p);
            assert_eq!(inj.layer(), layer);
            assert_eq!(inj.site(), Site::One(qubit));
            assert_eq!(inj.factors(), (Some(p), None));
        }
    }

    #[test]
    fn packing_roundtrips_pairs() {
        let all = [None, Some(Pauli::X), Some(Pauli::Y), Some(Pauli::Z)];
        for &low in &all {
            for &high in &all {
                if low.is_none() && high.is_none() {
                    continue;
                }
                let inj = Injection::pair(3, (5, 2), low, high);
                assert_eq!(inj.site(), Site::Two(2, 5));
                assert_eq!(inj.factors(), (low, high));
            }
        }
    }

    #[test]
    fn pair_normalizes_qubit_order() {
        // Factors are tied to (low, high) positions, so swapping the tuple
        // swaps which physical qubit gets which factor only via min/max.
        let a = Injection::pair(1, (4, 1), Some(Pauli::X), None);
        assert_eq!(a.site(), Site::Two(1, 4));
        assert_eq!(a.factors(), (Some(Pauli::X), None)); // X on qubit 1
    }

    #[test]
    #[should_panic(expected = "non-identity")]
    fn pair_rejects_double_identity() {
        let _ = Injection::pair(0, (0, 1), None, None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_rejects_equal_qubits() {
        let _ = Injection::pair(0, (1, 1), Some(Pauli::X), None);
    }

    #[test]
    fn ordering_is_layer_site_op() {
        let a = Injection::single(1, 5, Pauli::Z);
        let b = Injection::single(2, 0, Pauli::X);
        assert!(a < b);
        let c = Injection::single(1, 4, Pauli::Z);
        assert!(c < a);
        let d = Injection::single(1, 5, Pauli::X);
        assert!(d < a);
    }

    #[test]
    fn apply_matches_pauli_fast_paths() {
        use qsim_statevec::Matrix2;
        let mut base = StateVector::zero_state(3);
        for q in 0..3 {
            base.apply_1q(&Matrix2::u(0.8 * (q + 1) as f64, 0.3, -0.2), q).unwrap();
        }
        // Single.
        let mut a = base.clone();
        Injection::single(0, 1, Pauli::Y).apply_to(&mut a).unwrap();
        let mut b = base.clone();
        b.apply_pauli(Pauli::Y, 1).unwrap();
        assert_eq!(a.amplitudes(), b.amplitudes());
        // Pair with one identity factor.
        let mut a = base.clone();
        Injection::pair(0, (0, 2), None, Some(Pauli::Z)).apply_to(&mut a).unwrap();
        let mut b = base.clone();
        b.apply_pauli(Pauli::Z, 2).unwrap();
        assert_eq!(a.amplitudes(), b.amplitudes());
        // Full pair.
        let mut a = base.clone();
        Injection::pair(0, (0, 2), Some(Pauli::X), Some(Pauli::Z)).apply_to(&mut a).unwrap();
        let mut b = base;
        b.apply_pauli(Pauli::X, 0).unwrap();
        b.apply_pauli(Pauli::Z, 2).unwrap();
        assert_eq!(a.amplitudes(), b.amplitudes());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Injection::single(3, 2, Pauli::X).to_string(), "L3:X@q2");
        assert_eq!(
            Injection::pair(5, (1, 4), Some(Pauli::X), Some(Pauli::Z)).to_string(),
            "L5:XZ@(q1,q4)"
        );
        assert_eq!(Injection::pair(5, (1, 4), None, Some(Pauli::Y)).to_string(), "L5:IY@(q1,q4)");
    }

    #[test]
    fn injection_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<Injection>(), 12);
    }
}
