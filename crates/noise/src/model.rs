use std::collections::HashMap;
use std::fmt;

use qsim_circuit::GateOp;

use crate::{NoiseError, PauliWeights};

/// A device error model: Pauli gate errors, optional idle errors, and
/// classical readout errors (paper §III.B and Fig. 3/Fig. 4).
///
/// * After a one-qubit gate on `q`, Pauli X/Y/Z are injected with the
///   qubit's [`PauliWeights`] (the symmetric depolarizing channel of the
///   paper's Fig. 3 by default: each `single_rate(q) / 3`).
/// * After a two-qubit gate on `(a, b)`, each of the 15 non-identity Pauli
///   pairs is injected with probability `two_rate(a, b) / 15`.
/// * Optionally, a qubit left idle in a layer suffers its idle channel
///   (the paper's errors that "can happen without an operation").
/// * Each measured bit flips with probability `readout(q)`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    n_qubits: usize,
    single: Vec<PauliWeights>,
    #[cfg_attr(feature = "serde", serde(with = "pair_map_serde"))]
    pair: HashMap<(usize, usize), f64>,
    default_pair: f64,
    readout: Vec<f64>,
    /// Per-qubit idle-error channel applied at the end of every layer in
    /// which the qubit is not acted on (`None` disables idle errors).
    idle: Option<Vec<PauliWeights>>,
}

impl NoiseModel {
    /// A uniform model: every qubit shares `single_rate`, every pair
    /// `two_rate`, every readout `readout_rate`. This is the artificial
    /// future-device model of the paper's scalability study (§V.B), which
    /// sets two-qubit and measurement rates to 10× the single-qubit rate.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]`.
    pub fn uniform(n_qubits: usize, single_rate: f64, two_rate: f64, readout_rate: f64) -> Self {
        NoiseModel::try_uniform(n_qubits, single_rate, two_rate, readout_rate)
            .expect("rates must be probabilities")
    }

    /// Fallible variant of [`NoiseModel::uniform`].
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidProbability`] for rates outside `[0, 1]`.
    pub fn try_uniform(
        n_qubits: usize,
        single_rate: f64,
        two_rate: f64,
        readout_rate: f64,
    ) -> Result<Self, NoiseError> {
        check_prob("single-qubit gate error", single_rate)?;
        check_prob("two-qubit gate error", two_rate)?;
        check_prob("readout error", readout_rate)?;
        Ok(NoiseModel {
            n_qubits,
            single: vec![PauliWeights::symmetric(single_rate); n_qubits],
            pair: HashMap::new(),
            default_pair: two_rate,
            readout: vec![readout_rate; n_qubits],
            idle: None,
        })
    }

    /// The paper's artificial scalability model for a given single-qubit
    /// rate: two-qubit and measurement rates are 10× the single-qubit rate
    /// (§V.B "The error rates of two-qubit gates and measurement operations
    /// are set to be 10× of single-qubit gates").
    pub fn artificial(n_qubits: usize, single_rate: f64) -> Self {
        NoiseModel::uniform(n_qubits, single_rate, single_rate * 10.0, single_rate * 10.0)
    }

    /// The calibration of IBM's 5-qubit Yorktown processor exactly as
    /// printed in the paper's Fig. 4.
    pub fn ibm_yorktown() -> Self {
        let single: Vec<PauliWeights> = [1.37e-3, 1.37e-3, 2.23e-3, 1.72e-3, 0.94e-3]
            .into_iter()
            .map(PauliWeights::symmetric)
            .collect();
        let readout = vec![2.40e-2, 2.60e-2, 3.00e-2, 2.20e-2, 4.50e-2];
        let mut pair = HashMap::new();
        // Edge order matches CouplingMap::yorktown(): (0,1) (0,2) (1,2)
        // (2,3) (2,4) (3,4).
        for (edge, rate) in [
            ((0usize, 1usize), 2.72e-2),
            ((0, 2), 3.77e-2),
            ((1, 2), 4.18e-2),
            ((2, 3), 3.97e-2),
            ((2, 4), 3.62e-2),
            ((3, 4), 3.51e-2),
        ] {
            pair.insert(edge, rate);
        }
        NoiseModel { n_qubits: 5, single, pair, default_pair: 3.5e-2, readout, idle: None }
    }

    /// Number of qubits the model covers.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Override one qubit's single-qubit gate error rate.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] for an invalid probability or qubit.
    pub fn set_single_rate(&mut self, qubit: usize, rate: f64) -> Result<(), NoiseError> {
        check_prob("single-qubit gate error", rate)?;
        if qubit >= self.n_qubits {
            return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: qubit + 1 });
        }
        self.single[qubit] = PauliWeights::symmetric(rate);
        Ok(())
    }

    /// Override one qubit's single-qubit error channel with asymmetric
    /// per-operator weights.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::WidthMismatch`] for an out-of-model qubit.
    pub fn set_single_weights(
        &mut self,
        qubit: usize,
        weights: PauliWeights,
    ) -> Result<(), NoiseError> {
        if qubit >= self.n_qubits {
            return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: qubit + 1 });
        }
        self.single[qubit] = weights;
        Ok(())
    }

    /// Enable idle errors: at the end of every layer, each qubit that no
    /// gate touched suffers `weights` (the paper's §III.B.1 errors that
    /// "can happen without an operation", e.g. decay or environmental
    /// interaction, discretized at layer granularity).
    pub fn set_idle_weights_all(&mut self, weights: PauliWeights) {
        self.idle = Some(vec![weights; self.n_qubits]);
    }

    /// Override one qubit's idle channel (enables idle errors if needed).
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::WidthMismatch`] for an out-of-model qubit.
    pub fn set_idle_weights(
        &mut self,
        qubit: usize,
        weights: PauliWeights,
    ) -> Result<(), NoiseError> {
        if qubit >= self.n_qubits {
            return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: qubit + 1 });
        }
        self.idle.get_or_insert_with(|| vec![PauliWeights::zero(); self.n_qubits])[qubit] = weights;
        Ok(())
    }

    /// The idle channel of `qubit`, `None` when idle errors are disabled.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is outside the model.
    pub fn idle_weights(&self, qubit: usize) -> Option<PauliWeights> {
        self.idle.as_ref().map(|idle| idle[qubit])
    }

    /// Whether idle errors are modeled at all.
    pub fn has_idle_errors(&self) -> bool {
        self.idle.is_some()
    }

    /// Override one edge's two-qubit gate error rate.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] for an invalid probability or qubit.
    pub fn set_pair_rate(&mut self, a: usize, b: usize, rate: f64) -> Result<(), NoiseError> {
        check_prob("two-qubit gate error", rate)?;
        if a.max(b) >= self.n_qubits {
            return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: a.max(b) + 1 });
        }
        self.pair.insert((a.min(b), a.max(b)), rate);
        Ok(())
    }

    /// Total error probability after a one-qubit gate on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is outside the model.
    pub fn single_rate(&self, qubit: usize) -> f64 {
        self.single[qubit].total()
    }

    /// The per-operator error channel after a one-qubit gate on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is outside the model.
    pub fn single_weights(&self, qubit: usize) -> PauliWeights {
        self.single[qubit]
    }

    /// Total error probability after a two-qubit gate on `(a, b)`.
    ///
    /// Falls back to the model's default pair rate for uncalibrated edges.
    pub fn two_rate(&self, a: usize, b: usize) -> f64 {
        self.pair.get(&(a.min(b), a.max(b))).copied().unwrap_or(self.default_pair)
    }

    /// The rate used for pairs without an explicit override.
    pub fn default_pair_rate(&self) -> f64 {
        self.default_pair
    }

    /// Set the rate used for pairs without an explicit override.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidProbability`] outside `[0, 1]`.
    pub fn set_default_pair_rate(&mut self, rate: f64) -> Result<(), NoiseError> {
        check_prob("two-qubit gate error", rate)?;
        self.default_pair = rate;
        Ok(())
    }

    /// Override one qubit's readout flip probability.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError`] for an invalid probability or qubit.
    pub fn set_readout_rate(&mut self, qubit: usize, rate: f64) -> Result<(), NoiseError> {
        check_prob("readout error", rate)?;
        if qubit >= self.n_qubits {
            return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: qubit + 1 });
        }
        self.readout[qubit] = rate;
        Ok(())
    }

    /// Explicitly calibrated edges as `((low, high), rate)`, sorted.
    pub fn pair_overrides(&self) -> Vec<((usize, usize), f64)> {
        let mut edges: Vec<((usize, usize), f64)> =
            self.pair.iter().map(|(&edge, &rate)| (edge, rate)).collect();
        edges.sort_by_key(|&(edge, _)| edge);
        edges
    }

    /// Readout flip probability for `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is outside the model.
    pub fn readout_rate(&self, qubit: usize) -> f64 {
        self.readout[qubit]
    }

    /// Readout flip probabilities indexed by qubit.
    pub fn readout_rates(&self) -> &[f64] {
        &self.readout
    }

    /// A copy of this model with every probability (gate, idle, readout)
    /// multiplied by `factor` — the standard knob for error-rate sweeps and
    /// zero-noise-extrapolation studies.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidProbability`] if any scaled rate leaves
    /// `[0, 1]`.
    pub fn scaled(&self, factor: f64) -> Result<NoiseModel, NoiseError> {
        if factor < 0.0 {
            return Err(NoiseError::InvalidProbability { what: "scale factor", value: factor });
        }
        let mut out = self.clone();
        for weights in &mut out.single {
            *weights =
                PauliWeights::new(weights.x * factor, weights.y * factor, weights.z * factor)?;
        }
        check_prob("scaled two-qubit gate error", self.default_pair * factor)?;
        out.default_pair = self.default_pair * factor;
        for rate in out.pair.values_mut() {
            check_prob("scaled two-qubit gate error", *rate * factor)?;
            *rate *= factor;
        }
        for rate in &mut out.readout {
            check_prob("scaled readout error", *rate * factor)?;
            *rate *= factor;
        }
        if let Some(idle) = &mut out.idle {
            for weights in idle.iter_mut() {
                *weights =
                    PauliWeights::new(weights.x * factor, weights.y * factor, weights.z * factor)?;
            }
        }
        Ok(out)
    }

    /// Total error probability for an arbitrary native gate.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::NonNativeGate`] for arity ≥ 3 and
    /// [`NoiseError::WidthMismatch`] for out-of-model operands.
    pub fn gate_rate(&self, op: &GateOp) -> Result<f64, NoiseError> {
        for &q in &op.qubits {
            if q >= self.n_qubits {
                return Err(NoiseError::WidthMismatch { model: self.n_qubits, circuit: q + 1 });
            }
        }
        match op.qubits.len() {
            1 => Ok(self.single_rate(op.qubits[0])),
            2 => Ok(self.two_rate(op.qubits[0], op.qubits[1])),
            _ => Err(NoiseError::NonNativeGate { gate: op.gate.to_string() }),
        }
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let avg_single: f64 = self.single.iter().map(PauliWeights::total).sum::<f64>()
            / self.single.len().max(1) as f64;
        let avg_readout: f64 = self.readout.iter().sum::<f64>() / self.readout.len().max(1) as f64;
        write!(
            f,
            "NoiseModel({} qubits, avg 1q {:.2e}, default 2q {:.2e}, avg readout {:.2e})",
            self.n_qubits, avg_single, self.default_pair, avg_readout
        )
    }
}

fn check_prob(what: &'static str, p: f64) -> Result<(), NoiseError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(NoiseError::InvalidProbability { what, value: p })
    }
}

/// Serde helpers for the tuple-keyed pair map (JSON requires string keys,
/// so the map travels as a list of `((a, b), rate)` entries).
#[cfg(feature = "serde")]
mod pair_map_serde {
    use std::collections::HashMap;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(
        map: &HashMap<(usize, usize), f64>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<((usize, usize), f64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_by_key(|&(k, _)| k);
        entries.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<HashMap<(usize, usize), f64>, D::Error> {
        let entries: Vec<((usize, usize), f64)> = Vec::deserialize(deserializer)?;
        Ok(entries.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::{Gate, GateOp};

    #[test]
    fn yorktown_matches_figure_four() {
        let m = NoiseModel::ibm_yorktown();
        assert_eq!(m.n_qubits(), 5);
        assert_eq!(m.single_rate(0), 1.37e-3);
        assert_eq!(m.single_rate(4), 0.94e-3);
        assert_eq!(m.two_rate(0, 1), 2.72e-2);
        assert_eq!(m.two_rate(1, 0), 2.72e-2); // symmetric lookup
        assert_eq!(m.two_rate(3, 4), 3.51e-2);
        assert_eq!(m.readout_rate(2), 3.00e-2);
        assert_eq!(m.readout_rate(4), 4.50e-2);
    }

    #[test]
    fn artificial_uses_ten_x_rule() {
        let m = NoiseModel::artificial(10, 1e-3);
        assert_eq!(m.single_rate(7), 1e-3);
        assert_eq!(m.two_rate(0, 9), 1e-2);
        assert_eq!(m.readout_rate(3), 1e-2);
    }

    #[test]
    fn gate_rate_dispatches_on_arity() {
        let m = NoiseModel::ibm_yorktown();
        let one = GateOp::new(Gate::H, vec![2]).unwrap();
        assert_eq!(m.gate_rate(&one).unwrap(), 2.23e-3);
        let two = GateOp::new(Gate::Cx, vec![2, 4]).unwrap();
        assert_eq!(m.gate_rate(&two).unwrap(), 3.62e-2);
        let three = GateOp::new(Gate::Ccx, vec![0, 1, 2]).unwrap();
        assert!(matches!(m.gate_rate(&three), Err(NoiseError::NonNativeGate { .. })));
        let wide = GateOp::new(Gate::H, vec![9]).unwrap();
        assert!(matches!(m.gate_rate(&wide), Err(NoiseError::WidthMismatch { .. })));
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(NoiseModel::try_uniform(2, 1.5, 0.0, 0.0).is_err());
        assert!(NoiseModel::try_uniform(2, 0.0, -0.1, 0.0).is_err());
        let mut m = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
        assert!(m.set_single_rate(0, 2.0).is_err());
        assert!(m.set_single_rate(5, 0.1).is_err());
        assert!(m.set_pair_rate(0, 5, 0.1).is_err());
    }

    #[test]
    fn overrides_apply() {
        let mut m = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        m.set_single_rate(1, 5e-3).unwrap();
        m.set_pair_rate(2, 0, 9e-2).unwrap();
        assert_eq!(m.single_rate(1), 5e-3);
        assert_eq!(m.single_rate(0), 1e-3);
        assert_eq!(m.two_rate(0, 2), 9e-2);
        assert_eq!(m.two_rate(0, 1), 1e-2);
    }

    #[test]
    fn display_summarizes() {
        let m = NoiseModel::artificial(4, 1e-4);
        let text = m.to_string();
        assert!(text.contains("4 qubits"));
        assert!(text.contains("1.00e-4"));
    }

    #[test]
    fn scaled_models_multiply_every_rate() {
        let mut m = NoiseModel::ibm_yorktown();
        m.set_idle_weights_all(PauliWeights::dephasing(1e-4));
        let half = m.scaled(0.5).unwrap();
        assert!((half.single_rate(2) - 0.5 * m.single_rate(2)).abs() < 1e-15);
        assert!((half.two_rate(0, 1) - 0.5 * m.two_rate(0, 1)).abs() < 1e-15);
        assert!((half.default_pair_rate() - 0.5 * m.default_pair_rate()).abs() < 1e-15);
        assert!((half.readout_rate(4) - 0.5 * m.readout_rate(4)).abs() < 1e-15);
        assert!((half.idle_weights(0).unwrap().z - 0.5e-4).abs() < 1e-15);
        // Zero scale = noiseless; negative or overflowing scales rejected.
        let zero = m.scaled(0.0).unwrap();
        assert_eq!(zero.single_rate(0), 0.0);
        assert!(m.scaled(-1.0).is_err());
        assert!(m.scaled(1e6).is_err());
    }

    #[test]
    fn asymmetric_weights_override_symmetric_default() {
        let mut m = NoiseModel::uniform(2, 3e-3, 0.0, 0.0);
        let symmetric = m.single_weights(0);
        assert!((symmetric.x - 1e-3).abs() < 1e-15);
        m.set_single_weights(0, PauliWeights::dephasing(4e-3)).unwrap();
        assert_eq!(m.single_weights(0).z, 4e-3);
        assert_eq!(m.single_rate(0), 4e-3);
        // Other qubits untouched.
        assert!((m.single_rate(1) - 3e-3).abs() < 1e-15);
        assert!(m.set_single_weights(9, PauliWeights::zero()).is_err());
    }

    #[test]
    fn idle_errors_default_off_and_enable_per_qubit() {
        let mut m = NoiseModel::uniform(3, 1e-3, 1e-2, 0.0);
        assert!(!m.has_idle_errors());
        assert_eq!(m.idle_weights(0), None);
        m.set_idle_weights(1, PauliWeights::bit_flip(2e-3)).unwrap();
        assert!(m.has_idle_errors());
        assert_eq!(m.idle_weights(0), Some(PauliWeights::zero()));
        assert_eq!(m.idle_weights(1), Some(PauliWeights::bit_flip(2e-3)));
        assert!(m.set_idle_weights(7, PauliWeights::zero()).is_err());
        m.set_idle_weights_all(PauliWeights::symmetric(3e-3));
        assert_eq!(m.idle_weights(0), Some(PauliWeights::symmetric(3e-3)));
    }
}
