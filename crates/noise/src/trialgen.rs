use std::collections::HashMap;

use qsim_circuit::LayeredCircuit;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use qsim_statevec::Pauli;

use crate::{Binomial, Injection, NoiseError, NoiseModel, PauliWeights, Trial, TrialSet};

/// Public summary of one error position, for analytic cost models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositionInfo {
    /// Layer after whose gates the error strikes.
    pub layer: usize,
    /// Total error probability at this position.
    pub rate: f64,
    /// Distinct error operators this position can inject.
    pub n_variants: u32,
}

/// One potential error position: a gate's operands (or an idle qubit) and
/// its error channel, by layer.
#[derive(Clone, Copy, Debug)]
struct Position {
    layer: usize,
    qubits: (usize, usize),
    is_pair: bool,
    /// Total error probability of this position.
    rate: f64,
    /// Per-operator weights (single-qubit sites only; pairs are uniform
    /// over the 15 non-identity Pauli pairs).
    weights: PauliWeights,
}

/// Statically samples complete Monte-Carlo trial sets for a circuit under a
/// noise model — the "generate all the simulation trials without actually
/// running the simulation" step of the paper's §IV.
///
/// Two samplers are provided:
///
/// * [`TrialGenerator::generate`] — the direct, paper-faithful method: one
///   Bernoulli draw per error position per trial.
/// * [`TrialGenerator::generate_fast`] — statistically identical binomial
///   sampling (count per rate class, then positions without replacement),
///   which makes the paper's 10⁶-trial scalability experiments tractable.
#[derive(Clone, Debug)]
pub struct TrialGenerator {
    n_qubits: usize,
    n_layers: usize,
    positions: Vec<Position>,
    /// `(qubit, readout rate)` for each measured qubit.
    readouts: Vec<(usize, f64)>,
}

impl TrialGenerator {
    /// Prepare a generator by enumerating every error position of the
    /// layered circuit under `model`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::WidthMismatch`] if the model is narrower than
    /// the circuit and [`NoiseError::NonNativeGate`] for arity ≥ 3 gates.
    pub fn new(layered: &LayeredCircuit, model: &NoiseModel) -> Result<Self, NoiseError> {
        if model.n_qubits() < layered.n_qubits() {
            return Err(NoiseError::WidthMismatch {
                model: model.n_qubits(),
                circuit: layered.n_qubits(),
            });
        }
        let mut positions = Vec::with_capacity(layered.total_gates());
        for (layer, gates) in layered.layers().enumerate() {
            let mut busy = vec![false; layered.n_qubits()];
            for op in gates {
                let rate = model.gate_rate(op)?;
                for &q in &op.qubits {
                    busy[q] = true;
                }
                let (qubits, is_pair, weights) = match op.qubits.len() {
                    1 => ((op.qubits[0], usize::MAX), false, model.single_weights(op.qubits[0])),
                    2 => {
                        let (a, b) = (op.qubits[0], op.qubits[1]);
                        ((a.min(b), a.max(b)), true, PauliWeights::zero())
                    }
                    _ => unreachable!("gate_rate rejected arity >= 3"),
                };
                positions.push(Position { layer, qubits, is_pair, rate, weights });
            }
            // Idle errors: qubits no gate touched this layer (paper
            // para. III.B.1: errors that "can happen without an operation").
            if model.has_idle_errors() {
                for (q, &is_busy) in busy.iter().enumerate() {
                    if is_busy {
                        continue;
                    }
                    let weights = model.idle_weights(q).expect("idle errors enabled");
                    if weights.total() > 0.0 {
                        positions.push(Position {
                            layer,
                            qubits: (q, usize::MAX),
                            is_pair: false,
                            rate: weights.total(),
                            weights,
                        });
                    }
                }
            }
        }
        let readouts =
            layered.measurements().iter().map(|&(q, _)| (q, model.readout_rate(q))).collect();
        Ok(TrialGenerator {
            n_qubits: layered.n_qubits(),
            n_layers: layered.n_layers(),
            positions,
            readouts,
        })
    }

    /// Number of error positions (= gates) per trial.
    pub fn n_positions(&self) -> usize {
        self.positions.len()
    }

    /// Summary of every error position — `(layer, total rate, operator
    /// variants)` — for analytic models of the expected savings (each
    /// position splits into 3 single-qubit or 15 two-qubit operator
    /// variants with equal conditional probability under the symmetric
    /// channel; asymmetric weights keep the total).
    pub fn position_info(&self) -> Vec<PositionInfo> {
        self.positions
            .iter()
            .map(|p| PositionInfo {
                layer: p.layer,
                rate: p.rate,
                n_variants: if p.is_pair { 15 } else { 3 },
            })
            .collect()
    }

    /// Expected number of injections per trial, `Σ rate`.
    pub fn expected_injections(&self) -> f64 {
        self.positions.iter().map(|p| p.rate).sum()
    }

    /// Direct sampling: one Bernoulli draw per position per trial.
    /// Deterministic in `seed`.
    pub fn generate(&self, n_trials: usize, seed: u64) -> TrialSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trials = Vec::with_capacity(n_trials);
        for _ in 0..n_trials {
            let mut injections = Vec::new();
            for pos in &self.positions {
                if rng.random::<f64>() < pos.rate {
                    injections.push(sample_operator(pos, &mut rng));
                }
            }
            let flips = self.sample_flips_direct(&mut rng);
            trials.push(Trial::new(injections, flips, rng.random::<u64>()));
        }
        TrialSet::new(self.n_qubits, self.n_layers, trials)
    }

    /// Binomial fast path: per rate class, draw the number of injected
    /// errors and then choose that many distinct positions. Statistically
    /// identical to [`TrialGenerator::generate`] (each position is included
    /// independently with its rate), but costs `O(errors)` instead of
    /// `O(positions)` per trial. Deterministic in `seed` (but a *different*
    /// stream than `generate`).
    pub fn generate_fast(&self, n_trials: usize, seed: u64) -> TrialSet {
        let mut rng = StdRng::seed_from_u64(seed);
        // Group positions by exact rate.
        let mut classes: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, pos) in self.positions.iter().enumerate() {
            if pos.rate > 0.0 {
                classes.entry(pos.rate.to_bits()).or_default().push(i);
            }
        }
        let mut classes: Vec<(f64, Vec<usize>)> =
            classes.into_iter().map(|(bits, idxs)| (f64::from_bits(bits), idxs)).collect();
        classes.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("rates are finite"));
        let binomials: Vec<(Binomial, &[usize])> = classes
            .iter()
            .map(|(rate, idxs)| (Binomial::new(idxs.len() as u64, *rate), idxs.as_slice()))
            .collect();

        // Readout classes.
        let mut readout_classes: HashMap<u64, Vec<usize>> = HashMap::new();
        for (q, rate) in &self.readouts {
            if *rate > 0.0 {
                readout_classes.entry(rate.to_bits()).or_default().push(*q);
            }
        }
        let mut readout_classes: Vec<(f64, Vec<usize>)> =
            readout_classes.into_iter().map(|(bits, qs)| (f64::from_bits(bits), qs)).collect();
        readout_classes.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("rates are finite"));
        let readout_binomials: Vec<(Binomial, &[usize])> = readout_classes
            .iter()
            .map(|(rate, qs)| (Binomial::new(qs.len() as u64, *rate), qs.as_slice()))
            .collect();

        let mut trials = Vec::with_capacity(n_trials);
        let mut scratch: Vec<usize> = Vec::new();
        for _ in 0..n_trials {
            let mut injections = Vec::new();
            for (dist, idxs) in &binomials {
                let k = dist.sample(&mut rng) as usize;
                choose_distinct(idxs, k, &mut rng, &mut scratch);
                for &pos_idx in scratch.iter() {
                    injections.push(sample_operator(&self.positions[pos_idx], &mut rng));
                }
            }
            let mut flips = 0u64;
            for (dist, qs) in &readout_binomials {
                let k = dist.sample(&mut rng) as usize;
                choose_distinct(qs, k, &mut rng, &mut scratch);
                for &q in scratch.iter() {
                    flips |= 1u64 << q;
                }
            }
            trials.push(Trial::new(injections, flips, rng.random::<u64>()));
        }
        TrialSet::new(self.n_qubits, self.n_layers, trials)
    }

    /// Exact conditional sampling: generate `n_trials` trials **given at
    /// least `min_errors` injections**, plus the probability of that
    /// conditioning event. For rare-event studies (logical failure rates,
    /// multi-error tails) this replaces hopeless rejection sampling:
    /// an unbiased estimator of any statistic `f` is
    /// `P(≥k errors) · mean(f over the conditional set)` for the `≥ k`
    /// contribution.
    ///
    /// The sampler walks positions in order, drawing each Bernoulli
    /// conditioned on the suffix still being able to satisfy the remaining
    /// requirement (a Poisson-binomial suffix DP, `O(positions ·
    /// min_errors)` setup, exact — not an importance-sampling
    /// approximation). Readout flips and seeds are sampled as usual.
    ///
    /// Returns `(trials, event_probability)`.
    ///
    /// # Panics
    ///
    /// Panics if the conditioning event is impossible (`min_errors`
    /// exceeds the number of positions with nonzero rate).
    pub fn generate_conditional(
        &self,
        n_trials: usize,
        min_errors: usize,
        seed: u64,
    ) -> (TrialSet, f64) {
        let positions = &self.positions;
        let n_pos = positions.len();
        // Suffix DP: at_least[i][j] = P(≥ j errors among positions i..).
        // Stored flat with stride (min_errors + 1).
        let stride = min_errors + 1;
        let mut at_least = vec![0.0f64; (n_pos + 1) * stride];
        for i in (0..=n_pos).rev() {
            at_least[i * stride] = 1.0; // ≥ 0 errors is certain
            for j in 1..=min_errors {
                at_least[i * stride + j] = if i == n_pos {
                    0.0
                } else {
                    let r = positions[i].rate;
                    r * at_least[(i + 1) * stride + (j - 1)]
                        + (1.0 - r) * at_least[(i + 1) * stride + j]
                };
            }
        }
        let event_probability = at_least[min_errors];
        assert!(
            event_probability > 0.0,
            "conditioning on >= {min_errors} errors is impossible for this circuit/model"
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let mut trials = Vec::with_capacity(n_trials);
        for _ in 0..n_trials {
            let mut injections = Vec::new();
            let mut needed = min_errors;
            for (i, pos) in positions.iter().enumerate() {
                let hit = if needed == 0 {
                    rng.random::<f64>() < pos.rate
                } else {
                    let p_hit = pos.rate * at_least[(i + 1) * stride + (needed - 1)]
                        / at_least[i * stride + needed];
                    rng.random::<f64>() < p_hit
                };
                if hit {
                    injections.push(sample_operator(pos, &mut rng));
                    needed = needed.saturating_sub(1);
                }
            }
            debug_assert!(injections.len() >= min_errors);
            let flips = self.sample_flips_direct(&mut rng);
            trials.push(Trial::new(injections, flips, rng.random::<u64>()));
        }
        (TrialSet::new(self.n_qubits, self.n_layers, trials), event_probability)
    }

    fn sample_flips_direct(&self, rng: &mut StdRng) -> u64 {
        let mut flips = 0u64;
        for &(q, rate) in &self.readouts {
            if rng.random::<f64>() < rate {
                flips |= 1u64 << q;
            }
        }
        flips
    }
}

/// Choose an error operator for a triggered position: one of the 3 Paulis
/// by the position's weights (single sites; the symmetric channel of the
/// paper's Fig. 3 is the uniform special case) or uniformly one of the 15
/// non-identity Pauli pairs (pair sites).
fn sample_operator<R: Rng>(pos: &Position, rng: &mut R) -> Injection {
    if pos.is_pair {
        let code = rng.random_range(1..16u8);
        let decode = |c: u8| if c == 0 { None } else { Some(Pauli::from_code(c - 1)) };
        Injection::pair(pos.layer, pos.qubits, decode(code % 4), decode(code / 4))
    } else {
        let pauli = pos.weights.sample_conditional(rng);
        Injection::single(pos.layer, pos.qubits.0, pauli)
    }
}

/// Sample `k` distinct elements of `pool` into `out` (unordered). Uses
/// rejection via a partial Fisher–Yates over indices when `k` is a large
/// fraction of the pool, plain rejection otherwise (`k` is almost always
/// tiny compared to the pool in this workload).
fn choose_distinct<R: Rng>(pool: &[usize], k: usize, rng: &mut R, out: &mut Vec<usize>) {
    out.clear();
    let n = pool.len();
    if k == 0 {
        return;
    }
    if k >= n {
        out.extend_from_slice(pool);
        return;
    }
    if k * 4 <= n {
        // Rejection sampling.
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        while chosen.len() < k {
            chosen.insert(rng.random_range(0..n));
        }
        out.extend(chosen.into_iter().map(|i| pool[i]));
    } else {
        // Partial Fisher–Yates.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            indices.swap(i, j);
        }
        out.extend(indices[..k].iter().map(|&i| pool[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::catalog;

    fn bv_generator(rate_scale: f64) -> (TrialGenerator, usize) {
        let layered = catalog::bv(4, 0b111).layered().unwrap();
        let model = NoiseModel::uniform(4, 1e-2 * rate_scale, 1e-1 * rate_scale, 5e-2 * rate_scale);
        let gates = layered.total_gates();
        (TrialGenerator::new(&layered, &model).unwrap(), gates)
    }

    #[test]
    fn positions_cover_every_gate() {
        let (generator, gates) = bv_generator(1.0);
        assert_eq!(generator.n_positions(), gates);
        assert!(generator.expected_injections() > 0.0);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let (generator, _) = bv_generator(1.0);
        assert_eq!(generator.generate(50, 7), generator.generate(50, 7));
        assert_ne!(generator.generate(50, 7), generator.generate(50, 8));
        assert_eq!(generator.generate_fast(50, 7), generator.generate_fast(50, 7));
    }

    #[test]
    fn zero_noise_generates_error_free_trials() {
        let layered = catalog::bv(4, 0b111).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        for set in [generator.generate(20, 1), generator.generate_fast(20, 1)] {
            assert_eq!(set.total_injections(), 0);
            assert!(set.trials().iter().all(|t| t.meas_flip_mask() == 0));
        }
    }

    #[test]
    fn injection_rate_matches_expectation() {
        let (generator, _) = bv_generator(1.0);
        let expected = generator.expected_injections();
        let n = 20_000;
        for set in [generator.generate(n, 42), generator.generate_fast(n, 42)] {
            let mean = set.mean_injections();
            assert!(
                (mean - expected).abs() < 0.05 * expected.max(0.1),
                "mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn direct_and_fast_sampling_agree_statistically() {
        let (generator, _) = bv_generator(2.0);
        let n = 30_000;
        let direct = generator.generate(n, 1);
        let fast = generator.generate_fast(n, 2);
        let mean_d = direct.mean_injections();
        let mean_f = fast.mean_injections();
        assert!((mean_d - mean_f).abs() < 0.05 * mean_d.max(0.1), "{mean_d} vs {mean_f}");
        // Flip frequencies agree too.
        let flips = |set: &TrialSet| {
            set.trials().iter().filter(|t| t.meas_flip_mask() != 0).count() as f64
                / set.len() as f64
        };
        assert!((flips(&direct) - flips(&fast)).abs() < 0.02);
    }

    #[test]
    fn pair_sites_occur_for_cnot_errors() {
        let layered = catalog::bv(4, 0b111).layered().unwrap();
        // Only two-qubit noise.
        let model = NoiseModel::uniform(4, 0.0, 0.5, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let set = generator.generate(200, 3);
        assert!(set.total_injections() > 0);
        for trial in set.trials() {
            for inj in trial.injections() {
                assert!(matches!(inj.site(), crate::Site::Two(..)));
            }
        }
    }

    #[test]
    fn rejects_model_narrower_than_circuit() {
        let layered = catalog::bv(5, 0b1).layered().unwrap();
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        assert!(matches!(
            TrialGenerator::new(&layered, &model),
            Err(NoiseError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_untranspiled_circuits() {
        let mut qc = qsim_circuit::Circuit::new("ccx", 3, 3);
        qc.ccx(0, 1, 2).measure_all();
        let layered = qc.layered().unwrap();
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        assert!(matches!(
            TrialGenerator::new(&layered, &model),
            Err(NoiseError::NonNativeGate { .. })
        ));
    }

    #[test]
    fn readout_flip_rate_matches_model() {
        let layered = catalog::bv(4, 0b101).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.25);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let n = 20_000;
        let set = generator.generate(n, 5);
        // 3 measured qubits, each flipping with p = 0.25.
        let mean_flips: f64 =
            set.trials().iter().map(|t| t.meas_flip_mask().count_ones() as f64).sum::<f64>()
                / n as f64;
        assert!((mean_flips - 0.75).abs() < 0.03, "mean flips {mean_flips}");
    }

    #[test]
    fn choose_distinct_returns_unique_elements() {
        let pool: Vec<usize> = (100..150).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        for k in [0usize, 1, 5, 25, 49, 50, 60] {
            choose_distinct(&pool, k, &mut rng, &mut out);
            let expected = k.min(pool.len());
            assert_eq!(out.len(), expected);
            let unique: std::collections::HashSet<_> = out.iter().collect();
            assert_eq!(unique.len(), expected);
            assert!(out.iter().all(|v| pool.contains(v)));
        }
    }

    #[test]
    fn operator_choice_is_uniform_over_paulis() {
        let layered = catalog::bv(4, 0b1).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.9, 0.0, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let set = generator.generate(10_000, 11);
        let mut counts = [0usize; 3];
        for trial in set.trials() {
            for inj in trial.injections() {
                let (p, _) = inj.factors();
                counts[p.unwrap().code() as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for &count in &counts {
            let freq = count as f64 / total as f64;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "pauli frequency {freq}");
        }
    }

    #[test]
    fn asymmetric_weights_bias_the_operator_choice() {
        let layered = catalog::bv(4, 0b1).layered().unwrap();
        let mut model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        for q in 0..4 {
            // 3:1 Z:X, no Y.
            model.set_single_weights(q, PauliWeights::new(0.1, 0.0, 0.3).unwrap()).unwrap();
        }
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        for set in [generator.generate(8_000, 2), generator.generate_fast(8_000, 2)] {
            let mut counts = [0usize; 3];
            for trial in set.trials() {
                for inj in trial.injections() {
                    let (p, _) = inj.factors();
                    counts[p.unwrap().code() as usize] += 1;
                }
            }
            assert_eq!(counts[1], 0, "Y must never be injected");
            let x_freq = counts[0] as f64 / (counts[0] + counts[2]) as f64;
            assert!((x_freq - 0.25).abs() < 0.03, "X frequency {x_freq}");
        }
    }

    #[test]
    fn idle_positions_cover_untouched_qubits() {
        // One H on qubit 0 of a 3-qubit register: per layer, qubits 1 and 2
        // idle; the measurement-only qubits idle in no extra layers (idle
        // errors are per gate layer).
        let mut qc = qsim_circuit::Circuit::new("idle", 3, 3);
        qc.h(0).h(0).measure_all();
        let layered = qc.layered().unwrap();
        let mut model = NoiseModel::uniform(3, 1e-3, 0.0, 0.0);
        let without_idle = TrialGenerator::new(&layered, &model).unwrap();
        assert_eq!(without_idle.n_positions(), 2);
        model.set_idle_weights_all(PauliWeights::dephasing(5e-3));
        let with_idle = TrialGenerator::new(&layered, &model).unwrap();
        // 2 gate positions + 2 layers × 2 idle qubits.
        assert_eq!(with_idle.n_positions(), 6);
        let expected = 2.0 * 1e-3 + 4.0 * 5e-3;
        assert!((with_idle.expected_injections() - expected).abs() < 1e-12);
        // Idle injections land on the idle qubits only, and are pure Z.
        let set = with_idle.generate(20_000, 4);
        let mut idle_hits = 0usize;
        for trial in set.trials() {
            for inj in trial.injections() {
                if let crate::Site::One(q) = inj.site() {
                    if q != 0 {
                        idle_hits += 1;
                        assert_eq!(inj.factors().0, Some(Pauli::Z), "idle channel is dephasing");
                    }
                }
            }
        }
        assert!(idle_hits > 0, "idle errors never triggered");
    }

    #[test]
    fn conditional_trials_always_meet_the_minimum() {
        let (generator, _) = bv_generator(1.0);
        for min_errors in [1usize, 2, 3] {
            let (set, p_event) = generator.generate_conditional(2000, min_errors, 5);
            assert!(set.trials().iter().all(|t| t.n_injections() >= min_errors));
            assert!((0.0..=1.0).contains(&p_event));
        }
    }

    #[test]
    fn conditional_event_probability_matches_direct_frequency() {
        // Moderate rates so the event is common enough to check directly.
        let (generator, _) = bv_generator(3.0);
        let (_, p_event) = generator.generate_conditional(1, 2, 0);
        let n = 40_000;
        let direct = generator.generate(n, 7);
        let freq =
            direct.trials().iter().filter(|t| t.n_injections() >= 2).count() as f64 / n as f64;
        assert!(
            (p_event - freq).abs() < 4.0 * (freq * (1.0 - freq) / n as f64).sqrt() + 1e-3,
            "DP P(>=2) = {p_event} vs direct frequency {freq}"
        );
    }

    #[test]
    fn conditional_distribution_matches_rejection_sampling() {
        // The conditional injection-count histogram must match the
        // rejection-filtered direct histogram.
        let (generator, _) = bv_generator(3.0);
        let min_errors = 2;
        let (conditional, _) = generator.generate_conditional(30_000, min_errors, 1);
        let direct = generator.generate(120_000, 2);
        let hist = |counts: Vec<usize>| -> Vec<f64> {
            let total: usize = counts.iter().sum();
            counts.into_iter().map(|c| c as f64 / total.max(1) as f64).collect()
        };
        let cond_hist = hist(conditional.injection_histogram()[min_errors..].to_vec());
        let rejected: Vec<usize> =
            direct.injection_histogram().get(min_errors..).unwrap_or(&[]).to_vec();
        let reject_hist = hist(rejected);
        for (k, (a, b)) in cond_hist.iter().zip(&reject_hist).enumerate() {
            assert!((a - b).abs() < 0.03, "k = {}: {a} vs {b}", k + min_errors);
        }
    }

    #[test]
    fn conditional_weighting_reproduces_direct_tail_estimates() {
        // P(outcome has >= 2 errors AND first error in layer 0) estimated
        // directly vs conditionally-with-weight must agree.
        let (generator, _) = bv_generator(3.0);
        let statistic = |set: &TrialSet| -> f64 {
            set.trials()
                .iter()
                .filter(|t| {
                    t.n_injections() >= 2 && t.injections().first().map(|i| i.layer()) == Some(0)
                })
                .count() as f64
                / set.len() as f64
        };
        let direct = generator.generate(120_000, 3);
        let direct_estimate = statistic(&direct);
        let (conditional, p_event) = generator.generate_conditional(30_000, 2, 4);
        let conditional_frequency = conditional
            .trials()
            .iter()
            .filter(|t| t.injections().first().map(|i| i.layer()) == Some(0))
            .count() as f64
            / conditional.len() as f64;
        let weighted = p_event * conditional_frequency;
        assert!(
            (weighted - direct_estimate).abs() < 0.01,
            "weighted {weighted} vs direct {direct_estimate}"
        );
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn conditional_rejects_unsatisfiable_requirements() {
        let layered = catalog::bv(4, 0b1).layered().unwrap();
        let model = NoiseModel::uniform(4, 0.0, 0.0, 0.0);
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        let _ = generator.generate_conditional(1, 1, 0);
    }

    #[test]
    fn layering_strategy_moves_idle_positions_not_counts() {
        // h(1) has no dependencies: ASAP schedules it early (qubit 1 idles
        // late), ALAP late (qubit 1 idles early). Totals are identical, so
        // savings metrics are unaffected; only positions move.
        use qsim_circuit::LayeringStrategy;
        let mut qc = qsim_circuit::Circuit::new("sched", 2, 2);
        qc.h(0).t(0).s(0).h(1).measure_all();
        let mut model = NoiseModel::uniform(2, 0.0, 0.0, 0.0);
        model.set_idle_weights_all(PauliWeights::dephasing(1e-2));
        let asap = TrialGenerator::new(&qc.layered().unwrap(), &model).unwrap();
        let alap =
            TrialGenerator::new(&qc.layered_with(LayeringStrategy::Alap).unwrap(), &model).unwrap();
        assert_eq!(asap.n_positions(), alap.n_positions());
        assert!((asap.expected_injections() - alap.expected_injections()).abs() < 1e-12);
        // Under ASAP, qubit 1 idles in layers 1..3; under ALAP in 0..2.
        let layer_mass = |generator: &TrialGenerator| -> Vec<usize> {
            let set = generator.generate(4000, 3);
            set.layer_histogram()
        };
        let asap_hist = layer_mass(&asap);
        let alap_hist = layer_mass(&alap);
        assert_eq!(asap_hist.len(), alap_hist.len());
        assert_ne!(asap_hist, alap_hist, "strategies should move idle mass");
    }

    #[test]
    fn zero_weight_idle_qubits_add_no_positions() {
        let mut qc = qsim_circuit::Circuit::new("idle", 2, 2);
        qc.h(0).measure_all();
        let layered = qc.layered().unwrap();
        let mut model = NoiseModel::uniform(2, 1e-3, 0.0, 0.0);
        model.set_idle_weights(1, PauliWeights::zero()).unwrap();
        let generator = TrialGenerator::new(&layered, &model).unwrap();
        assert_eq!(generator.n_positions(), 1);
    }
}
