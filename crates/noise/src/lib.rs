#![warn(missing_docs)]
//! Noise modeling and Monte-Carlo error-injection trial generation for
//! noisy quantum-circuit simulation.
//!
//! This crate implements the error-model machinery of the paper's §III.B:
//!
//! * **Error operators** — Pauli X/Y/Z for one-qubit gate errors and the 15
//!   non-identity two-qubit Pauli pairs for CNOT errors ([`Injection`]).
//! * **Error positions** — the end of the layer of the gate that triggered
//!   the error, identified by `(layer, site)`.
//! * **Error probabilities** — the symmetric depolarizing channel of Fig. 3
//!   with per-qubit/per-edge rates from device calibration
//!   ([`NoiseModel::ibm_yorktown`] hard-codes the paper's Fig. 4) or uniform
//!   artificial rates for the scalability study
//!   ([`NoiseModel::uniform`]).
//! * **Measurement errors** — classical readout bit flips applied to the
//!   measured outcome.
//!
//! [`TrialGenerator`] samples complete trial sets ahead of execution —
//! exactly the "statically generate the Monte Carlo simulation trials before
//! the actual simulation" step that enables the paper's reordering.
//!
//! # Example
//!
//! ```
//! use qsim_circuit::catalog;
//! use qsim_noise::{NoiseModel, TrialGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layered = catalog::bv(4, 0b111).layered()?;
//! let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
//! let trials = TrialGenerator::new(&layered, &model)?.generate(1024, 7);
//! assert_eq!(trials.len(), 1024);
//! # Ok(())
//! # }
//! ```

mod binomial;
pub mod calibration;
mod error;
mod injection;
mod model;
mod order;
mod trial;
pub mod trial_io;
mod trialgen;
mod weights;

pub use binomial::Binomial;
pub use error::NoiseError;
pub use injection::{Injection, Site};
pub use model::NoiseModel;
pub use order::{compare_injections, compare_trials, lcp};
pub use trial::{injection_cut_layers, Trial, TrialSet};
pub use trialgen::{PositionInfo, TrialGenerator};
pub use weights::PauliWeights;

pub use qsim_statevec::Pauli;
