//! A plain-text calibration format for [`NoiseModel`], so device data like
//! the paper's Fig. 4 table can live in version-controlled files.
//!
//! ```text
//! # IBM Q5 Yorktown (paper Fig. 4)
//! qubits 5
//! single 0 1.37e-3          # symmetric depolarizing, total rate
//! single 2 x=1e-3 y=1e-3 z=2e-4   # asymmetric channel
//! pair 0 1 2.72e-2
//! default-pair 3.5e-2
//! readout 0 2.4e-2
//! idle * z=1e-4             # idle channel on every qubit
//! idle 3 x=2e-4 y=0 z=5e-4  # per-qubit override
//! ```
//!
//! Lines are independent; `#` starts a comment; later lines override
//! earlier ones. [`emit`] writes a file that [`parse`] reads back into an
//! identical model.

use crate::{NoiseError, NoiseModel, PauliWeights};

/// Parse a calibration file into a model.
///
/// # Errors
///
/// Returns [`NoiseError::Calibration`] with the 1-based line number for any
/// syntactic or semantic problem (missing `qubits`, out-of-range indices,
/// invalid probabilities).
pub fn parse(source: &str) -> Result<NoiseModel, NoiseError> {
    let mut model: Option<NoiseModel> = None;
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| NoiseError::Calibration { line: line_no, message };
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("nonempty line has a first word");
        let rest: Vec<&str> = words.collect();
        if keyword == "qubits" {
            let n: usize = parse_one(&rest, 0, line_no, "qubit count")?;
            model = Some(NoiseModel::uniform(n, 0.0, 0.0, 0.0));
            continue;
        }
        let model =
            model.as_mut().ok_or_else(|| err("the file must start with `qubits N`".to_owned()))?;
        match keyword {
            "single" => {
                let qubit: usize = parse_one(&rest, 0, line_no, "qubit index")?;
                let weights = parse_weights(&rest[1..], line_no)?;
                model.set_single_weights(qubit, weights).map_err(|e| err(e.to_string()))?;
            }
            "pair" => {
                let a: usize = parse_one(&rest, 0, line_no, "first qubit")?;
                let b: usize = parse_one(&rest, 1, line_no, "second qubit")?;
                let rate: f64 = parse_one(&rest, 2, line_no, "pair rate")?;
                model.set_pair_rate(a, b, rate).map_err(|e| err(e.to_string()))?;
            }
            "default-pair" => {
                let rate: f64 = parse_one(&rest, 0, line_no, "default pair rate")?;
                model.set_default_pair_rate(rate).map_err(|e| err(e.to_string()))?;
            }
            "readout" => {
                let qubit: usize = parse_one(&rest, 0, line_no, "qubit index")?;
                let rate: f64 = parse_one(&rest, 1, line_no, "readout rate")?;
                model.set_readout_rate(qubit, rate).map_err(|e| err(e.to_string()))?;
            }
            "idle" => {
                let target =
                    rest.first().ok_or_else(|| err("idle needs a qubit or *".to_owned()))?;
                let weights = parse_weights(&rest[1..], line_no)?;
                if *target == "*" {
                    model.set_idle_weights_all(weights);
                } else {
                    let qubit: usize =
                        target.parse().map_err(|e| err(format!("invalid qubit index: {e}")))?;
                    model.set_idle_weights(qubit, weights).map_err(|e| err(e.to_string()))?;
                }
            }
            other => return Err(err(format!("unknown keyword {other:?}"))),
        }
    }
    model.ok_or(NoiseError::Calibration {
        line: 0,
        message: "empty calibration: no `qubits N` line".to_owned(),
    })
}

/// Render a model in the calibration format (round-trips through [`parse`]).
pub fn emit(model: &NoiseModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "qubits {}", model.n_qubits());
    for q in 0..model.n_qubits() {
        let w = model.single_weights(q);
        let _ = writeln!(out, "single {q} x={:e} y={:e} z={:e}", w.x, w.y, w.z);
    }
    let _ = writeln!(out, "default-pair {:e}", model.default_pair_rate());
    for ((a, b), rate) in model.pair_overrides() {
        let _ = writeln!(out, "pair {a} {b} {rate:e}");
    }
    for q in 0..model.n_qubits() {
        let _ = writeln!(out, "readout {q} {:e}", model.readout_rate(q));
    }
    if model.has_idle_errors() {
        for q in 0..model.n_qubits() {
            let w = model.idle_weights(q).expect("idle errors enabled");
            let _ = writeln!(out, "idle {q} x={:e} y={:e} z={:e}", w.x, w.y, w.z);
        }
    }
    out
}

fn parse_one<T: std::str::FromStr>(
    rest: &[&str],
    index: usize,
    line: usize,
    what: &str,
) -> Result<T, NoiseError>
where
    T::Err: std::fmt::Display,
{
    rest.get(index)
        .ok_or_else(|| NoiseError::Calibration { line, message: format!("missing {what}") })?
        .parse()
        .map_err(|e| NoiseError::Calibration { line, message: format!("invalid {what}: {e}") })
}

/// Either one bare rate (symmetric) or `x=… y=… z=…` pairs.
fn parse_weights(rest: &[&str], line: usize) -> Result<PauliWeights, NoiseError> {
    let err = |message: String| NoiseError::Calibration { line, message };
    if rest.is_empty() {
        return Err(err("missing rate or x=/y=/z= weights".to_owned()));
    }
    if !rest[0].contains('=') {
        let total: f64 = rest[0].parse().map_err(|e| err(format!("invalid rate: {e}")))?;
        if !(0.0..=1.0).contains(&total) {
            return Err(err(format!("rate {total} out of [0, 1]")));
        }
        return Ok(PauliWeights::symmetric(total));
    }
    let (mut x, mut y, mut z) = (0.0f64, 0.0f64, 0.0f64);
    for part in rest {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("expected key=value, found {part:?}")))?;
        let value: f64 = value.parse().map_err(|e| err(format!("invalid {key} weight: {e}")))?;
        match key {
            "x" => x = value,
            "y" => y = value,
            "z" => z = value,
            other => return Err(err(format!("unknown weight key {other:?}"))),
        }
    }
    PauliWeights::new(x, y, z).map_err(|e| err(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_file() {
        let model = parse("qubits 3\nsingle 0 1e-3\npair 0 1 1e-2\nreadout 2 5e-2\n").unwrap();
        assert_eq!(model.n_qubits(), 3);
        assert!((model.single_rate(0) - 1e-3).abs() < 1e-15);
        assert_eq!(model.single_rate(1), 0.0);
        assert_eq!(model.two_rate(0, 1), 1e-2);
        assert_eq!(model.two_rate(1, 2), 0.0);
        assert_eq!(model.readout_rate(2), 5e-2);
        assert!(!model.has_idle_errors());
    }

    #[test]
    fn parses_asymmetric_and_idle_channels() {
        let model =
            parse("qubits 2\nsingle 0 x=1e-3 z=3e-3\nidle * z=1e-4\nidle 1 x=2e-4 y=0 z=0\n")
                .unwrap();
        let w = model.single_weights(0);
        assert_eq!((w.x, w.y, w.z), (1e-3, 0.0, 3e-3));
        assert_eq!(model.idle_weights(0), Some(PauliWeights::dephasing(1e-4)));
        assert_eq!(model.idle_weights(1), Some(PauliWeights::bit_flip(2e-4)));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let model = parse("# header\n\nqubits 1\nsingle 0 1e-3 # inline\n").unwrap();
        assert!((model.single_rate(0) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn yorktown_round_trips() {
        let original = NoiseModel::ibm_yorktown();
        let text = emit(&original);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn idle_model_round_trips() {
        let mut original = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        original.set_idle_weights_all(PauliWeights::new(1e-4, 0.0, 3e-4).unwrap());
        original.set_single_weights(1, PauliWeights::dephasing(4e-3)).unwrap();
        let parsed = parse(&emit(&original)).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("qubits 2\nsingle 9 1e-3\n").unwrap_err();
        assert!(matches!(err, NoiseError::Calibration { line: 2, .. }), "{err}");
        let err = parse("single 0 1e-3\n").unwrap_err();
        assert!(err.to_string().contains("must start with"), "{err}");
        let err = parse("qubits 2\nfrobnicate 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown keyword"), "{err}");
        let err = parse("qubits 2\nsingle 0 2.0\n").unwrap_err();
        assert!(err.to_string().contains("out of [0, 1]"), "{err}");
        let err = parse("").unwrap_err();
        assert!(err.to_string().contains("empty calibration"), "{err}");
        let err = parse("qubits 1\nsingle 0 x=1 y=1 z=1\n").unwrap_err();
        assert!(matches!(err, NoiseError::Calibration { line: 2, .. }), "{err}");
    }
}
