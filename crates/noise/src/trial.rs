use std::fmt;

use qsim_statevec::MeasureOutcome;

use crate::Injection;

/// One Monte-Carlo error-injection trial: a canonically sorted list of
/// injected errors, the trial's classical readout-flip decisions, and a
/// private seed for measurement sampling.
///
/// The seed makes a trial's measurement outcome a pure function of the trial
/// itself rather than of execution order — which is what lets the reordered
/// executor produce **bitwise identical** results to the baseline (the
/// paper's "mathematically equivalent to the original simulation").
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Trial {
    injections: Vec<Injection>,
    meas_flips: u64,
    seed: u64,
}

impl Trial {
    /// Build a trial; the injection list is sorted into canonical
    /// (layer, site, operator) order.
    ///
    /// # Panics
    ///
    /// Panics if two injections share the same error position — the
    /// depolarizing channel injects at most one operator per position.
    pub fn new(mut injections: Vec<Injection>, meas_flips: u64, seed: u64) -> Self {
        injections.sort_unstable();
        for pair in injections.windows(2) {
            assert!(
                !(pair[0].layer() == pair[1].layer() && pair[0].site() == pair[1].site()),
                "duplicate error position {} in one trial",
                pair[0]
            );
        }
        Trial { injections, meas_flips, seed }
    }

    /// A trial with no injected errors (the error-free execution of the
    /// paper's Fig. 2a).
    pub fn error_free(seed: u64) -> Self {
        Trial { injections: Vec::new(), meas_flips: 0, seed }
    }

    /// The sorted injection list.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Number of injected errors.
    pub fn n_injections(&self) -> usize {
        self.injections.len()
    }

    /// Whether the readout of `qubit` flips classically.
    pub fn flips_qubit(&self, qubit: usize) -> bool {
        qubit < 64 && self.meas_flips >> qubit & 1 == 1
    }

    /// The raw flip mask (bit *q* = flip qubit *q*).
    pub fn meas_flip_mask(&self) -> u64 {
        self.meas_flips
    }

    /// The trial's measurement-sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Apply this trial's readout errors to a sampled outcome in place
    /// (paper §III.B.1 "we directly flip the measurement result bit").
    pub fn apply_meas_flips(&self, outcome: &mut MeasureOutcome) {
        for q in 0..outcome.n_qubits().min(64) {
            if self.flips_qubit(q) {
                outcome.flip(q);
            }
        }
    }
}

impl fmt::Display for Trial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trial[")?;
        for (i, inj) in self.injections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{inj}")?;
        }
        write!(f, "]")?;
        if self.meas_flips != 0 {
            write!(f, " flips={:b}", self.meas_flips)?;
        }
        Ok(())
    }
}

/// A complete set of statically generated trials for one circuit + model.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct TrialSet {
    n_qubits: usize,
    n_layers: usize,
    trials: Vec<Trial>,
}

impl TrialSet {
    /// Bundle trials with their circuit geometry.
    pub fn new(n_qubits: usize, n_layers: usize, trials: Vec<Trial>) -> Self {
        TrialSet { n_qubits, n_layers, trials }
    }

    /// Number of qubits of the underlying circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of layers of the underlying circuit.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The trials in generation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Consume into the trial vector.
    pub fn into_trials(self) -> Vec<Trial> {
        self.trials
    }

    /// Total injections across all trials.
    pub fn total_injections(&self) -> usize {
        self.trials.iter().map(Trial::n_injections).sum()
    }

    /// Mean injections per trial.
    pub fn mean_injections(&self) -> f64 {
        if self.trials.is_empty() {
            0.0
        } else {
            self.total_injections() as f64 / self.trials.len() as f64
        }
    }

    /// Histogram of injection counts: `hist[k]` = trials with `k` errors.
    pub fn injection_histogram(&self) -> Vec<usize> {
        let max = self.trials.iter().map(Trial::n_injections).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for t in &self.trials {
            hist[t.n_injections()] += 1;
        }
        hist
    }

    /// Injections per layer: `hist[ℓ]` = total errors injected after layer
    /// `ℓ` across all trials. Useful for spotting where a circuit
    /// concentrates its noise (e.g. CNOT-heavy layers).
    pub fn layer_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.n_layers];
        for trial in &self.trials {
            for inj in trial.injections() {
                hist[inj.layer()] += 1;
            }
        }
        hist
    }

    /// Injections per qubit: two-qubit errors count toward both operands.
    pub fn qubit_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.n_qubits];
        for trial in &self.trials {
            for inj in trial.injections() {
                match inj.site() {
                    crate::Site::One(q) => hist[q] += 1,
                    crate::Site::Two(a, b) => {
                        hist[a] += 1;
                        hist[b] += 1;
                    }
                }
            }
        }
        hist
    }

    /// Sorted, deduplicated union of injection layers across every trial —
    /// the cut-points a fused execution must honour: a state may need to
    /// pause after each of these layers for *some* trial, and nowhere else.
    /// Gate fusion (see `qsim-circuit`'s `fuse` module) is free to merge
    /// across every other layer boundary.
    pub fn injection_layers(&self) -> Vec<usize> {
        injection_cut_layers(&self.trials)
    }

    /// Fraction of trials with no injected error at all — the paper's
    /// "error-free execution" mass, which bounds the best possible sharing.
    pub fn error_free_fraction(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let clean = self.trials.iter().filter(|t| t.n_injections() == 0).count();
        clean as f64 / self.trials.len() as f64
    }
}

/// Sorted, deduplicated union of injection layers across `trials` (see
/// [`TrialSet::injection_layers`]; this form serves executors that work on
/// bare trial slices).
pub fn injection_cut_layers(trials: &[Trial]) -> Vec<usize> {
    let mut layers: Vec<usize> =
        trials.iter().flat_map(|t| t.injections().iter().map(|inj| inj.layer())).collect();
    layers.sort_unstable();
    layers.dedup();
    layers
}

impl fmt::Display for TrialSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TrialSet({} trials, {} qubits, {} layers, mean {:.2} injections)",
            self.len(),
            self.n_qubits,
            self.n_layers,
            self.mean_injections()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::Pauli;

    #[test]
    fn trial_sorts_injections_canonically() {
        let t = Trial::new(
            vec![
                Injection::single(3, 0, Pauli::X),
                Injection::single(0, 2, Pauli::Z),
                Injection::single(0, 1, Pauli::Y),
            ],
            0,
            0,
        );
        let layers: Vec<usize> = t.injections().iter().map(Injection::layer).collect();
        assert_eq!(layers, vec![0, 0, 3]);
        assert!(t.injections()[0] < t.injections()[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate error position")]
    fn trial_rejects_duplicate_positions() {
        let _ = Trial::new(
            vec![Injection::single(1, 0, Pauli::X), Injection::single(1, 0, Pauli::Z)],
            0,
            0,
        );
    }

    #[test]
    fn meas_flips_round_trip() {
        let t = Trial::new(vec![], 0b101, 9);
        assert!(t.flips_qubit(0));
        assert!(!t.flips_qubit(1));
        assert!(t.flips_qubit(2));
        assert!(!t.flips_qubit(63));
        let mut outcome = qsim_statevec::MeasureOutcome::from_index(0b000, 3);
        t.apply_meas_flips(&mut outcome);
        assert_eq!(outcome.to_index(), 0b101);
    }

    #[test]
    fn error_free_trial_is_empty() {
        let t = Trial::error_free(4);
        assert_eq!(t.n_injections(), 0);
        assert_eq!(t.seed(), 4);
        assert_eq!(t.meas_flip_mask(), 0);
    }

    #[test]
    fn set_statistics() {
        let trials = vec![
            Trial::error_free(0),
            Trial::new(vec![Injection::single(0, 0, Pauli::X)], 0, 1),
            Trial::new(
                vec![Injection::single(0, 0, Pauli::X), Injection::single(1, 0, Pauli::Z)],
                0,
                2,
            ),
        ];
        let set = TrialSet::new(2, 3, trials);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.total_injections(), 3);
        assert!((set.mean_injections() - 1.0).abs() < 1e-12);
        assert_eq!(set.injection_histogram(), vec![1, 1, 1]);
    }

    #[test]
    fn display_formats() {
        let t = Trial::new(vec![Injection::single(2, 1, Pauli::Z)], 0b10, 0);
        let text = t.to_string();
        assert!(text.contains("L2:Z@q1"));
        assert!(text.contains("flips=10"));
    }

    #[test]
    fn layer_qubit_and_error_free_statistics() {
        let trials = vec![
            Trial::error_free(0),
            Trial::new(vec![Injection::single(0, 1, Pauli::X)], 0, 1),
            Trial::new(
                vec![
                    Injection::single(0, 0, Pauli::Z),
                    Injection::pair(2, (0, 1), Some(Pauli::X), Some(Pauli::Y)),
                ],
                0,
                2,
            ),
        ];
        let set = TrialSet::new(2, 3, trials);
        assert_eq!(set.layer_histogram(), vec![2, 0, 1]);
        assert_eq!(set.qubit_histogram(), vec![2, 2]);
        assert!((set.error_free_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(TrialSet::new(1, 1, vec![]).error_free_fraction(), 0.0);
    }
}
