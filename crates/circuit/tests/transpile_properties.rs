//! Property-based validation of the full transpile pipeline: for random
//! logical circuits, every pass combination must preserve the measured
//! distribution on every device, and the output must be device-native.

use proptest::prelude::*;
use qsim_circuit::equiv::{distributions_equivalent, unitarily_equivalent, DEFAULT_TOL};
use qsim_circuit::transpile::{transpile, TranspileOptions};
use qsim_circuit::{Circuit, CouplingMap, Gate};

/// One random gate instruction encoded as plain numbers (proptest-friendly).
#[derive(Clone, Debug)]
struct OpSpec {
    kind: usize,
    a: usize,
    b: usize,
    c: usize,
    angle: f64,
}

fn arb_op(n: usize) -> impl Strategy<Value = OpSpec> {
    (0usize..10, 0..n, 0..n, 0..n, -3.1f64..3.1).prop_map(|(kind, a, b, c, angle)| OpSpec {
        kind,
        a,
        b,
        c,
        angle,
    })
}

/// Materialize specs into a valid circuit (skipping degenerate operands).
fn build(n: usize, specs: &[OpSpec], measured: bool) -> Circuit {
    let mut qc = Circuit::new("prop", n, n);
    for spec in specs {
        let (a, b, c) = (spec.a, spec.b, spec.c);
        match spec.kind {
            0 => {
                qc.h(a);
            }
            1 => {
                qc.t(a);
            }
            2 => {
                qc.u(spec.angle, spec.angle / 2.0, -spec.angle, a);
            }
            3 if a != b => {
                qc.cx(a, b);
            }
            4 if a != b => {
                qc.cz(a, b);
            }
            5 if a != b => {
                qc.swap(a, b);
            }
            6 if a != b => {
                qc.cphase(spec.angle, a, b);
            }
            7 if a != b && b != c && a != c => {
                qc.ccx(a, b, c);
            }
            8 => {
                qc.rz(spec.angle, a);
            }
            _ => {
                qc.x(a);
            }
        }
    }
    if measured {
        qc.measure_all();
    }
    qc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full device pipeline preserves the measured distribution on every
    /// supported coupling shape.
    #[test]
    fn device_pipeline_preserves_distributions(specs in proptest::collection::vec(arb_op(4), 1..25)) {
        let logical = build(4, &specs, true);
        for map in [CouplingMap::yorktown(), CouplingMap::linear(4), CouplingMap::grid(2, 2)] {
            let out = transpile(&logical, &TranspileOptions::for_device(map.clone())).unwrap();
            prop_assert!(
                distributions_equivalent(&logical, &out.circuit, 1e-9).unwrap(),
                "distribution changed on {map}"
            );
            for op in out.circuit.gate_ops() {
                prop_assert!(op.gate.is_native());
                if op.gate == Gate::Cx {
                    prop_assert!(map.are_adjacent(op.qubits[0], op.qubits[1]));
                }
            }
        }
    }

    /// Decompose-only pipeline (no routing) is a strict unitary identity.
    #[test]
    fn logical_pipeline_is_unitarily_equivalent(specs in proptest::collection::vec(arb_op(4), 1..25)) {
        let logical = build(4, &specs, false);
        let options = TranspileOptions {
            coupling: None,
            fuse_single_qubit: true,
            cancel_cx: true,
            commute_rotations: true,
        };
        let out = transpile(&logical, &options).unwrap();
        prop_assert!(unitarily_equivalent(&logical, &out.circuit, DEFAULT_TOL).unwrap().is_some());
    }

    /// Optimization passes never increase the gate count.
    #[test]
    fn passes_never_add_gates(specs in proptest::collection::vec(arb_op(4), 1..25)) {
        let logical = build(4, &specs, false);
        let plain = transpile(&logical, &TranspileOptions::logical()).unwrap();
        let optimized = transpile(
            &logical,
            &TranspileOptions {
                coupling: None,
                fuse_single_qubit: true,
                cancel_cx: true,
                commute_rotations: true,
            },
        )
        .unwrap();
        let count = |c: &Circuit| {
            let counts = c.counts();
            counts.single + counts.cnot + counts.other_multi
        };
        prop_assert!(count(&optimized.circuit) <= count(&plain.circuit));
    }
}
