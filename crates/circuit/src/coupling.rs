use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An undirected device connectivity graph. Two-qubit gates may only act on
/// connected physical qubit pairs; the router inserts SWAPs otherwise.
///
/// ```
/// use qsim_circuit::CouplingMap;
///
/// let yorktown = CouplingMap::yorktown();
/// assert_eq!(yorktown.n_qubits(), 5);
/// assert!(yorktown.are_adjacent(0, 2));
/// assert!(!yorktown.are_adjacent(0, 3));
/// assert_eq!(yorktown.shortest_path(0, 3), Some(vec![0, 2, 3]));
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    n_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl CouplingMap {
    /// Build a coupling map from undirected edges (normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n_qubits` or is a self-loop.
    pub fn new(n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop edge on qubit {a}");
            set.insert((a.min(b), a.max(b)));
        }
        CouplingMap { n_qubits, edges: set }
    }

    /// The IBM Q 5 Yorktown ("bowtie") connectivity used in the paper's
    /// realistic experiments (§V.A): edges 0–1, 0–2, 1–2, 2–3, 2–4, 3–4.
    pub fn yorktown() -> Self {
        CouplingMap::new(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
    }

    /// A fully connected device (no routing needed) — used for the paper's
    /// artificial scalability models, which assume uniform error rates and
    /// place no connectivity constraint (§V.B).
    pub fn full(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in a + 1..n_qubits {
                edges.push((a, b));
            }
        }
        CouplingMap::new(n_qubits, &edges)
    }

    /// A 1-D chain 0–1–2–…
    pub fn linear(n_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n_qubits).map(|q| (q - 1, q)).collect();
        CouplingMap::new(n_qubits, &edges)
    }

    /// A rows×cols grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::new(rows * cols, &edges)
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Undirected edges, normalized `(low, high)`, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `a` and `b` share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbors of `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// BFS shortest path from `a` to `b` inclusive, `None` if disconnected
    /// or out of range.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a >= self.n_qubits || b >= self.n_qubits {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        let mut prev = vec![usize::MAX; self.n_qubits];
        let mut queue = VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(q) = queue.pop_front() {
            for n in self.neighbors(q) {
                if prev[n] == usize::MAX {
                    prev[n] = q;
                    if n == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// BFS distance (edge count), `None` if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// Whether every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n_qubits <= 1 {
            return true;
        }
        (1..self.n_qubits).all(|q| self.distance(0, q).is_some())
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CouplingMap({} qubits: ", self.n_qubits)?;
        for (i, (a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yorktown_bowtie_structure() {
        let map = CouplingMap::yorktown();
        assert_eq!(map.n_edges(), 6);
        assert!(map.are_adjacent(1, 2));
        assert!(map.are_adjacent(3, 4));
        assert!(!map.are_adjacent(1, 3));
        assert!(!map.are_adjacent(0, 4));
        assert!(map.is_connected());
        // Qubit 2 is the bowtie center.
        assert_eq!(map.neighbors(2), vec![0, 1, 3, 4]);
    }

    #[test]
    fn shortest_path_crosses_the_center() {
        let map = CouplingMap::yorktown();
        assert_eq!(map.shortest_path(1, 4), Some(vec![1, 2, 4]));
        assert_eq!(map.distance(0, 3), Some(2));
        assert_eq!(map.distance(0, 1), Some(1));
        assert_eq!(map.shortest_path(2, 2), Some(vec![2]));
    }

    #[test]
    fn linear_and_grid_shapes() {
        let line = CouplingMap::linear(4);
        assert_eq!(line.n_edges(), 3);
        assert_eq!(line.distance(0, 3), Some(3));
        let grid = CouplingMap::grid(2, 3);
        assert_eq!(grid.n_qubits(), 6);
        assert_eq!(grid.n_edges(), 7);
        assert_eq!(grid.distance(0, 5), Some(3));
    }

    #[test]
    fn full_map_is_diameter_one() {
        let full = CouplingMap::full(6);
        assert_eq!(full.n_edges(), 15);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(full.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn disconnected_components_report_none() {
        let map = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(map.distance(0, 3), None);
        assert!(!map.is_connected());
    }

    #[test]
    fn edges_are_normalized() {
        let map = CouplingMap::new(3, &[(2, 0), (0, 2), (1, 0)]);
        assert_eq!(map.n_edges(), 2);
        assert!(map.are_adjacent(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let _ = CouplingMap::new(2, &[(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = CouplingMap::new(2, &[(1, 1)]);
    }

    #[test]
    fn out_of_range_path_is_none() {
        let map = CouplingMap::linear(3);
        assert_eq!(map.shortest_path(0, 9), None);
    }
}
