//! Circuit equivalence checking — the validation primitive behind every
//! transpiler pass, exposed for downstream users verifying their own
//! rewrites.

use qsim_statevec::{StateVecError, StateVector, C64};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Circuit;

/// Default tolerance on `1 − fidelity` for equivalence checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Above this width an exhaustive basis sweep (2ⁿ simulations) gives way to
/// random-state probing.
const EXHAUSTIVE_LIMIT: usize = 6;

/// How two circuits were compared by [`unitarily_equivalent`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceEvidence {
    /// All `2ⁿ` computational basis states were checked — a proof (up to a
    /// per-state global phase).
    Exhaustive,
    /// A fixed number of Haar-ish random product states were checked —
    /// overwhelming statistical evidence, not a proof.
    Probabilistic {
        /// How many random states were probed.
        probes: usize,
    },
}

/// Check whether two circuits implement the same unitary **up to a global
/// phase per input state**, by comparing their action (gates only —
/// measurements and barriers are ignored).
///
/// For small registers (≤ 6 qubits) every computational basis state is
/// checked; beyond that, 16 random states are probed (each detects any
/// fixed discrepancy with probability overwhelmingly close to 1).
///
/// Returns `Ok(Some(evidence))` when equivalent and `Ok(None)` when a
/// counterexample state was found.
///
/// # Errors
///
/// Returns [`StateVecError::WidthMismatch`] if the circuits differ in qubit
/// count.
pub fn unitarily_equivalent(
    a: &Circuit,
    b: &Circuit,
    tol: f64,
) -> Result<Option<EquivalenceEvidence>, StateVecError> {
    if a.n_qubits() != b.n_qubits() {
        return Err(StateVecError::WidthMismatch { left: a.n_qubits(), right: b.n_qubits() });
    }
    let n = a.n_qubits();
    let run = |input: &StateVector, circuit: &Circuit| -> Result<StateVector, StateVecError> {
        let mut state = input.clone();
        for op in circuit.gate_ops() {
            op.apply_to(&mut state)?;
        }
        Ok(state)
    };
    if n <= EXHAUSTIVE_LIMIT {
        for basis in 0..1usize << n {
            let input = StateVector::basis_state(n, basis)?;
            let fidelity = run(&input, a)?.fidelity(&run(&input, b)?)?;
            if fidelity < 1.0 - tol {
                return Ok(None);
            }
        }
        Ok(Some(EquivalenceEvidence::Exhaustive))
    } else {
        let probes = 16;
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for _ in 0..probes {
            let amps: Vec<C64> = (0..1usize << n)
                .map(|_| C64::new(rng.random::<f64>() - 0.5, rng.random::<f64>() - 0.5))
                .collect();
            let mut input = StateVector::from_amplitudes(&amps)?;
            input.normalize();
            let fidelity = run(&input, a)?.fidelity(&run(&input, b)?)?;
            if fidelity < 1.0 - tol {
                return Ok(None);
            }
        }
        Ok(Some(EquivalenceEvidence::Probabilistic { probes }))
    }
}

/// Check whether two measured circuits produce the same classical outcome
/// **distribution** (noiselessly). Unlike [`unitarily_equivalent`] this
/// tolerates different qubit counts and layouts — exactly what routing
/// changes — as long as the classical registers match.
///
/// # Errors
///
/// Returns [`StateVecError::WidthMismatch`] if the classical registers
/// differ in width.
pub fn distributions_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> Result<bool, StateVecError> {
    if a.n_cbits() != b.n_cbits() {
        return Err(StateVecError::WidthMismatch { left: a.n_cbits(), right: b.n_cbits() });
    }
    let dist_a = classical_distribution(a)?;
    let dist_b = classical_distribution(b)?;
    Ok(dist_a.iter().zip(&dist_b).all(|(x, y)| (x - y).abs() <= tol))
}

/// The exact noiseless distribution over the classical register.
///
/// # Errors
///
/// Propagates simulation failures (cannot occur for validated circuits).
pub fn classical_distribution(circuit: &Circuit) -> Result<Vec<f64>, StateVecError> {
    let state = circuit.simulate()?;
    let mut dist = vec![0.0f64; 1 << circuit.n_cbits()];
    let map = circuit.measurements();
    for (idx, p) in state.probabilities().into_iter().enumerate() {
        let mut pattern = 0usize;
        for &(q, c) in &map {
            if idx >> q & 1 == 1 {
                pattern |= 1 << c;
            }
        }
        dist[pattern] += p;
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile::{transpile, TranspileOptions};
    use crate::{catalog, CouplingMap};

    #[test]
    fn identical_circuits_are_equivalent_exhaustively() {
        let qc = catalog::wstate_3q();
        let evidence = unitarily_equivalent(&qc, &qc, DEFAULT_TOL).unwrap();
        assert_eq!(evidence, Some(EquivalenceEvidence::Exhaustive));
    }

    #[test]
    fn decomposition_is_unitarily_equivalent() {
        let mut qc = Circuit::new("ccx", 3, 0);
        qc.ccx(0, 1, 2).swap(0, 2).cz(1, 2);
        let lowered = crate::transpile::decompose(&qc).unwrap();
        assert!(unitarily_equivalent(&qc, &lowered, DEFAULT_TOL).unwrap().is_some());
    }

    #[test]
    fn detects_non_equivalence() {
        let mut a = Circuit::new("a", 2, 0);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new("b", 2, 0);
        b.h(0).cx(1, 0);
        assert_eq!(unitarily_equivalent(&a, &b, DEFAULT_TOL).unwrap(), None);
        // Phase-only difference per input basis state IS equivalence.
        let mut c = Circuit::new("c", 2, 0);
        c.h(0).cx(0, 1).z(1).z(1);
        assert!(unitarily_equivalent(&a, &c, DEFAULT_TOL).unwrap().is_some());
    }

    #[test]
    fn wide_circuits_use_probabilistic_probing() {
        let mut a = Circuit::new("a", 8, 0);
        let mut b = Circuit::new("b", 8, 0);
        for q in 0..8 {
            a.h(q);
            b.h(q);
        }
        a.cx(0, 7);
        b.cx(0, 7);
        let evidence = unitarily_equivalent(&a, &b, DEFAULT_TOL).unwrap();
        assert_eq!(evidence, Some(EquivalenceEvidence::Probabilistic { probes: 16 }));
        // A single misplaced gate is caught.
        b.t(3);
        assert_eq!(unitarily_equivalent(&a, &b, DEFAULT_TOL).unwrap(), None);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let a = Circuit::new("a", 2, 0);
        let b = Circuit::new("b", 3, 0);
        assert!(unitarily_equivalent(&a, &b, DEFAULT_TOL).is_err());
    }

    #[test]
    fn routing_preserves_distributions_but_not_unitaries() {
        let logical = catalog::bv(4, 0b101);
        let compiled =
            transpile(&logical, &TranspileOptions::for_device(CouplingMap::yorktown())).unwrap();
        // Different widths: unitary comparison is not even well-formed…
        assert!(unitarily_equivalent(&logical, &compiled.circuit, DEFAULT_TOL).is_err());
        // …but the measured distribution is exactly preserved.
        assert!(distributions_equivalent(&logical, &compiled.circuit, 1e-9).unwrap());
    }

    #[test]
    fn distribution_checker_flags_real_differences() {
        let a = catalog::bv(4, 0b101);
        let b = catalog::bv(4, 0b011);
        assert!(!distributions_equivalent(&a, &b, 1e-9).unwrap());
        let narrow = catalog::bv(3, 0b1);
        assert!(distributions_equivalent(&a, &narrow, 1e-9).is_err());
    }
}
