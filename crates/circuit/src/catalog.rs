//! The benchmark catalog of the paper's evaluation (Table I) plus the
//! parameterized Quantum Volume generator used in the scalability study.
//!
//! Every builder returns the *logical* circuit; run it through
//! [`crate::transpile::transpile`] with the Yorktown coupling map to obtain
//! the post-compilation programs whose characteristics Table I reports.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Circuit;

/// Randomized-benchmarking style sequence on 2 qubits: 9 single-qubit gates
/// and 2 CNOTs composing to the identity, so the noiseless outcome is
/// deterministically `00` (the defining property of an RB sequence).
///
/// ```
/// let qc = qsim_circuit::catalog::rb();
/// let s = qc.simulate().unwrap();
/// assert!((s.probability(0) - 1.0).abs() < 1e-9);
/// ```
pub fn rb() -> Circuit {
    let mut qc = Circuit::new("rb", 2, 2);
    // rz on the CX control and rx on the CX target commute through CX, so
    // the rotation telescopes cancel and the outer pairs square to identity.
    qc.h(0)
        .x(1)
        .cx(0, 1)
        .rz(0.7, 0)
        .rx(0.3, 1)
        .rz(-0.7, 0)
        .rx(0.5, 1)
        .rx(-0.8, 1)
        .cx(0, 1)
        .h(0)
        .x(1)
        .measure_all();
    qc
}

/// Grover search on 3 qubits for the marked state `|111⟩`, `iterations`
/// rounds of oracle + diffusion. Two iterations give success probability
/// ≈ 0.945.
pub fn grover_3q(iterations: usize) -> Circuit {
    let mut qc = Circuit::new("grover", 3, 3);
    for q in 0..3 {
        qc.h(q);
    }
    for _ in 0..iterations {
        // Oracle: CCZ marking |111⟩ (H-conjugated Toffoli).
        qc.h(2).ccx(0, 1, 2).h(2);
        // Diffusion: reflect about the uniform superposition.
        for q in 0..3 {
            qc.h(q);
        }
        for q in 0..3 {
            qc.x(q);
        }
        qc.h(2).ccx(0, 1, 2).h(2);
        for q in 0..3 {
            qc.x(q);
        }
        for q in 0..3 {
            qc.h(q);
        }
    }
    qc.measure_all();
    qc
}

/// Grover search over `n_data` qubits for an arbitrary `marked` basis
/// state, with `iterations` rounds. Multi-controlled phase flips are built
/// from a Toffoli AND-ladder over `max(n_data − 2, 0)` ancilla qubits
/// (standard compute/uncompute construction), so the circuit uses
/// `n_data + max(n_data − 2, 0)` qubits total; only the data register is
/// measured.
///
/// The optimal iteration count is `⌊π/4·√2ⁿ⌋`; success probability follows
/// `sin²((2k+1)·asin(2^{−n/2}))`.
///
/// # Panics
///
/// Panics if `n_data < 2` or `marked` does not fit the register.
pub fn grover(n_data: usize, marked: usize, iterations: usize) -> Circuit {
    assert!(n_data >= 2, "grover needs at least two data qubits");
    assert!(marked < 1 << n_data, "marked state wider than the register");
    let n_anc = n_data.saturating_sub(2);
    let mut qc = Circuit::new(format!("grover{n_data}"), n_data + n_anc, n_data);

    // Phase-flip exactly the |1…1⟩ data state via an AND-ladder:
    // anc[0] = d0·d1, anc[i] = anc[i−1]·d_{i+1}, then CZ onto the last
    // data qubit, then uncompute. For n_data = 2 it is a bare CZ.
    fn flip_all_ones(qc: &mut Circuit, n_data: usize) {
        if n_data == 2 {
            qc.cz(0, 1);
            return;
        }
        let anc = |i: usize| n_data + i;
        qc.ccx(0, 1, anc(0));
        for i in 1..n_data - 2 {
            qc.ccx(anc(i - 1), i + 1, anc(i));
        }
        qc.cz(anc(n_data - 3), n_data - 1);
        for i in (1..n_data - 2).rev() {
            qc.ccx(anc(i - 1), i + 1, anc(i));
        }
        qc.ccx(0, 1, anc(0));
    }

    for q in 0..n_data {
        qc.h(q);
    }
    for _ in 0..iterations {
        // Oracle: phase-flip |marked⟩ = X-conjugated flip of |1…1⟩.
        for q in 0..n_data {
            if marked >> q & 1 == 0 {
                qc.x(q);
            }
        }
        flip_all_ones(&mut qc, n_data);
        for q in 0..n_data {
            if marked >> q & 1 == 0 {
                qc.x(q);
            }
        }
        // Diffusion: reflect about the uniform superposition.
        for q in 0..n_data {
            qc.h(q);
        }
        for q in 0..n_data {
            qc.x(q);
        }
        flip_all_ones(&mut qc, n_data);
        for q in 0..n_data {
            qc.x(q);
        }
        for q in 0..n_data {
            qc.h(q);
        }
    }
    for q in 0..n_data {
        qc.measure(q, q);
    }
    qc
}

/// Prepare the three-qubit W state `(|001⟩ + |010⟩ + |100⟩)/√3`.
pub fn wstate_3q() -> Circuit {
    let mut qc = Circuit::new("wstate", 3, 3);
    // Split one excitation: q0 carries |1⟩ with amplitude √(2/3).
    let phi = 2.0 * (1.0 / 3.0_f64.sqrt()).acos();
    qc.ry(phi, 0);
    // Controlled-H from q0 to q1 (ry(−π/4) · CX · ry(π/4) conjugation).
    qc.ry(-PI / 4.0, 1).cx(0, 1).ry(PI / 4.0, 1);
    qc.cx(1, 2).cx(0, 1).x(0);
    qc.measure_all();
    qc
}

/// The modular-multiplication benchmark `7·1 mod 15`: prepare `x = 1`, then
/// apply the ×7 (mod 15) permutation as ×8 (a rotate-right of the 4-bit
/// register) followed by ×(−1) (bitwise complement). The noiseless outcome
/// is deterministically `0111` (= 7).
pub fn seven_x1_mod15() -> Circuit {
    let mut qc = Circuit::new("7x1mod15", 4, 4);
    qc.x(0);
    // ×8 ≡ rotate right: new bit k = old bit k+1 (mod 4).
    qc.swap(0, 1).swap(1, 2).swap(2, 3);
    // ×(−1) mod 15 ≡ complement every bit.
    for q in 0..4 {
        qc.x(q);
    }
    qc.measure_all();
    qc
}

/// Bernstein–Vazirani over `n_qubits − 1` data qubits with the given hidden
/// string (bit `i` of `hidden` pairs data qubit `i`); the last qubit is the
/// phase-kickback ancilla. The noiseless outcome equals `hidden`.
///
/// # Panics
///
/// Panics if `n_qubits < 2` or `hidden` has bits beyond the data register.
pub fn bv(n_qubits: usize, hidden: usize) -> Circuit {
    assert!(n_qubits >= 2, "bv needs at least one data qubit plus the ancilla");
    let data = n_qubits - 1;
    assert!(hidden < 1 << data, "hidden string 0b{hidden:b} wider than {data} data qubits");
    let mut qc = Circuit::new(format!("bv{n_qubits}"), n_qubits, data);
    let anc = data;
    qc.x(anc);
    for q in 0..n_qubits {
        qc.h(q);
    }
    for q in 0..data {
        if hidden >> q & 1 == 1 {
            qc.cx(q, anc);
        }
    }
    for q in 0..data {
        qc.h(q);
    }
    for q in 0..data {
        qc.measure(q, q);
    }
    qc
}

/// The quantum Fourier transform on `n_qubits`, with the conventional final
/// qubit-reversal SWAPs so that
/// `QFT|x⟩ = (1/√N) Σ_y e^{2πi·x·y/N} |y⟩` in the standard little-endian
/// index convention.
pub fn qft(n_qubits: usize) -> Circuit {
    let mut qc = Circuit::new(format!("qft{n_qubits}"), n_qubits, n_qubits);
    for i in (0..n_qubits).rev() {
        qc.h(i);
        for j in (0..i).rev() {
            qc.cphase(PI / (1 << (i - j)) as f64, j, i);
        }
    }
    for i in 0..n_qubits / 2 {
        qc.swap(i, n_qubits - 1 - i);
    }
    qc.measure_all();
    qc
}

/// An IBM-style Quantum Volume model circuit: `depth` layers, each a random
/// qubit permutation followed by an SU(4)-shaped block (3 CNOTs + 7
/// single-qubit rotations) on every adjacent pair. Deterministic in `seed`.
pub fn quantum_volume(n_qubits: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = Circuit::new(format!("qv_n{n_qubits}d{depth}"), n_qubits, n_qubits);
    let angle = |rng: &mut StdRng| rng.random::<f64>() * 2.0 * PI;
    for _ in 0..depth {
        // Fisher–Yates permutation.
        let mut perm: Vec<usize> = (0..n_qubits).collect();
        for i in (1..n_qubits).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            qc.u(angle(&mut rng), angle(&mut rng), angle(&mut rng), a);
            qc.u(angle(&mut rng), angle(&mut rng), angle(&mut rng), b);
            qc.cx(a, b);
            qc.rz(angle(&mut rng), a);
            qc.ry(angle(&mut rng), b);
            qc.cx(b, a);
            qc.ry(angle(&mut rng), b);
            qc.cx(a, b);
            qc.u(angle(&mut rng), angle(&mut rng), angle(&mut rng), a);
            qc.u(angle(&mut rng), angle(&mut rng), angle(&mut rng), b);
        }
    }
    qc.measure_all();
    qc
}

/// A single-qubit randomized-benchmarking sequence: `length` gates drawn
/// from a fixed pool followed by the exact inverse of their product (one
/// `U` gate), so the noiseless outcome is deterministically `0` — the
/// defining RB property. Deterministic in `seed`.
pub fn rb_sequence(length: usize, seed: u64) -> Circuit {
    use qsim_statevec::Matrix2;
    let pool: [(crate::Gate, Matrix2); 6] = [
        (crate::Gate::H, Matrix2::h()),
        (crate::Gate::S, Matrix2::s()),
        (crate::Gate::Sdg, Matrix2::sdg()),
        (crate::Gate::X, Matrix2::x()),
        (crate::Gate::Y, Matrix2::y()),
        (crate::Gate::T, Matrix2::t()),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = Circuit::new(format!("rb_m{length}"), 1, 1);
    let mut product = Matrix2::identity();
    for _ in 0..length {
        let (gate, matrix) = pool[rng.random_range(0..pool.len())];
        qc.push_gate(gate, vec![0]).expect("valid operand");
        product = matrix * product;
    }
    let (theta, phi, lambda) = product.adjoint().zyz_angles();
    qc.u(theta, phi, lambda, 0);
    qc.measure(0, 0);
    qc
}

/// A GHZ-state preparation on `n_qubits`: `(|0…0⟩ + |1…1⟩)/√2`.
///
/// # Panics
///
/// Panics if `n_qubits == 0`.
pub fn ghz(n_qubits: usize) -> Circuit {
    assert!(n_qubits > 0, "ghz needs at least one qubit");
    let mut qc = Circuit::new(format!("ghz{n_qubits}"), n_qubits, n_qubits);
    qc.h(0);
    for q in 1..n_qubits {
        qc.cx(q - 1, q);
    }
    qc.measure_all();
    qc
}

/// Iterative quantum phase estimation of the phase gate `P(2π·k/2ⁿ)` with
/// `n_bits` counting qubits: the counting register reads exactly `k`
/// noiselessly (via the inverse QFT).
///
/// # Panics
///
/// Panics if `k >= 2^n_bits` or `n_bits == 0`.
pub fn qpe(n_bits: usize, k: usize) -> Circuit {
    assert!(n_bits > 0, "qpe needs at least one counting qubit");
    assert!(k < 1 << n_bits, "phase index {k} too wide for {n_bits} bits");
    let n = n_bits + 1; // + eigenstate qubit (last)
    let mut qc = Circuit::new(format!("qpe{n_bits}"), n, n_bits);
    let target = n_bits;
    // Eigenstate |1⟩ of the phase gate.
    qc.x(target);
    for q in 0..n_bits {
        qc.h(q);
    }
    // Controlled-U^(2^q): phases accumulate on the counting qubits.
    let theta = 2.0 * PI * k as f64 / (1 << n_bits) as f64;
    for q in 0..n_bits {
        qc.cphase(theta * (1 << q) as f64, q, target);
    }
    // Inverse QFT on the counting register (reverse of [`qft`] without the
    // final swaps, absorbed by reading counting bits in reverse order —
    // here we emit the full inverse including swaps for clarity).
    for i in 0..n_bits / 2 {
        qc.swap(i, n_bits - 1 - i);
    }
    for i in 0..n_bits {
        for j in (0..i).rev() {
            qc.cphase(-PI / (1 << (i - j)) as f64, j, i);
        }
        qc.h(i);
    }
    for q in 0..n_bits {
        qc.measure(q, q);
    }
    qc
}

/// A 2-bit ripple-carry adder: computes the 3-bit sum `a + b` of two 2-bit
/// inputs with the textbook CARRY/SUM network (two Toffoli-based full
/// adders). Qubit layout: 0–1 = `a`, 2–3 = `b` (overwritten with the sum
/// bits), 4 = carry into bit 1, 5 = carry out. The classical register reads
/// the sum directly: `c = s0 + 2·s1 + 4·carry`.
///
/// # Panics
///
/// Panics if an input exceeds 2 bits.
pub fn adder_2bit(a: usize, b: usize) -> Circuit {
    assert!(a < 4 && b < 4, "inputs must be 2-bit");
    let mut qc = Circuit::new(format!("add_{a}_{b}"), 6, 3);
    for bit in 0..2 {
        if a >> bit & 1 == 1 {
            qc.x(bit);
        }
        if b >> bit & 1 == 1 {
            qc.x(2 + bit);
        }
    }
    // Bit 0 (half adder): c1 = a0·b0, s0 = a0 ⊕ b0.
    qc.ccx(0, 2, 4);
    qc.cx(0, 2);
    // Bit 1 (full adder with carry-in on qubit 4):
    // CARRY: c2 = a1·b1 ⊕ c1·(a1 ⊕ b1) = majority(a1, b1, c1).
    qc.ccx(1, 3, 5);
    qc.cx(1, 3);
    qc.ccx(4, 3, 5);
    // SUM: s1 = a1 ⊕ b1 ⊕ c1.
    qc.cx(4, 3);
    qc.measure(2, 0).measure(3, 1).measure(5, 2);
    qc
}

/// The Boolean hidden-shift benchmark for the bent function
/// `f(x) = x₀x₁ ⊕ x₂x₃ …` (Maiorana–McFarland form): `H⊗ⁿ · O_f̃ · H⊗ⁿ ·
/// O_f · H⊗ⁿ |s⟩`-style circuit whose noiseless outcome is the hidden
/// shift `s`.
///
/// # Panics
///
/// Panics if `n_qubits` is odd or `shift` does not fit.
pub fn hidden_shift(n_qubits: usize, shift: usize) -> Circuit {
    assert!(n_qubits.is_multiple_of(2), "the bent-function benchmark needs an even qubit count");
    assert!(shift < 1 << n_qubits, "shift wider than the register");
    let mut qc = Circuit::new(format!("hs{n_qubits}"), n_qubits, n_qubits);
    for q in 0..n_qubits {
        qc.h(q);
    }
    // O_{f(x ⊕ s)}: conjugate the oracle with X on shifted bits.
    for q in 0..n_qubits {
        if shift >> q & 1 == 1 {
            qc.x(q);
        }
    }
    for pair in 0..n_qubits / 2 {
        qc.cz(2 * pair, 2 * pair + 1);
    }
    for q in 0..n_qubits {
        if shift >> q & 1 == 1 {
            qc.x(q);
        }
    }
    for q in 0..n_qubits {
        qc.h(q);
    }
    // O_f̃ for the dual bent function (same CZ pattern).
    for pair in 0..n_qubits / 2 {
        qc.cz(2 * pair, 2 * pair + 1);
    }
    for q in 0..n_qubits {
        qc.h(q);
    }
    qc.measure_all();
    qc
}

/// A hardware-efficient VQA-style ansatz: `n_blocks` fixed entangling
/// blocks (a full layer of `ry` rotations with deterministic golden-angle
/// parameters, then a brick pattern of CNOTs), followed by one final
/// layer of `ry` rotations driven by the single sweep parameter `theta`
/// (qubit `q` rotates by `theta · (q + 1) / n_qubits`). Sweeping `theta`
/// varies only the tail of the circuit — the deep entangling prefix is
/// gate-for-gate identical across every point of the sweep, which is the
/// structure that makes parameter sweeps cache well.
///
/// # Panics
///
/// Panics if `n_qubits < 2` (no entangling pair) or `n_blocks == 0`.
pub fn vqa_ansatz(n_qubits: usize, n_blocks: usize, theta: f64) -> Circuit {
    assert!(n_qubits >= 2, "the ansatz needs at least one entangling pair");
    assert!(n_blocks >= 1, "the ansatz needs at least one entangling block");
    let mut qc = Circuit::new(format!("vqa{n_qubits}x{n_blocks}"), n_qubits, n_qubits);
    // Golden-angle sequence: every fixed rotation is distinct and
    // irrational in turns, with no RNG dependence.
    let golden = PI * (3.0 - 5.0_f64.sqrt());
    for block in 0..n_blocks {
        for q in 0..n_qubits {
            qc.ry(golden * (block * n_qubits + q + 1) as f64 % (2.0 * PI), q);
        }
        for q in (0..n_qubits - 1).step_by(2) {
            qc.cx(q, q + 1);
        }
        for q in (1..n_qubits - 1).step_by(2) {
            qc.cx(q, q + 1);
        }
    }
    for q in 0..n_qubits {
        qc.ry(theta * (q + 1) as f64 / n_qubits as f64, q);
    }
    qc.measure_all();
    qc
}

/// The 12 benchmarks of the paper's Table I, in table order, as logical
/// circuits. QV circuits use fixed seeds so the suite is reproducible.
pub fn realistic_suite() -> Vec<Circuit> {
    vec![
        rb(),
        grover_3q(2),
        wstate_3q(),
        seven_x1_mod15(),
        bv(4, 0b111),
        bv(5, 0b1111),
        qft(4),
        qft(5),
        quantum_volume(5, 2, 52),
        quantum_volume(5, 3, 53),
        quantum_volume(5, 4, 54),
        quantum_volume(5, 5, 55),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::C64;

    fn deterministic_outcome(qc: &Circuit) -> usize {
        let s = qc.simulate().unwrap();
        let probs = s.probabilities();
        let (idx, p) =
            probs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        assert!((p - 1.0).abs() < 1e-9, "outcome not deterministic: max p = {p}");
        idx
    }

    #[test]
    fn rb_composes_to_identity() {
        assert_eq!(deterministic_outcome(&rb()), 0);
        let counts = rb().counts();
        assert_eq!((counts.single, counts.cnot, counts.measure), (9, 2, 2));
    }

    #[test]
    fn grover_amplifies_the_marked_state() {
        let s = grover_3q(2).simulate().unwrap();
        assert!(s.probability(0b111) > 0.9, "P(111) = {}", s.probability(0b111));
        // One iteration is the textbook 0.78125.
        let s1 = grover_3q(1).simulate().unwrap();
        assert!((s1.probability(0b111) - 25.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn generalized_grover_matches_theory() {
        for (n, marked) in [(2usize, 0b01usize), (3, 0b110), (4, 0b1011), (5, 0b10101)] {
            let optimal =
                (std::f64::consts::FRAC_PI_4 * ((1usize << n) as f64).sqrt()).floor() as usize;
            let iterations = optimal.max(1);
            let qc = grover(n, marked, iterations);
            let s = qc.simulate().unwrap();
            // Probability of the marked state on the data register,
            // ancillas returned to |0⟩ by the uncompute.
            let mut p_marked = 0.0;
            let mut p_anc_dirty = 0.0;
            for (idx, p) in s.probabilities().into_iter().enumerate() {
                if idx >> n != 0 {
                    p_anc_dirty += p;
                }
                if idx & ((1 << n) - 1) == marked && idx >> n == 0 {
                    p_marked += p;
                }
            }
            assert!(p_anc_dirty < 1e-9, "n={n}: ancillas left dirty ({p_anc_dirty})");
            let theta = (1.0 / ((1u64 << n) as f64).sqrt()).asin();
            let expected = ((2 * iterations + 1) as f64 * theta).sin().powi(2);
            assert!(
                (p_marked - expected).abs() < 1e-9,
                "n={n} k={iterations}: P = {p_marked}, theory {expected}"
            );
            assert!(p_marked > 0.5, "n={n}: success probability too low");
        }
    }

    #[test]
    fn generalized_grover_agrees_with_the_table_one_variant() {
        // Same physics as grover_3q (marked |111⟩): success probabilities
        // coincide even though the multi-controlled construction differs.
        let a = grover_3q(2).simulate().unwrap();
        let b = grover(3, 0b111, 2).simulate().unwrap();
        let p_a = a.probability(0b111);
        let mut p_b = 0.0;
        for (idx, p) in b.probabilities().into_iter().enumerate() {
            if idx & 0b111 == 0b111 && idx >> 3 == 0 {
                p_b += p;
            }
        }
        assert!((p_a - p_b).abs() < 1e-9, "{p_a} vs {p_b}");
    }

    #[test]
    fn wstate_has_equal_single_excitation_amplitudes() {
        let s = wstate_3q().simulate().unwrap();
        for idx in [0b001, 0b010, 0b100] {
            assert!(
                (s.probability(idx) - 1.0 / 3.0).abs() < 1e-9,
                "P({idx:03b}) = {}",
                s.probability(idx)
            );
        }
        for idx in [0b000, 0b011, 0b101, 0b110, 0b111] {
            assert!(s.probability(idx) < 1e-9);
        }
    }

    #[test]
    fn seven_x1_mod15_outputs_seven() {
        assert_eq!(deterministic_outcome(&seven_x1_mod15()), 7);
        let counts = seven_x1_mod15().counts();
        assert_eq!(counts.measure, 4);
    }

    #[test]
    fn modular_multiplication_permutes_other_inputs_too() {
        // Same circuit body applied after preparing x = 2 must give 14.
        let mut qc = Circuit::new("7x2", 4, 4);
        qc.x(1); // x = 2
        qc.swap(0, 1).swap(1, 2).swap(2, 3);
        for q in 0..4 {
            qc.x(q);
        }
        let s = qc.simulate().unwrap();
        assert!((s.probability(14) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bv_recovers_hidden_string() {
        for hidden in [0b000usize, 0b101, 0b111, 0b010] {
            let qc = bv(4, hidden);
            let s = qc.simulate().unwrap();
            // Data qubits read `hidden`; the ancilla ends in |−⟩.
            let mut p_hidden = 0.0;
            for (idx, p) in s.probabilities().into_iter().enumerate() {
                if idx & 0b111 == hidden {
                    p_hidden += p;
                }
            }
            assert!((p_hidden - 1.0).abs() < 1e-9, "hidden {hidden:b}: P = {p_hidden}");
        }
    }

    #[test]
    fn bv_counts_match_table_one() {
        let c4 = bv(4, 0b111).counts();
        assert_eq!((c4.single, c4.cnot, c4.measure), (8, 3, 3));
        let c5 = bv(5, 0b1111).counts();
        assert_eq!((c5.single, c5.cnot, c5.measure), (10, 4, 4));
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn bv_rejects_oversized_hidden_string() {
        let _ = bv(3, 0b111);
    }

    #[test]
    fn qft_matches_the_dft_formula() {
        let n = 3;
        let dim = 1usize << n;
        for x in [0usize, 1, 5, 7] {
            let mut qc = Circuit::new("qft-in", n, n);
            for q in 0..n {
                if x >> q & 1 == 1 {
                    qc.x(q);
                }
            }
            for instr in qft(n).instructions() {
                if let crate::Instruction::Gate(op) = instr {
                    qc.push_gate(op.gate, op.qubits.clone()).unwrap();
                }
            }
            let s = qc.simulate().unwrap();
            let norm = 1.0 / (dim as f64).sqrt();
            for y in 0..dim {
                let expected = C64::from_polar(norm, 2.0 * PI * (x * y) as f64 / dim as f64);
                let got = s.amplitude(y);
                assert!(
                    (got - expected).norm() < 1e-9,
                    "x={x} y={y}: got {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn qft_gate_shape() {
        let counts = qft(4).counts();
        assert_eq!(counts.single, 4); // the Hadamards
        assert_eq!(counts.other_multi, 6 + 2); // cphases + swaps
        assert_eq!(counts.measure, 4);
    }

    #[test]
    fn quantum_volume_is_deterministic_in_seed() {
        let a = quantum_volume(5, 3, 9);
        let b = quantum_volume(5, 3, 9);
        assert_eq!(a, b);
        let c = quantum_volume(5, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn quantum_volume_block_counts() {
        // 5 qubits → 2 pairs per layer; block = 7 singles + 3 CX.
        let qc = quantum_volume(5, 2, 1);
        let counts = qc.counts();
        assert_eq!(counts.cnot, 2 * 2 * 3);
        assert_eq!(counts.single, 2 * 2 * 7);
        assert_eq!(counts.measure, 5);
        // Odd qubit left out each layer: width still 5.
        assert_eq!(qc.n_qubits(), 5);
    }

    #[test]
    fn quantum_volume_preserves_norm() {
        let s = quantum_volume(4, 4, 3).simulate().unwrap();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rb_sequences_always_invert_to_zero() {
        for (length, seed) in [(1usize, 0u64), (5, 1), (20, 2), (100, 3)] {
            let qc = rb_sequence(length, seed);
            assert_eq!(qc.counts().single, length + 1);
            let s = qc.simulate().unwrap();
            assert!(
                (s.probability(0) - 1.0).abs() < 1e-9,
                "m={length} seed={seed}: P(0) = {}",
                s.probability(0)
            );
        }
        // Deterministic in seed.
        assert_eq!(rb_sequence(10, 7), rb_sequence(10, 7));
        assert_ne!(rb_sequence(10, 7), rb_sequence(10, 8));
    }

    #[test]
    fn ghz_is_a_fifty_fifty_cat_state() {
        for n in [1usize, 2, 4, 6] {
            let s = ghz(n).simulate().unwrap();
            assert!((s.probability(0) - 0.5).abs() < 1e-9, "n={n}");
            assert!((s.probability((1 << n) - 1) - 0.5).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn qpe_reads_the_exact_phase_index() {
        for (n_bits, k) in [(2usize, 1usize), (3, 5), (3, 0), (4, 11), (4, 15)] {
            let qc = qpe(n_bits, k);
            let s = qc.simulate().unwrap();
            // Counting register is qubits 0..n_bits; eigenstate qubit stays 1.
            let mut p_k = 0.0;
            for (idx, p) in s.probabilities().into_iter().enumerate() {
                if idx & ((1 << n_bits) - 1) == k {
                    p_k += p;
                }
            }
            assert!(p_k > 1.0 - 1e-9, "n={n_bits} k={k}: P = {p_k}");
        }
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn qpe_rejects_wide_phase() {
        let _ = qpe(2, 4);
    }

    #[test]
    fn adder_sums_every_input_pair() {
        for a in 0..4usize {
            for b in 0..4usize {
                let qc = adder_2bit(a, b);
                let s = qc.simulate().unwrap();
                // Read the classical mapping: cbit0=q2, cbit1=q3, cbit2=q5.
                let (mut best_idx, mut best_p) = (0usize, 0.0);
                for (idx, p) in s.probabilities().into_iter().enumerate() {
                    if p > best_p {
                        best_p = p;
                        best_idx = idx;
                    }
                }
                assert!(best_p > 1.0 - 1e-9, "a={a} b={b} not deterministic");
                let sum = (best_idx >> 2 & 1) + 2 * (best_idx >> 3 & 1) + 4 * (best_idx >> 5 & 1);
                assert_eq!(sum, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn hidden_shift_recovers_the_shift() {
        for (n, shift) in [(2usize, 0b01usize), (4, 0b1011), (4, 0b0000), (6, 0b110101)] {
            let qc = hidden_shift(n, shift);
            let s = qc.simulate().unwrap();
            assert!(
                (s.probability(shift) - 1.0).abs() < 1e-9,
                "n={n} shift={shift:b}: P = {}",
                s.probability(shift)
            );
        }
    }

    #[test]
    #[should_panic(expected = "even qubit count")]
    fn hidden_shift_rejects_odd_width() {
        let _ = hidden_shift(3, 0);
    }

    #[test]
    fn realistic_suite_matches_paper_roster() {
        let suite = realistic_suite();
        let names: Vec<&str> = suite.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "rb", "grover", "wstate", "7x1mod15", "bv4", "bv5", "qft4", "qft5", "qv_n5d2",
                "qv_n5d3", "qv_n5d4", "qv_n5d5"
            ]
        );
        for qc in &suite {
            assert!(qc.n_qubits() <= 5, "{} too wide for Yorktown", qc.name());
            assert!(qc.counts().measure > 0, "{} must measure", qc.name());
        }
    }
}
