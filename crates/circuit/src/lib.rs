#![warn(missing_docs)]
//! Quantum circuit intermediate representation, layering, coupling maps,
//! transpilation, and the benchmark catalog of the DAC 2020 paper.
//!
//! The pipeline implemented here plays the role of the Enfield compiler in
//! the paper's evaluation (§V.A): logical benchmark circuits from
//! [`catalog`] are lowered by [`transpile`] to the device basis
//! (arbitrary one-qubit unitaries plus CNOTs restricted to a
//! [`CouplingMap`]), then partitioned into [`LayeredCircuit`] layers —
//! the error-injection granularity of the noisy simulation (§IV.B: "The
//! simulated quantum circuit is divided into layers, in which any two
//! quantum operations are not applied to the same qubit").
//!
//! # Example
//!
//! ```
//! use qsim_circuit::Circuit;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut bell = Circuit::new("bell", 2, 2);
//! bell.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
//! let layered = bell.layered()?;
//! assert_eq!(layered.n_layers(), 2);
//! assert_eq!(layered.total_gates(), 2);
//! # Ok(())
//! # }
//! ```

pub mod catalog;
mod circuit;
mod coupling;
pub mod equiv;
mod error;
pub mod fuse;
mod gate;
mod layer;
mod qasm_out;
pub mod transpile;

pub use circuit::{Circuit, GateCounts, Instruction};
pub use coupling::CouplingMap;
pub use error::CircuitError;
pub use fuse::{FusedProgram, Segment};
pub use gate::{Gate, GateOp};
pub use layer::{LayeredCircuit, LayeringStrategy};
pub use qasm_out::to_qasm;
