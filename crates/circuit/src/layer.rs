use std::fmt;

use qsim_statevec::{StateVecError, StateVector};

use crate::{Circuit, CircuitError, GateOp, Instruction};

/// A circuit partitioned into layers of qubit-disjoint gates, with terminal
/// measurements separated out.
///
/// This is the representation the noisy simulation consumes: the paper
/// injects error operators only at the end of each layer (§IV.B), so an
/// error position is `(layer, site)` and the cumulative gate counts exposed
/// here are the units of the "basic operation" cost metric.
///
/// ```
/// use qsim_circuit::Circuit;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut qc = Circuit::new("t", 3, 3);
/// qc.h(0).h(1).cx(0, 1).h(2).measure_all();
/// let layered = qc.layered()?;
/// assert_eq!(layered.n_layers(), 2);       // [h0, h1, h2] then [cx01]
/// assert_eq!(layered.gates_in_layer(0), 3);
/// assert_eq!(layered.gates_through(1), 4);
/// # Ok(())
/// # }
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct LayeredCircuit {
    name: String,
    n_qubits: usize,
    n_cbits: usize,
    layers: Vec<Vec<GateOp>>,
    measures: Vec<(usize, usize)>,
    /// `cumulative[l]` = number of gates in layers `0..=l`.
    cumulative: Vec<usize>,
}

/// When each gate is scheduled within the layer structure.
///
/// The choice never changes gate counts or simulation results, but it
/// changes **which qubits idle in which layers** — and therefore where
/// idle-error positions fall when the noise model has an idle channel.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum LayeringStrategy {
    /// As soon as possible: every gate in the earliest layer its operands
    /// allow (the paper's implicit choice; the default).
    #[default]
    Asap,
    /// As late as possible: every gate in the latest layer that keeps the
    /// overall depth minimal — qubits idle early instead of late.
    Alap,
}

impl LayeredCircuit {
    /// Partition `circuit` into ASAP layers. Barriers force synchronisation
    /// points across their qubit set (all qubits when empty).
    ///
    /// # Errors
    ///
    /// Currently infallible for circuits built through [`Circuit`]'s
    /// validated API; the `Result` guards future front ends (e.g. QASM) that
    /// may construct unvalidated programs.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, CircuitError> {
        LayeredCircuit::from_circuit_with(circuit, LayeringStrategy::Asap)
    }

    /// Partition with an explicit [`LayeringStrategy`].
    ///
    /// # Errors
    ///
    /// As [`LayeredCircuit::from_circuit`].
    pub fn from_circuit_with(
        circuit: &Circuit,
        strategy: LayeringStrategy,
    ) -> Result<Self, CircuitError> {
        match strategy {
            LayeringStrategy::Asap => LayeredCircuit::asap(circuit),
            LayeringStrategy::Alap => LayeredCircuit::alap(circuit),
        }
    }

    /// ALAP: schedule in reverse (every gate as late as its successors
    /// allow), then mirror the layer indices. Depth equals the ASAP depth.
    fn alap(circuit: &Circuit) -> Result<Self, CircuitError> {
        let n_qubits = circuit.n_qubits();
        // Reverse pass: "front" counts layers from the circuit's end.
        let mut front = vec![0usize; n_qubits];
        let mut placements: Vec<(usize, GateOp)> = Vec::new();
        let mut measures = Vec::new();
        let mut depth = 0usize;
        for instr in circuit.instructions().iter().rev() {
            match instr {
                Instruction::Gate(op) => {
                    let layer = op.qubits.iter().map(|&q| front[q]).max().unwrap_or(0);
                    depth = depth.max(layer + 1);
                    placements.push((layer, op.clone()));
                    for &q in &op.qubits {
                        front[q] = layer + 1;
                    }
                }
                Instruction::Measure { qubit, cbit } => measures.push((*qubit, *cbit)),
                Instruction::Barrier(qs) => {
                    let involved: Vec<usize> =
                        if qs.is_empty() { (0..n_qubits).collect() } else { qs.clone() };
                    let sync = involved.iter().map(|&q| front[q]).max().unwrap_or(0);
                    for &q in &involved {
                        front[q] = sync;
                    }
                }
            }
        }
        // Mirror: reverse-layer L becomes forward-layer depth−1−L; restore
        // program order within each layer (placements were collected in
        // reverse).
        let mut layers: Vec<Vec<GateOp>> = vec![Vec::new(); depth];
        for (rev_layer, op) in placements.into_iter().rev() {
            layers[depth - 1 - rev_layer].push(op);
        }
        measures.reverse();
        let mut cumulative = Vec::with_capacity(layers.len());
        let mut running = 0usize;
        for layer in &layers {
            running += layer.len();
            cumulative.push(running);
        }
        Ok(LayeredCircuit {
            name: circuit.name().to_owned(),
            n_qubits,
            n_cbits: circuit.n_cbits(),
            layers,
            measures,
            cumulative,
        })
    }

    fn asap(circuit: &Circuit) -> Result<Self, CircuitError> {
        let n_qubits = circuit.n_qubits();
        let mut front = vec![0usize; n_qubits];
        let mut layers: Vec<Vec<GateOp>> = Vec::new();
        let mut measures = Vec::new();
        for instr in circuit.instructions() {
            match instr {
                Instruction::Gate(op) => {
                    let layer = op.qubits.iter().map(|&q| front[q]).max().unwrap_or(0);
                    if layer == layers.len() {
                        layers.push(Vec::new());
                    }
                    layers[layer].push(op.clone());
                    for &q in &op.qubits {
                        front[q] = layer + 1;
                    }
                }
                Instruction::Measure { qubit, cbit } => {
                    measures.push((*qubit, *cbit));
                }
                Instruction::Barrier(qs) => {
                    let involved: Vec<usize> =
                        if qs.is_empty() { (0..n_qubits).collect() } else { qs.clone() };
                    let sync = involved.iter().map(|&q| front[q]).max().unwrap_or(0);
                    for &q in &involved {
                        front[q] = sync;
                    }
                }
            }
        }
        let mut cumulative = Vec::with_capacity(layers.len());
        let mut running = 0usize;
        for layer in &layers {
            running += layer.len();
            cumulative.push(running);
        }
        Ok(LayeredCircuit {
            name: circuit.name().to_owned(),
            n_qubits,
            n_cbits: circuit.n_cbits(),
            layers,
            measures,
            cumulative,
        })
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of classical bits.
    pub fn n_cbits(&self) -> usize {
        self.n_cbits
    }

    /// Number of layers (the circuit depth over gates).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The gates of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer(&self, l: usize) -> &[GateOp] {
        &self.layers[l]
    }

    /// Iterate over layers in order.
    pub fn layers(&self) -> impl Iterator<Item = &[GateOp]> {
        self.layers.iter().map(Vec::as_slice)
    }

    /// Gates in layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn gates_in_layer(&self, l: usize) -> usize {
        self.layers[l].len()
    }

    /// Cumulative gate count through layer `l` **inclusive**.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn gates_through(&self, l: usize) -> usize {
        self.cumulative[l]
    }

    /// Total gates across all layers.
    pub fn total_gates(&self) -> usize {
        self.cumulative.last().copied().unwrap_or(0)
    }

    /// Terminal measurements as `(qubit, cbit)` pairs in program order.
    pub fn measurements(&self) -> &[(usize, usize)] {
        &self.measures
    }

    /// Apply every gate of layer `l` to `state`, returning how many basic
    /// operations were performed.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] on register mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn apply_layer(&self, l: usize, state: &mut StateVector) -> Result<usize, StateVecError> {
        for op in &self.layers[l] {
            op.apply_to(state)?;
        }
        Ok(self.layers[l].len())
    }

    /// Apply layers `from..=to` (inclusive bounds, `from <= to`).
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`].
    ///
    /// # Panics
    ///
    /// Panics if the bounds are out of range.
    pub fn apply_layer_range(
        &self,
        from: usize,
        to: usize,
        state: &mut StateVector,
    ) -> Result<usize, StateVecError> {
        let mut ops = 0;
        for l in from..=to {
            ops += self.apply_layer(l, state)?;
        }
        Ok(ops)
    }

    /// Run all layers on `|0…0⟩` (noiseless reference).
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`].
    pub fn simulate(&self) -> Result<StateVector, StateVecError> {
        let mut state = StateVector::zero_state(self.n_qubits);
        for l in 0..self.n_layers() {
            self.apply_layer(l, &mut state)?;
        }
        Ok(state)
    }
}

impl fmt::Display for LayeredCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} layers, {} gates, {} measurements",
            self.name,
            self.n_qubits,
            self.n_layers(),
            self.total_gates(),
            self.measures.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn layers_are_qubit_disjoint() {
        let mut qc = Circuit::new("t", 4, 4);
        qc.h(0).h(1).cx(0, 1).h(2).cx(2, 3).x(0).measure_all();
        let layered = qc.layered().unwrap();
        for layer in layered.layers() {
            let mut seen = std::collections::HashSet::new();
            for op in layer {
                for &q in &op.qubits {
                    assert!(seen.insert(q), "layer repeats qubit {q}");
                }
            }
        }
        assert_eq!(layered.total_gates(), 6);
    }

    #[test]
    fn asap_packs_independent_gates_together() {
        let mut qc = Circuit::new("t", 3, 3);
        qc.h(0).h(1).h(2);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.n_layers(), 1);
        assert_eq!(layered.gates_in_layer(0), 3);
    }

    #[test]
    fn dependent_gates_stack_depth() {
        let mut qc = Circuit::new("t", 1, 1);
        qc.h(0).t(0).h(0);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.n_layers(), 3);
    }

    #[test]
    fn cumulative_counts_accumulate() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).h(1).cx(0, 1).x(0);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.gates_through(0), 2);
        assert_eq!(layered.gates_through(1), 3);
        assert_eq!(layered.gates_through(2), 4);
        assert_eq!(layered.total_gates(), 4);
    }

    #[test]
    fn barrier_forces_new_layer() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).barrier().h(1);
        let layered = qc.layered().unwrap();
        // Without the barrier h(1) would join layer 0.
        assert_eq!(layered.n_layers(), 2);
        assert_eq!(layered.gates_in_layer(0), 1);
    }

    #[test]
    fn measurements_preserved_in_order() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).measure(1, 0).measure(0, 1);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.measurements(), &[(1, 0), (0, 1)]);
    }

    #[test]
    fn layered_simulation_matches_sequential() {
        let mut qc = Circuit::new("t", 3, 3);
        qc.h(0).cx(0, 1).t(2).cx(1, 2).h(0).cz(0, 2);
        let direct = qc.simulate().unwrap();
        let layered = qc.layered().unwrap().simulate().unwrap();
        assert!(direct.fidelity(&layered).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn apply_layer_range_counts_ops() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).h(1).cx(0, 1).x(1);
        let layered = qc.layered().unwrap();
        let mut s = qsim_statevec::StateVector::zero_state(2);
        let ops = layered.apply_layer_range(0, layered.n_layers() - 1, &mut s).unwrap();
        assert_eq!(ops, 4);
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let qc = Circuit::new("empty", 2, 0);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.n_layers(), 0);
        assert_eq!(layered.total_gates(), 0);
        assert_eq!(layered.simulate().unwrap().probability(0), 1.0);
    }

    #[test]
    fn alap_matches_asap_depth_and_counts() {
        let mut qc = Circuit::new("t", 4, 4);
        qc.h(0).h(1).cx(0, 1).h(2).cx(2, 3).x(0).t(3).cx(1, 2).measure_all();
        let asap = qc.layered().unwrap();
        let alap = qc.layered_with(LayeringStrategy::Alap).unwrap();
        assert_eq!(asap.n_layers(), alap.n_layers());
        assert_eq!(asap.total_gates(), alap.total_gates());
        assert_eq!(asap.measurements(), alap.measurements());
        // Layers stay qubit-disjoint.
        for layer in alap.layers() {
            let mut seen = std::collections::HashSet::new();
            for op in layer {
                for &q in &op.qubits {
                    assert!(seen.insert(q));
                }
            }
        }
        // Simulation results identical.
        let a = asap.simulate().unwrap();
        let b = alap.simulate().unwrap();
        assert!(a.fidelity(&b).unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn alap_pushes_independent_gates_late() {
        // h(2) has no successors: ASAP puts it in layer 0, ALAP in the last.
        let mut qc = Circuit::new("t", 3, 0);
        qc.h(0).t(0).s(0).h(2);
        let asap = qc.layered().unwrap();
        let alap = qc.layered_with(LayeringStrategy::Alap).unwrap();
        assert!(asap.layer(0).iter().any(|op| op.qubits == vec![2]));
        let last = alap.n_layers() - 1;
        assert!(alap.layer(last).iter().any(|op| op.qubits == vec![2]));
        // (Idle-error position assertions live in qsim-noise's tests, which
        // can see both this crate and the noise model.)
    }

    #[test]
    fn two_qubit_gate_waits_for_both_operands() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).h(0).cx(0, 1);
        let layered = qc.layered().unwrap();
        assert_eq!(layered.n_layers(), 3);
        assert_eq!(layered.layer(2)[0].gate, Gate::Cx);
    }
}
