//! Cancellation of adjacent self-inverse CNOT pairs.
//!
//! SWAP-based routing frequently leaves `CX(c,t); CX(c,t)` pairs (the last
//! CNOT of a SWAP against the routed gate itself, or two SWAPs back to
//! back). Since `CX² = I`, such a pair is removable whenever nothing
//! touching either operand sits between the two — which also unlocks more
//! single-qubit fusion downstream.

use crate::{Circuit, CircuitError, Gate, Instruction};

/// Remove adjacent identical-CNOT pairs until a fixed point. Cascades are
/// handled in one pass: cancelling a pair exposes the instruction before it
/// for the next incoming CNOT.
///
/// # Errors
///
/// Infallible for valid circuits; the `Result` mirrors the other passes.
pub fn cancel_adjacent_cx(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let n = circuit.n_qubits();
    // `slots[i] = None` marks a cancelled instruction. `touches[q]` is a
    // stack of slot indices of live instructions touching qubit q, in
    // order, so the top is the most recent.
    let mut slots: Vec<Option<Instruction>> = Vec::with_capacity(circuit.instructions().len());
    let mut touches: Vec<Vec<usize>> = vec![Vec::new(); n];

    let touched_qubits = |instr: &Instruction| -> Vec<usize> {
        match instr {
            Instruction::Gate(op) => op.qubits.clone(),
            Instruction::Measure { qubit, .. } => vec![*qubit],
            Instruction::Barrier(qs) => {
                if qs.is_empty() {
                    (0..n).collect()
                } else {
                    qs.clone()
                }
            }
        }
    };

    for instr in circuit.instructions() {
        if let Instruction::Gate(op) = instr {
            if op.gate == Gate::Cx {
                let (c, t) = (op.qubits[0], op.qubits[1]);
                let prev_c = touches[c].last().copied();
                let prev_t = touches[t].last().copied();
                if let (Some(i), Some(j)) = (prev_c, prev_t) {
                    if i == j {
                        let identical = matches!(
                            &slots[i],
                            Some(Instruction::Gate(prev)) if prev.gate == Gate::Cx && prev.qubits == op.qubits
                        );
                        if identical {
                            slots[i] = None;
                            touches[c].pop();
                            touches[t].pop();
                            continue; // both CNOTs gone
                        }
                    }
                }
            }
        }
        let index = slots.len();
        for q in touched_qubits(instr) {
            touches[q].push(index);
        }
        slots.push(Some(instr.clone()));
    }

    let mut out = Circuit::new(circuit.name(), n, circuit.n_cbits());
    for instr in slots.into_iter().flatten() {
        out.push(instr)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::StateVector;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        for basis in 0..1usize << a.n_qubits() {
            let mut sa = StateVector::basis_state(a.n_qubits(), basis).unwrap();
            let mut sb = sa.clone();
            for op in a.gate_ops() {
                op.apply_to(&mut sa).unwrap();
            }
            for op in b.gate_ops() {
                op.apply_to(&mut sb).unwrap();
            }
            assert!(sa.fidelity(&sb).unwrap() > 1.0 - 1e-9, "basis {basis}");
        }
    }

    #[test]
    fn adjacent_pair_cancels() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.h(0).cx(0, 1).cx(0, 1).h(1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 0);
        assert_eq!(out.counts().single, 2);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn cascades_collapse_nested_pairs() {
        // A B B A → nothing.
        let mut qc = Circuit::new("t", 3, 0);
        qc.cx(0, 1).cx(1, 2).cx(1, 2).cx(0, 1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 0);
    }

    #[test]
    fn reversed_operands_do_not_cancel() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.cx(0, 1).cx(1, 0);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 2);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn intervening_single_qubit_gate_blocks_cancellation() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.cx(0, 1).t(1).cx(0, 1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 2);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn gate_on_unrelated_qubit_does_not_block() {
        let mut qc = Circuit::new("t", 3, 0);
        qc.cx(0, 1).h(2).cx(0, 1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 0);
        assert_eq!(out.counts().single, 1);
        assert_equivalent(&qc, &out);
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.cx(0, 1).barrier().cx(0, 1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 2);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.cx(0, 1).measure(1, 0);
        // A trailing CX would violate measurement terminality, so test the
        // blocking through the touch stacks only: the measure touches q1.
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 1);
        assert_eq!(out.counts().measure, 1);
    }

    #[test]
    fn routed_swap_pairs_shrink() {
        // SWAP(0,1) decomposed + CX(0,1): the trailing CX of the SWAP
        // cancels against the gate.
        let mut qc = Circuit::new("t", 2, 0);
        qc.cx(0, 1).cx(1, 0).cx(0, 1).cx(0, 1);
        let out = cancel_adjacent_cx(&qc).unwrap();
        assert_eq!(out.counts().cnot, 2);
        assert_equivalent(&qc, &out);
    }
}
