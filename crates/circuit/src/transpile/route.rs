//! Greedy shortest-path SWAP routing onto a device coupling map.

use crate::{Circuit, CircuitError, CouplingMap, Gate, Instruction};

/// Output of [`route`].
#[derive(Clone, Debug, PartialEq)]
pub struct Routed {
    /// The physical circuit (width = device size, CNOTs on coupled pairs).
    pub circuit: Circuit,
    /// `final_layout[logical]` = physical position after the last SWAP.
    pub final_layout: Vec<usize>,
}

/// Map a decomposed circuit (single-qubit gates + CNOTs only) onto `map`.
///
/// The initial layout is chosen by [`choose_initial_layout`]. Whenever a
/// CNOT addresses non-adjacent physical qubits, the control is walked along
/// a BFS shortest path with SWAPs (each emitted as three CNOTs, the only
/// native two-qubit gate) until it neighbours the target. Measurements are
/// remapped through the final layout, so the observable distribution is
/// preserved exactly.
///
/// # Errors
///
/// * [`CircuitError::DeviceTooSmall`] — more logical qubits than physical.
/// * [`CircuitError::Disconnected`] — operands in different components.
/// * [`CircuitError::Unsupported`] — a non-native gate reached the router
///   (run [`super::decompose`] first).
pub fn route(circuit: &Circuit, map: &CouplingMap) -> Result<Routed, CircuitError> {
    let layout = choose_initial_layout(circuit, map)?;
    route_with_layout(circuit, map, &layout)
}

/// Pick an initial placement by interaction weight: logical qubits that
/// exchange the most CNOTs are placed on adjacent, high-degree physical
/// qubits (a light-weight stand-in for Enfield's allocators, which is what
/// keeps e.g. Bernstein–Vazirani swap-free on Yorktown: the ancilla that
/// talks to every data qubit lands on the bowtie center).
///
/// # Errors
///
/// Returns [`CircuitError::DeviceTooSmall`] if the circuit does not fit.
pub fn choose_initial_layout(
    circuit: &Circuit,
    map: &CouplingMap,
) -> Result<Vec<usize>, CircuitError> {
    let n_logical = circuit.n_qubits();
    let n_physical = map.n_qubits();
    if n_logical > n_physical {
        return Err(CircuitError::DeviceTooSmall { required: n_logical, available: n_physical });
    }
    // Interaction weights between logical qubits.
    let mut weight = vec![vec![0usize; n_logical]; n_logical];
    for op in circuit.gate_ops() {
        if op.qubits.len() == 2 {
            let (a, b) = (op.qubits[0], op.qubits[1]);
            weight[a][b] += 1;
            weight[b][a] += 1;
        }
    }
    // Logical qubits by total interaction, heaviest first.
    let mut order: Vec<usize> = (0..n_logical).collect();
    let total = |l: usize| -> usize { weight[l].iter().sum() };
    order.sort_by_key(|&l| std::cmp::Reverse(total(l)));

    let mut layout = vec![usize::MAX; n_logical];
    let mut free: Vec<usize> = (0..n_physical).collect();
    for &l in &order {
        // Score each free physical slot by adjacency to already-placed
        // partners; break ties toward high physical degree for headroom.
        let (best_pos, &best_p) = free
            .iter()
            .enumerate()
            .max_by_key(|&(_, &p)| {
                let adjacency: usize = (0..n_logical)
                    .filter(|&m| layout[m] != usize::MAX && map.are_adjacent(p, layout[m]))
                    .map(|m| weight[l][m])
                    .sum();
                (adjacency, map.neighbors(p).len(), std::cmp::Reverse(p))
            })
            .expect("free slots remain while logical qubits do");
        layout[l] = best_p;
        free.remove(best_pos);
    }
    Ok(layout)
}

/// [`route`] with an explicit initial layout (`layout[logical]` = physical).
///
/// # Errors
///
/// As [`route`]; additionally the layout must be injective into the device.
///
/// # Panics
///
/// Panics if `layout` repeats a physical qubit or has the wrong length.
pub fn route_with_layout(
    circuit: &Circuit,
    map: &CouplingMap,
    layout: &[usize],
) -> Result<Routed, CircuitError> {
    let n_logical = circuit.n_qubits();
    let n_physical = map.n_qubits();
    if n_logical > n_physical {
        return Err(CircuitError::DeviceTooSmall { required: n_logical, available: n_physical });
    }
    assert_eq!(layout.len(), n_logical, "layout width mismatch");
    // phys[l] = physical home of logical l; occupant[p] = logical on p (or MAX).
    let mut phys: Vec<usize> = layout.to_vec();
    let mut occupant: Vec<usize> = vec![usize::MAX; n_physical];
    for (l, &p) in phys.iter().enumerate() {
        assert!(p < n_physical, "layout places logical {l} off-device at {p}");
        assert_eq!(occupant[p], usize::MAX, "layout repeats physical qubit {p}");
        occupant[p] = l;
    }
    let mut out = Circuit::new(circuit.name(), n_physical, circuit.n_cbits());

    let emit_swap = |out: &mut Circuit,
                     phys: &mut Vec<usize>,
                     occupant: &mut Vec<usize>,
                     a: usize,
                     b: usize| {
        out.cx(a, b).cx(b, a).cx(a, b);
        let la = occupant[a];
        let lb = occupant[b];
        if la != usize::MAX {
            phys[la] = b;
        }
        if lb != usize::MAX {
            phys[lb] = a;
        }
        occupant.swap(a, b);
    };

    for instr in circuit.instructions() {
        match instr {
            Instruction::Gate(op) => match op.gate.arity() {
                1 => out.push_gate(op.gate, vec![phys[op.qubits[0]]])?,
                2 if op.gate == Gate::Cx => {
                    let (c, t) = (op.qubits[0], op.qubits[1]);
                    let (mut pc, pt) = (phys[c], phys[t]);
                    if !map.are_adjacent(pc, pt) {
                        let path = map
                            .shortest_path(pc, pt)
                            .ok_or(CircuitError::Disconnected { a: pc, b: pt })?;
                        // Walk the control up to the hop adjacent to the target.
                        for &hop in &path[1..path.len() - 1] {
                            emit_swap(&mut out, &mut phys, &mut occupant, pc, hop);
                            pc = hop;
                        }
                    }
                    out.cx(pc, pt);
                }
                _ => {
                    return Err(CircuitError::Unsupported {
                        gate: op.gate.to_string(),
                        pass: "route",
                    });
                }
            },
            Instruction::Measure { qubit, cbit } => {
                out.push(Instruction::Measure { qubit: phys[*qubit], cbit: *cbit })?;
            }
            Instruction::Barrier(qs) => {
                let mapped: Vec<usize> = qs.iter().map(|&q| phys[q]).collect();
                out.push(Instruction::Barrier(mapped))?;
            }
        }
    }
    Ok(Routed { circuit: out, final_layout: phys })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile::test_util::{assert_same_distribution, cbit_distribution};

    fn identity_layout(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn adjacent_cx_passes_through() {
        let mut qc = Circuit::new("adj", 2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let routed = route_with_layout(&qc, &CouplingMap::yorktown(), &identity_layout(2)).unwrap();
        assert_eq!(routed.circuit.counts().cnot, 1);
        assert_eq!(routed.final_layout, vec![0, 1]);
    }

    #[test]
    fn distant_cx_inserts_one_swap() {
        // Yorktown: 0 and 3 are distance 2 via 2 (forced via identity layout).
        let mut qc = Circuit::new("far", 4, 4);
        qc.x(0).cx(0, 3).measure_all();
        let routed = route_with_layout(&qc, &CouplingMap::yorktown(), &identity_layout(4)).unwrap();
        // 3 CX (swap) + 1 CX (the gate).
        assert_eq!(routed.circuit.counts().cnot, 4);
        // Logical 0 migrated to physical 2.
        assert_eq!(routed.final_layout[0], 2);
        // Distribution preserved: X then CX means cbits 0 and 3 read 1.
        let dist = cbit_distribution(&routed.circuit);
        assert!((dist[0b1001] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_layout_avoids_the_swap_entirely() {
        // The same distant CX with the default smart layout needs no SWAP.
        let mut qc = Circuit::new("far", 4, 4);
        qc.x(0).cx(0, 3).measure_all();
        let routed = route(&qc, &CouplingMap::yorktown()).unwrap();
        assert_eq!(routed.circuit.counts().cnot, 1);
        let dist = cbit_distribution(&routed.circuit);
        assert!((dist[0b1001] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_layout_centers_the_bv_ancilla() {
        // BV's ancilla (logical 3) talks to every data qubit; on the bowtie
        // it must land on physical 2, making the circuit swap-free.
        let qc = {
            let mut qc = Circuit::new("bv-core", 4, 3);
            qc.cx(0, 3).cx(1, 3).cx(2, 3).measure(0, 0).measure(1, 1).measure(2, 2);
            qc
        };
        let map = CouplingMap::yorktown();
        let layout = choose_initial_layout(&qc, &map).unwrap();
        assert_eq!(layout[3], 2, "ancilla should sit on the bowtie center, layout {layout:?}");
        let routed = route(&qc, &map).unwrap();
        assert_eq!(routed.circuit.counts().cnot, 3, "no SWAPs expected");
    }

    #[test]
    fn greedy_layout_is_injective() {
        for n in 2..=5usize {
            let mut qc = Circuit::new("dense", n, 0);
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        qc.cx(a, b);
                    }
                }
            }
            let layout = choose_initial_layout(&qc, &CouplingMap::yorktown()).unwrap();
            let unique: std::collections::HashSet<_> = layout.iter().collect();
            assert_eq!(unique.len(), n);
            assert!(layout.iter().all(|&p| p < 5));
        }
    }

    #[test]
    fn distribution_preserved_under_heavy_routing() {
        let mut qc = Circuit::new("heavy", 5, 5);
        qc.h(0)
            .cx(0, 4)
            .t(4)
            .cx(1, 3)
            .h(3)
            .cx(0, 3)
            .cx(4, 1)
            .u(0.3, 0.1, -0.4, 2)
            .cx(2, 0)
            .measure_all();
        let reference = cbit_distribution(&qc);
        let routed = route(&qc, &CouplingMap::yorktown()).unwrap();
        let lowered = cbit_distribution(&routed.circuit);
        assert_same_distribution(&reference, &lowered, 1e-9);
        // Every CX in the output respects the coupling map.
        let map = CouplingMap::yorktown();
        for op in routed.circuit.gate_ops() {
            if op.gate == Gate::Cx {
                assert!(map.are_adjacent(op.qubits[0], op.qubits[1]));
            }
        }
    }

    #[test]
    fn routing_on_a_line_walks_the_chain() {
        let mut qc = Circuit::new("line", 4, 4);
        qc.x(0).cx(0, 3).measure_all();
        let routed = route_with_layout(&qc, &CouplingMap::linear(4), &identity_layout(4)).unwrap();
        // Two SWAPs (0→1→2) then CX: 7 CNOTs.
        assert_eq!(routed.circuit.counts().cnot, 7);
        let dist = cbit_distribution(&routed.circuit);
        assert!((dist[0b1001] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_oversized_circuits() {
        let mut qc = Circuit::new("big", 3, 0);
        qc.h(2);
        let err = route(&qc, &CouplingMap::linear(2)).unwrap_err();
        assert!(matches!(err, CircuitError::DeviceTooSmall { .. }));
    }

    #[test]
    fn rejects_disconnected_targets() {
        let mut qc = Circuit::new("split", 4, 0);
        qc.cx(0, 3);
        let map = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        let err = route_with_layout(&qc, &map, &identity_layout(4)).unwrap_err();
        assert!(matches!(err, CircuitError::Disconnected { .. }));
    }

    #[test]
    fn rejects_non_native_gates() {
        let mut qc = Circuit::new("swapgate", 2, 0);
        qc.swap(0, 1);
        let err = route(&qc, &CouplingMap::linear(2)).unwrap_err();
        assert!(matches!(err, CircuitError::Unsupported { pass: "route", .. }));
    }

    #[test]
    fn measurements_follow_the_moved_qubit() {
        let mut qc = Circuit::new("meas", 4, 1);
        qc.x(0).cx(0, 3).measure(0, 0);
        let routed = route_with_layout(&qc, &CouplingMap::linear(4), &identity_layout(4)).unwrap();
        // Logical 0 moved; its measurement must read physical phys[0].
        let (measured_phys, cbit) = routed.circuit.measurements()[0];
        assert_eq!(cbit, 0);
        assert_eq!(measured_phys, routed.final_layout[0]);
        let dist = cbit_distribution(&routed.circuit);
        assert!((dist[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn widens_register_to_device_size() {
        let mut qc = Circuit::new("narrow", 2, 2);
        qc.h(0).cx(0, 1).measure_all();
        let routed = route(&qc, &CouplingMap::yorktown()).unwrap();
        assert_eq!(routed.circuit.n_qubits(), 5);
    }
}
