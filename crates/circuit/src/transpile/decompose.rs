//! Gate decomposition to the device basis {one-qubit unitaries, CNOT}.

use crate::{Circuit, CircuitError, Gate, Instruction};

/// Rewrite every non-native gate into single-qubit gates and CNOTs, leaving
/// native gates untouched.
///
/// Identities used (all standard, verified by unit tests against the dense
/// matrices):
///
/// * `CZ(a,b) = H(b) · CX(a,b) · H(b)`
/// * `SWAP(a,b) = CX(a,b) · CX(b,a) · CX(a,b)`
/// * `CPhase(λ)(a,b) = P(λ/2)(a) · CX(a,b) · P(−λ/2)(b) · CX(a,b) · P(λ/2)(b)`
/// * `CCX` — the 6-CNOT qelib1 Toffoli network.
///
/// # Errors
///
/// Returns [`CircuitError::Unsupported`] for gates without a rule (none
/// today; the arm guards future gate-set growth).
pub fn decompose(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut out = Circuit::new(circuit.name(), circuit.n_qubits(), circuit.n_cbits());
    for instr in circuit.instructions() {
        match instr {
            Instruction::Gate(op) => {
                let q = &op.qubits;
                match op.gate {
                    g if g.is_native() => out.push_gate(g, q.clone())?,
                    Gate::Cz => {
                        let (a, b) = (q[0], q[1]);
                        out.h(b).cx(a, b).h(b);
                    }
                    Gate::Swap => {
                        let (a, b) = (q[0], q[1]);
                        out.cx(a, b).cx(b, a).cx(a, b);
                    }
                    Gate::Cphase(lambda) => {
                        let (a, b) = (q[0], q[1]);
                        out.phase(lambda / 2.0, a)
                            .cx(a, b)
                            .phase(-lambda / 2.0, b)
                            .cx(a, b)
                            .phase(lambda / 2.0, b);
                    }
                    Gate::Ccx => {
                        let (a, b, c) = (q[0], q[1], q[2]);
                        out.h(c)
                            .cx(b, c)
                            .tdg(c)
                            .cx(a, c)
                            .t(c)
                            .cx(b, c)
                            .tdg(c)
                            .cx(a, c)
                            .t(b)
                            .t(c)
                            .h(c)
                            .cx(a, b)
                            .t(a)
                            .tdg(b)
                            .cx(a, b);
                    }
                    other => {
                        return Err(CircuitError::Unsupported {
                            gate: other.to_string(),
                            pass: "decompose",
                        });
                    }
                }
            }
            other => out.push(other.clone())?,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::StateVector;

    /// Apply `build` to every computational basis state and compare the
    /// resulting states of the original and decomposed circuits.
    fn assert_equivalent(original: &Circuit) {
        let lowered = decompose(original).expect("decompose");
        assert_eq!(lowered.counts().other_multi, 0);
        let n = original.n_qubits();
        for basis in 0..1usize << n {
            let mut a = StateVector::basis_state(n, basis).unwrap();
            let mut b = a.clone();
            for op in original.gate_ops() {
                op.apply_to(&mut a).unwrap();
            }
            for op in lowered.gate_ops() {
                op.apply_to(&mut b).unwrap();
            }
            let f = a.fidelity(&b).unwrap();
            assert!(f > 1.0 - 1e-9, "basis {basis}: fidelity {f}");
        }
    }

    #[test]
    fn cz_rule_is_exact() {
        let mut qc = Circuit::new("cz", 2, 0);
        qc.h(0).h(1).cz(0, 1);
        assert_equivalent(&qc);
    }

    #[test]
    fn swap_rule_is_exact() {
        let mut qc = Circuit::new("swap", 2, 0);
        qc.h(0).t(1).swap(0, 1);
        assert_equivalent(&qc);
    }

    #[test]
    fn cphase_rule_is_exact() {
        for lambda in [0.31, -1.2, std::f64::consts::PI / 2.0] {
            let mut qc = Circuit::new("cp", 2, 0);
            qc.h(0).h(1).cphase(lambda, 0, 1);
            assert_equivalent(&qc);
        }
    }

    #[test]
    fn ccx_rule_is_exact_on_all_basis_states() {
        let mut qc = Circuit::new("ccx", 3, 0);
        qc.ccx(0, 1, 2);
        assert_equivalent(&qc);
    }

    #[test]
    fn ccx_rule_is_exact_in_superposition() {
        let mut qc = Circuit::new("ccx-sup", 3, 0);
        qc.h(0).h(1).h(2).ccx(2, 0, 1).t(1).ccx(0, 1, 2);
        assert_equivalent(&qc);
    }

    #[test]
    fn native_gates_pass_through_unchanged() {
        let mut qc = Circuit::new("native", 2, 2);
        qc.h(0).u(0.1, 0.2, 0.3, 1).cx(0, 1).measure_all();
        let lowered = decompose(&qc).unwrap();
        assert_eq!(lowered.instructions(), qc.instructions());
    }

    #[test]
    fn measures_and_barriers_survive() {
        let mut qc = Circuit::new("m", 2, 2);
        qc.swap(0, 1).barrier().measure(0, 1).measure(1, 0);
        let lowered = decompose(&qc).unwrap();
        assert_eq!(lowered.measurements(), vec![(0, 1), (1, 0)]);
        assert!(lowered.instructions().iter().any(|i| matches!(i, Instruction::Barrier(_))));
    }

    #[test]
    fn ccx_produces_six_cnots() {
        let mut qc = Circuit::new("ccx", 3, 0);
        qc.ccx(0, 1, 2);
        let lowered = decompose(&qc).unwrap();
        assert_eq!(lowered.counts().cnot, 6);
        assert_eq!(lowered.counts().single, 9);
    }
}
