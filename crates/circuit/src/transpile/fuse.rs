//! Single-qubit gate fusion: merge runs of consecutive one-qubit gates on
//! the same qubit into a single `U(θ, φ, λ)` via ZYZ re-synthesis.

use qsim_statevec::Matrix2;

use crate::{Circuit, CircuitError, Instruction};

/// Tolerance below which a fused product counts as the identity (up to
/// global phase) and is dropped entirely.
const IDENTITY_TOL: f64 = 1e-9;

/// Merge consecutive one-qubit gates per qubit.
///
/// Fusion reduces both the gate count and — more importantly for the noisy
/// simulation — the number of error-injection positions, matching how
/// hardware-facing compilers emit one physical `U` per rotation run.
/// Products equal to the identity up to a global phase are removed.
///
/// Relative order with two-qubit gates, barriers, and measurements touching
/// the same qubit is preserved exactly; single-qubit gates on distinct
/// qubits commute, so each pending run is flushed immediately before the
/// first instruction that shares its qubit.
///
/// # Errors
///
/// Returns [`CircuitError::Unsupported`] if a gate of arity ≥ 3 is present
/// (run [`super::decompose`] first).
pub fn fuse_single_qubit(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let n = circuit.n_qubits();
    let mut out = Circuit::new(circuit.name(), n, circuit.n_cbits());
    let mut pending: Vec<Option<Matrix2>> = vec![None; n];

    fn flush(out: &mut Circuit, pending: &mut [Option<Matrix2>], q: usize) {
        if let Some(m) = pending[q].take() {
            if !m.approx_eq_up_to_phase(&Matrix2::identity(), IDENTITY_TOL) {
                let (theta, phi, lambda) = m.zyz_angles();
                out.u(theta, phi, lambda, q);
            }
        }
    }

    for instr in circuit.instructions() {
        match instr {
            Instruction::Gate(op) => match op.gate.arity() {
                1 => {
                    let q = op.qubits[0];
                    let m = op.gate.matrix1().expect("arity-1 gate has a matrix");
                    pending[q] = Some(match pending[q].take() {
                        Some(acc) => m * acc, // later gate multiplies on the left
                        None => m,
                    });
                }
                2 => {
                    for &q in &op.qubits {
                        flush(&mut out, &mut pending, q);
                    }
                    out.push_gate(op.gate, op.qubits.clone())?;
                }
                _ => {
                    return Err(CircuitError::Unsupported {
                        gate: op.gate.to_string(),
                        pass: "fuse",
                    });
                }
            },
            Instruction::Measure { qubit, cbit } => {
                flush(&mut out, &mut pending, *qubit);
                // Any still-pending rotations on other qubits must land
                // before the measure instruction to keep measurements
                // terminal.
                for q in 0..n {
                    flush(&mut out, &mut pending, q);
                }
                out.push(Instruction::Measure { qubit: *qubit, cbit: *cbit })?;
            }
            Instruction::Barrier(qs) => {
                if qs.is_empty() {
                    for q in 0..n {
                        flush(&mut out, &mut pending, q);
                    }
                } else {
                    for &q in qs {
                        flush(&mut out, &mut pending, q);
                    }
                }
                out.push(Instruction::Barrier(qs.clone()))?;
            }
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::StateVector;

    fn assert_equivalent_states(a: &Circuit, b: &Circuit) {
        let n = a.n_qubits();
        for basis in 0..1usize << n {
            let mut sa = StateVector::basis_state(n, basis).unwrap();
            let mut sb = sa.clone();
            for op in a.gate_ops() {
                op.apply_to(&mut sa).unwrap();
            }
            for op in b.gate_ops() {
                op.apply_to(&mut sb).unwrap();
            }
            let f = sa.fidelity(&sb).unwrap();
            assert!(f > 1.0 - 1e-9, "basis {basis}: fidelity {f}");
        }
    }

    #[test]
    fn run_of_rotations_becomes_one_u() {
        let mut qc = Circuit::new("run", 1, 0);
        qc.h(0).t(0).s(0).rz(0.3, 0).rx(0.7, 0);
        let fused = fuse_single_qubit(&qc).unwrap();
        assert_eq!(fused.counts().single, 1);
        assert_equivalent_states(&qc, &fused);
    }

    #[test]
    fn inverse_pair_cancels_to_nothing() {
        let mut qc = Circuit::new("cancel", 1, 0);
        qc.h(0).h(0);
        let fused = fuse_single_qubit(&qc).unwrap();
        assert_eq!(fused.counts().single, 0);
    }

    #[test]
    fn two_qubit_gates_break_runs() {
        let mut qc = Circuit::new("broken", 2, 0);
        qc.h(0).t(0).cx(0, 1).s(0).h(0);
        let fused = fuse_single_qubit(&qc).unwrap();
        // Two fused singles (before and after the CX) + one CX.
        assert_eq!(fused.counts().single, 2);
        assert_eq!(fused.counts().cnot, 1);
        assert_equivalent_states(&qc, &fused);
    }

    #[test]
    fn independent_qubits_fuse_independently() {
        let mut qc = Circuit::new("indep", 2, 0);
        qc.h(0).t(1).s(0).h(1).rz(0.4, 0);
        let fused = fuse_single_qubit(&qc).unwrap();
        assert_eq!(fused.counts().single, 2);
        assert_equivalent_states(&qc, &fused);
    }

    #[test]
    fn fusion_preserves_heavily_entangling_circuits() {
        let mut qc = Circuit::new("mix", 3, 0);
        qc.h(0).t(0).cx(0, 1).s(1).tdg(1).cx(1, 2).h(2).rz(0.9, 2).cx(2, 0).rx(0.2, 0);
        let fused = fuse_single_qubit(&qc).unwrap();
        assert_equivalent_states(&qc, &fused);
        assert!(fused.counts().single <= qc.counts().single);
    }

    #[test]
    fn measurement_flushes_pending_run() {
        let mut qc = Circuit::new("meas", 2, 2);
        qc.h(0).t(0).h(1).measure(0, 0).measure(1, 1);
        let fused = fuse_single_qubit(&qc).unwrap();
        assert_eq!(fused.counts().single, 2);
        assert_eq!(fused.counts().measure, 2);
        // Measurements still terminal (push would have errored otherwise).
    }

    #[test]
    fn barrier_flushes_involved_qubits() {
        let mut qc = Circuit::new("barrier", 2, 0);
        qc.h(0).barrier().h(0);
        let fused = fuse_single_qubit(&qc).unwrap();
        // The barrier prevents h·h from cancelling.
        assert_eq!(fused.counts().single, 2);
    }

    #[test]
    fn rejects_undecomposed_multiqubit_gates() {
        let mut qc = Circuit::new("ccx", 3, 0);
        qc.ccx(0, 1, 2);
        let err = fuse_single_qubit(&qc).unwrap_err();
        assert!(matches!(err, CircuitError::Unsupported { pass: "fuse", .. }));
    }
}
