//! Commutation-aware rotation sinking.
//!
//! Diagonal (Z-type) gates commute through the **control** of a CNOT and
//! X-type gates through its **target** — exact operator identities:
//! `CX·(Rz⊗I) = (Rz⊗I)·CX` and `CX·(I⊗Rx) = (I⊗Rx)·CX`. Sinking such
//! rotations rightward past CNOTs lets previously separated single-qubit
//! runs meet, so the ZYZ fusion pass can merge them into fewer hardware
//! `U` gates — and fewer gates mean fewer error-injection positions in the
//! noisy simulation.

use crate::{Circuit, CircuitError, Gate, Instruction};

/// `true` for gates diagonal in the Z basis (commute with a CX control).
fn is_z_type(gate: Gate) -> bool {
    matches!(
        gate,
        Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) | Gate::Phase(_)
    )
}

/// `true` for gates in the span of {I, X} rotations (commute with a CX
/// target).
fn is_x_type(gate: Gate) -> bool {
    matches!(gate, Gate::X | Gate::Rx(_))
}

/// Sink commuting single-qubit gates rightward past CNOTs until a fixed
/// point.
///
/// # Errors
///
/// Infallible for valid circuits; the `Result` mirrors the other passes.
pub fn commute_rotations(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut instrs: Vec<Instruction> = circuit.instructions().to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..instrs.len().saturating_sub(1) {
            let swap = match (&instrs[i], &instrs[i + 1]) {
                (Instruction::Gate(one_q), Instruction::Gate(cx))
                    if cx.gate == Gate::Cx && one_q.qubits.len() == 1 =>
                {
                    let q = one_q.qubits[0];
                    (is_z_type(one_q.gate) && cx.qubits[0] == q)
                        || (is_x_type(one_q.gate) && cx.qubits[1] == q)
                }
                _ => false,
            };
            if swap {
                instrs.swap(i, i + 1);
                changed = true;
            }
        }
    }
    let mut out = Circuit::new(circuit.name(), circuit.n_qubits(), circuit.n_cbits());
    for instr in instrs {
        out.push(instr)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::StateVector;

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        for basis in 0..1usize << a.n_qubits() {
            let mut sa = StateVector::basis_state(a.n_qubits(), basis).unwrap();
            let mut sb = sa.clone();
            for op in a.gate_ops() {
                op.apply_to(&mut sa).unwrap();
            }
            for op in b.gate_ops() {
                op.apply_to(&mut sb).unwrap();
            }
            assert!(sa.fidelity(&sb).unwrap() > 1.0 - 1e-9, "basis {basis}");
        }
    }

    #[test]
    fn z_rotation_sinks_through_control() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.rz(0.7, 0).cx(0, 1).rz(0.3, 0);
        let out = commute_rotations(&qc).unwrap();
        assert_equivalent(&qc, &out);
        // Both rotations now sit after the CX.
        let gates: Vec<&str> = out.gate_ops().map(|op| op.gate.name()).collect();
        assert_eq!(gates, vec!["cx", "rz", "rz"]);
        // And fusion merges them into one gate.
        let fused = super::super::fuse_single_qubit(&out).unwrap();
        assert_eq!(fused.counts().single, 1);
    }

    #[test]
    fn x_rotation_sinks_through_target() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.rx(0.4, 1).cx(0, 1).x(1);
        let out = commute_rotations(&qc).unwrap();
        assert_equivalent(&qc, &out);
        let gates: Vec<&str> = out.gate_ops().map(|op| op.gate.name()).collect();
        assert_eq!(gates, vec!["cx", "rx", "x"]);
    }

    #[test]
    fn non_commuting_cases_stay_put() {
        // Z-type on the target does not commute.
        let mut qc = Circuit::new("t", 2, 0);
        qc.rz(0.7, 1).cx(0, 1);
        let out = commute_rotations(&qc).unwrap();
        let gates: Vec<&str> = out.gate_ops().map(|op| op.gate.name()).collect();
        assert_eq!(gates, vec!["rz", "cx"]);
        // X-type on the control does not commute.
        let mut qc = Circuit::new("t", 2, 0);
        qc.x(0).cx(0, 1);
        let out = commute_rotations(&qc).unwrap();
        let gates: Vec<&str> = out.gate_ops().map(|op| op.gate.name()).collect();
        assert_eq!(gates, vec!["x", "cx"]);
        // Hadamard never commutes with either operand.
        let mut qc = Circuit::new("t", 2, 0);
        qc.h(0).cx(0, 1).h(1).cx(0, 1);
        let out = commute_rotations(&qc).unwrap();
        assert_eq!(out.instructions(), qc.instructions());
    }

    #[test]
    fn sinks_through_cnot_chains() {
        // rz on the shared control drifts past both CNOTs.
        let mut qc = Circuit::new("t", 3, 0);
        qc.t(0).cx(0, 1).cx(0, 2).s(0);
        let out = commute_rotations(&qc).unwrap();
        assert_equivalent(&qc, &out);
        let gates: Vec<&str> = out.gate_ops().map(|op| op.gate.name()).collect();
        assert_eq!(gates, vec!["cx", "cx", "t", "s"]);
    }

    #[test]
    fn random_circuits_stay_equivalent() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut qc = Circuit::new("rand", 3, 0);
            for _ in 0..15 {
                match rng.random_range(0..6) {
                    0 => {
                        qc.rz(rng.random::<f64>(), rng.random_range(0..3));
                    }
                    1 => {
                        qc.rx(rng.random::<f64>(), rng.random_range(0..3));
                    }
                    2 => {
                        qc.h(rng.random_range(0..3));
                    }
                    3 => {
                        qc.t(rng.random_range(0..3));
                    }
                    _ => {
                        let a = rng.random_range(0..3);
                        let b = (a + 1 + rng.random_range(0..2)) % 3;
                        qc.cx(a, b);
                    }
                }
            }
            let out = commute_rotations(&qc).unwrap();
            assert_equivalent(&qc, &out);
        }
    }

    #[test]
    fn measurements_and_barriers_are_left_alone() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.rz(0.3, 0).barrier().cx(0, 1).measure_all();
        let out = commute_rotations(&qc).unwrap();
        // The barrier is not a CX, so nothing moves across it.
        let kinds: Vec<bool> =
            out.instructions().iter().map(|i| matches!(i, Instruction::Barrier(_))).collect();
        assert!(kinds[1]);
        assert_eq!(out.measurements().len(), 2);
    }
}
