//! The compilation pipeline standing in for the Enfield compiler used in the
//! paper's evaluation: gate decomposition to the device basis, SWAP routing
//! on a [`CouplingMap`], and single-qubit gate fusion.
//!
//! ```
//! use qsim_circuit::{Circuit, CouplingMap};
//! use qsim_circuit::transpile::{transpile, TranspileOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut qc = Circuit::new("demo", 4, 4);
//! qc.h(0).ccx(0, 1, 3).measure_all();
//! let out = transpile(&qc, &TranspileOptions::for_device(CouplingMap::yorktown()))?;
//! // Only native gates remain.
//! assert_eq!(out.circuit.counts().other_multi, 0);
//! # Ok(())
//! # }
//! ```

mod cancel;
mod commute;
mod decompose;
mod fuse;
mod route;

pub use cancel::cancel_adjacent_cx;
pub use commute::commute_rotations;
pub use decompose::decompose;
pub use fuse::fuse_single_qubit;
pub use route::{choose_initial_layout, route, route_with_layout, Routed};

use crate::{Circuit, CircuitError, CouplingMap};

/// Configuration for [`transpile`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranspileOptions {
    /// Target connectivity; `None` skips routing (all-to-all device).
    pub coupling: Option<CouplingMap>,
    /// Merge runs of single-qubit gates into one `U` gate each.
    pub fuse_single_qubit: bool,
    /// Cancel adjacent identical CNOT pairs (mostly routing artifacts).
    pub cancel_cx: bool,
    /// Sink commuting rotations through CNOTs before fusing.
    pub commute_rotations: bool,
}

impl TranspileOptions {
    /// Decompose-only pipeline (all-to-all device, no fusion).
    pub fn logical() -> Self {
        TranspileOptions::default()
    }

    /// The full device pipeline the paper's evaluation uses: decompose,
    /// route on `coupling`, cancel CNOT pairs, fuse single-qubit runs.
    pub fn for_device(coupling: CouplingMap) -> Self {
        TranspileOptions {
            coupling: Some(coupling),
            fuse_single_qubit: true,
            cancel_cx: true,
            commute_rotations: true,
        }
    }
}

/// Result of [`transpile`]: the lowered circuit plus layout bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct Transpiled {
    /// The lowered circuit (single-qubit gates + CNOTs on coupled pairs).
    pub circuit: Circuit,
    /// `final_layout[logical]` = physical qubit holding that logical qubit
    /// at the end of the program. Measurements are already remapped, so this
    /// is informational.
    pub final_layout: Vec<usize>,
}

/// Lower a logical circuit to the device basis.
///
/// Passes run in order: [`decompose`] → [`route`] (when a coupling map is
/// configured) → [`cancel_adjacent_cx`] → [`commute_rotations`] →
/// [`fuse_single_qubit`] (each when enabled).
///
/// # Errors
///
/// Returns [`CircuitError::DeviceTooSmall`] when the circuit does not fit on
/// the device, or [`CircuitError::Disconnected`] for unroutable operand
/// pairs; decomposition failures propagate as
/// [`CircuitError::Unsupported`].
pub fn transpile(
    circuit: &Circuit,
    options: &TranspileOptions,
) -> Result<Transpiled, CircuitError> {
    let decomposed = decompose(circuit)?;
    let (mut lowered, final_layout) = match &options.coupling {
        Some(map) => {
            let routed = route(&decomposed, map)?;
            (routed.circuit, routed.final_layout)
        }
        None => {
            let identity: Vec<usize> = (0..decomposed.n_qubits()).collect();
            (decomposed, identity)
        }
    };
    if options.cancel_cx {
        lowered = cancel_adjacent_cx(&lowered)?;
    }
    if options.commute_rotations {
        lowered = commute_rotations(&lowered)?;
    }
    if options.fuse_single_qubit {
        lowered = fuse_single_qubit(&lowered)?;
    }
    Ok(Transpiled { circuit: lowered, final_layout })
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::{Circuit, Instruction};
    use qsim_statevec::StateVector;

    /// The exact distribution over classical bit patterns produced by
    /// simulating `circuit` and reading out its measurements (no noise).
    pub fn cbit_distribution(circuit: &Circuit) -> Vec<f64> {
        let state = circuit.simulate().expect("simulation of valid circuit");
        marginalize(&state, circuit)
    }

    /// Project a final state's Born distribution onto the classical register
    /// through the circuit's qubit→cbit measurement map.
    pub fn marginalize(state: &StateVector, circuit: &Circuit) -> Vec<f64> {
        let n_cbits = circuit.n_cbits();
        let mut map = Vec::new();
        for instr in circuit.instructions() {
            if let Instruction::Measure { qubit, cbit } = instr {
                map.push((*qubit, *cbit));
            }
        }
        let mut dist = vec![0.0f64; 1 << n_cbits];
        for (idx, p) in state.probabilities().into_iter().enumerate() {
            let mut pattern = 0usize;
            for &(q, c) in &map {
                if idx >> q & 1 == 1 {
                    pattern |= 1 << c;
                }
            }
            dist[pattern] += p;
        }
        dist
    }

    pub fn assert_same_distribution(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "distribution mismatch at {i}: {x} vs {y}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;
    use crate::catalog;

    #[test]
    fn full_pipeline_preserves_measured_distribution() {
        let sources = [
            catalog::bv(4, 0b111),
            catalog::qft(4),
            catalog::grover_3q(2),
            catalog::wstate_3q(),
            catalog::seven_x1_mod15(),
        ];
        for qc in sources {
            let reference = cbit_distribution(&qc);
            let out = transpile(&qc, &TranspileOptions::for_device(CouplingMap::yorktown()))
                .expect("transpile");
            let lowered = cbit_distribution(&out.circuit);
            assert_same_distribution(&reference, &lowered, 1e-9);
            assert_eq!(out.circuit.counts().other_multi, 0, "{}", qc.name());
        }
    }

    #[test]
    fn logical_options_skip_routing() {
        let mut qc = Circuit::new("far", 5, 5);
        qc.cx(0, 4).measure_all();
        let out = transpile(&qc, &TranspileOptions::logical()).unwrap();
        // Without a coupling map the distant CX stays put.
        assert_eq!(out.circuit.counts().cnot, 1);
        assert_eq!(out.final_layout, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn device_too_small_is_reported() {
        let mut qc = Circuit::new("big", 6, 6);
        qc.h(5).measure_all();
        let err =
            transpile(&qc, &TranspileOptions::for_device(CouplingMap::yorktown())).unwrap_err();
        assert!(matches!(err, CircuitError::DeviceTooSmall { required: 6, available: 5 }));
    }

    #[test]
    fn transpiled_gate_set_is_native() {
        let qc = catalog::qft(5);
        let out = transpile(&qc, &TranspileOptions::for_device(CouplingMap::yorktown())).unwrap();
        for op in out.circuit.gate_ops() {
            assert!(op.gate.is_native(), "non-native gate {} survived", op.gate);
        }
    }
}
