use std::fmt;

use qsim_statevec::{StateVecError, StateVector};

use crate::{CircuitError, Gate, GateOp, LayeredCircuit};

/// One instruction of a quantum program.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub enum Instruction {
    /// A unitary gate application.
    Gate(GateOp),
    /// A terminal computational-basis measurement of one qubit into one
    /// classical bit.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        cbit: usize,
    },
    /// A scheduling barrier across the listed qubits (empty = all).
    Barrier(Vec<usize>),
}

/// Post-compilation gate statistics, in the shape of the paper's Table I.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// One-qubit gates ("Single #").
    pub single: usize,
    /// CNOT gates ("CNOT #").
    pub cnot: usize,
    /// Other multi-qubit gates (zero after transpilation).
    pub other_multi: usize,
    /// Measurements ("Measure #").
    pub measure: usize,
}

/// A quantum circuit: an ordered instruction list over `n_qubits` qubits and
/// `n_cbits` classical bits.
///
/// Builder methods (`h`, `cx`, …) panic on out-of-range operands — they are
/// for statically known programs; fallible construction goes through
/// [`Circuit::push`].
///
/// ```
/// use qsim_circuit::Circuit;
///
/// let mut qc = Circuit::new("ghz", 3, 3);
/// qc.h(0).cx(0, 1).cx(1, 2).measure_all();
/// assert_eq!(qc.counts().cnot, 2);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    name: String,
    n_qubits: usize,
    n_cbits: usize,
    instrs: Vec<Instruction>,
}

impl Circuit {
    /// Create an empty circuit.
    pub fn new(name: impl Into<String>, n_qubits: usize, n_cbits: usize) -> Self {
        Circuit { name: name.into(), n_qubits, n_cbits, instrs: Vec::new() }
    }

    /// Circuit name (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of classical bits.
    pub fn n_cbits(&self) -> usize {
        self.n_cbits
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Append an instruction with validation.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if operands are out of range, a gate
    /// repeats a qubit, or a gate follows a measurement on any qubit
    /// (measurements must be terminal for the noisy-simulation pipeline).
    pub fn push(&mut self, instr: Instruction) -> Result<(), CircuitError> {
        match &instr {
            Instruction::Gate(op) => {
                for &q in &op.qubits {
                    self.check_qubit(q)?;
                }
                if self.instrs.iter().any(|i| matches!(i, Instruction::Measure { .. })) {
                    return Err(CircuitError::GateAfterMeasure { position: self.instrs.len() });
                }
            }
            Instruction::Measure { qubit, cbit } => {
                self.check_qubit(*qubit)?;
                if *cbit >= self.n_cbits {
                    return Err(CircuitError::CbitOutOfRange {
                        cbit: *cbit,
                        n_cbits: self.n_cbits,
                    });
                }
            }
            Instruction::Barrier(qs) => {
                for &q in qs {
                    self.check_qubit(q)?;
                }
            }
        }
        self.instrs.push(instr);
        Ok(())
    }

    /// Append a gate with validation.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn push_gate(&mut self, gate: Gate, qubits: Vec<usize>) -> Result<(), CircuitError> {
        let op = GateOp::new(gate, qubits)?;
        self.push(Instruction::Gate(op))
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), CircuitError> {
        if qubit >= self.n_qubits {
            Err(CircuitError::QubitOutOfRange { qubit, n_qubits: self.n_qubits })
        } else {
            Ok(())
        }
    }

    fn must(&mut self, gate: Gate, qubits: Vec<usize>) -> &mut Self {
        self.push_gate(gate, qubits).expect("builder operand out of range");
        self
    }

    /// Hadamard. # Panics — on an out-of-range operand.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.must(Gate::H, vec![q])
    }

    /// Pauli X. # Panics — on an out-of-range operand.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.must(Gate::X, vec![q])
    }

    /// Pauli Y. # Panics — on an out-of-range operand.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.must(Gate::Y, vec![q])
    }

    /// Pauli Z. # Panics — on an out-of-range operand.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.must(Gate::Z, vec![q])
    }

    /// S gate. # Panics — on an out-of-range operand.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.must(Gate::S, vec![q])
    }

    /// S† gate. # Panics — on an out-of-range operand.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.must(Gate::Sdg, vec![q])
    }

    /// T gate. # Panics — on an out-of-range operand.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.must(Gate::T, vec![q])
    }

    /// T† gate. # Panics — on an out-of-range operand.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.must(Gate::Tdg, vec![q])
    }

    /// X rotation. # Panics — on an out-of-range operand.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.must(Gate::Rx(theta), vec![q])
    }

    /// Y rotation. # Panics — on an out-of-range operand.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.must(Gate::Ry(theta), vec![q])
    }

    /// Z rotation. # Panics — on an out-of-range operand.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.must(Gate::Rz(theta), vec![q])
    }

    /// Phase gate (`u1`). # Panics — on an out-of-range operand.
    pub fn phase(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.must(Gate::Phase(lambda), vec![q])
    }

    /// General unitary (`u3`). # Panics — on an out-of-range operand.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.must(Gate::U(theta, phi, lambda), vec![q])
    }

    /// CNOT. # Panics — on invalid operands.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.must(Gate::Cx, vec![control, target])
    }

    /// Controlled-Z. # Panics — on invalid operands.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.must(Gate::Cz, vec![a, b])
    }

    /// SWAP. # Panics — on invalid operands.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.must(Gate::Swap, vec![a, b])
    }

    /// Controlled phase. # Panics — on invalid operands.
    pub fn cphase(&mut self, lambda: f64, a: usize, b: usize) -> &mut Self {
        self.must(Gate::Cphase(lambda), vec![a, b])
    }

    /// Toffoli. # Panics — on invalid operands.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.must(Gate::Ccx, vec![c1, c2, target])
    }

    /// Measure `qubit` into `cbit`. # Panics — on invalid operands.
    pub fn measure(&mut self, qubit: usize, cbit: usize) -> &mut Self {
        self.push(Instruction::Measure { qubit, cbit }).expect("builder operand out of range");
        self
    }

    /// Measure qubit `q` into classical bit `q` for every qubit.
    ///
    /// # Panics
    ///
    /// Panics if the classical register is narrower than the quantum one.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.n_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Add a barrier across all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        self.instrs.push(Instruction::Barrier(Vec::new()));
        self
    }

    /// Total gate instructions (any arity).
    pub fn gate_count(&self) -> usize {
        self.gate_ops().count()
    }

    /// Circuit depth: the number of ASAP layers.
    ///
    /// # Panics
    ///
    /// Panics only if layering fails, which cannot happen for circuits
    /// built through this validated API.
    pub fn depth(&self) -> usize {
        self.layered().expect("validated circuits always layer").n_layers()
    }

    /// Gate statistics in Table-I shape.
    pub fn counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for instr in &self.instrs {
            match instr {
                Instruction::Gate(op) => match op.gate.arity() {
                    1 => counts.single += 1,
                    2 if op.gate == Gate::Cx => counts.cnot += 1,
                    _ => counts.other_multi += 1,
                },
                Instruction::Measure { .. } => counts.measure += 1,
                Instruction::Barrier(_) => {}
            }
        }
        counts
    }

    /// Iterate over gate operations only.
    pub fn gate_ops(&self) -> impl Iterator<Item = &GateOp> {
        self.instrs.iter().filter_map(|i| match i {
            Instruction::Gate(op) => Some(op),
            _ => None,
        })
    }

    /// The measurement list in program order, as `(qubit, cbit)` pairs.
    pub fn measurements(&self) -> Vec<(usize, usize)> {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instruction::Measure { qubit, cbit } => Some((*qubit, *cbit)),
                _ => None,
            })
            .collect()
    }

    /// Partition into layers for noisy simulation.
    ///
    /// # Errors
    ///
    /// Propagates layering validation failures.
    pub fn layered(&self) -> Result<LayeredCircuit, CircuitError> {
        LayeredCircuit::from_circuit(self)
    }

    /// Partition into layers with an explicit scheduling strategy.
    ///
    /// # Errors
    ///
    /// Propagates layering validation failures.
    pub fn layered_with(
        &self,
        strategy: crate::LayeringStrategy,
    ) -> Result<LayeredCircuit, CircuitError> {
        LayeredCircuit::from_circuit_with(self, strategy)
    }

    /// Run the circuit (ignoring measurements) on `|0…0⟩` and return the
    /// final state — the noiseless reference used by tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] (cannot occur for validated circuits).
    pub fn simulate(&self) -> Result<StateVector, StateVecError> {
        let mut state = StateVector::zero_state(self.n_qubits);
        for op in self.gate_ops() {
            op.apply_to(&mut state)?;
        }
        Ok(state)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let counts = self.counts();
        write!(
            f,
            "{} ({} qubits, {} 1q, {} cx, {} measure)",
            self.name, self.n_qubits, counts.single, counts.cnot, counts.measure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut qc = Circuit::new("t", 3, 3);
        qc.h(0).t(1).cx(0, 1).swap(1, 2).ccx(0, 1, 2).measure_all();
        let counts = qc.counts();
        assert_eq!(counts.single, 2);
        assert_eq!(counts.cnot, 1);
        assert_eq!(counts.other_multi, 2);
        assert_eq!(counts.measure, 3);
    }

    #[test]
    fn push_validates_qubits_and_cbits() {
        let mut qc = Circuit::new("t", 2, 1);
        assert_eq!(
            qc.push_gate(Gate::H, vec![5]),
            Err(CircuitError::QubitOutOfRange { qubit: 5, n_qubits: 2 })
        );
        assert_eq!(
            qc.push(Instruction::Measure { qubit: 0, cbit: 3 }),
            Err(CircuitError::CbitOutOfRange { cbit: 3, n_cbits: 1 })
        );
    }

    #[test]
    fn gates_after_measure_are_rejected() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).measure(0, 0);
        let err = qc.push_gate(Gate::X, vec![1]).unwrap_err();
        assert!(matches!(err, CircuitError::GateAfterMeasure { .. }));
    }

    #[test]
    #[should_panic(expected = "builder operand out of range")]
    fn builder_panics_on_bad_operand() {
        Circuit::new("t", 1, 1).cx(0, 1);
    }

    #[test]
    fn simulate_ghz() {
        let mut qc = Circuit::new("ghz", 3, 3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let s = qc.simulate().unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measurements_report_pairs_in_order() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).measure(1, 0).measure(0, 1);
        assert_eq!(qc.measurements(), vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn depth_and_gate_count_conveniences() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).h(1).cx(0, 1).t(0).measure_all();
        assert_eq!(qc.gate_count(), 4);
        assert_eq!(qc.depth(), 3);
        assert_eq!(Circuit::new("e", 1, 0).depth(), 0);
    }

    #[test]
    fn display_summarizes() {
        let mut qc = Circuit::new("bell", 2, 2);
        qc.h(0).cx(0, 1).measure_all();
        assert_eq!(qc.to_string(), "bell (2 qubits, 1 1q, 1 cx, 2 measure)");
    }
}
