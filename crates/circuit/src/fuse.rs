//! Trial-set-aware gate fusion.
//!
//! Monte-Carlo noisy simulation applies the *same* circuit thousands of
//! times, pausing only where some trial injects an error operator — the end
//! of an injection layer. Every layer boundary that no trial ever cuts is
//! pure overhead: the gates on either side could have been one operator and
//! one pass over the amplitudes.
//!
//! A [`FusedProgram`] fixes a global partition of the layer range into
//! [`Segment`]s, cut exactly at the union of the trial set's injection
//! layers, and fuses freely *within* each segment:
//!
//! * runs of one-qubit gates on a qubit collapse into one 2×2 product;
//! * one-qubit gates adjacent to a two-qubit gate are absorbed into its
//!   4×4 matrix;
//! * consecutive two-qubit gates on the same pair merge into one matrix;
//! * every fused operator is classified into a kernel class
//!   ([`qsim_statevec::FusedOp`]): diagonal, permutation, or dense.
//!
//! Because the cut set is the union over the **whole** trial set, every
//! executor strategy (baseline, reuse, budgeted, parallel, compressed)
//! can share one program and stop at any injection point any trial needs —
//! which keeps their outcomes bitwise identical to each other: every trial
//! sees the same floating-point operator sequence regardless of strategy.
//!
//! Fusion never crosses a cut, so per-segment bookkeeping preserves the
//! paper's `ops` metric exactly: [`Segment::source_gates`] counts the
//! original gates a segment stands for.

use qsim_statevec::{FusedOp, Matrix2, Matrix4, StateVecError, StateVector};

use crate::{Gate, LayeredCircuit};

/// Segments standing for fewer source gates than this skip fusion and run
/// gate-by-gate. On tiny segments the chaining/pairing machinery mostly
/// promotes cheap specialized kernels (diag1, cx) into dense 4×4 passes
/// without removing enough passes to pay for them — the profitability
/// cliff the `fusion` benchmark exposes on densely-cut RB sequences.
pub const FUSION_MIN_GATES: usize = 4;

/// One fused, cut-respecting slice of the circuit: layers
/// `start..=end` compiled to a sequence of classified kernel ops.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    start: usize,
    end: usize,
    ops: Vec<FusedOp>,
    source_gates: usize,
    bypassed: bool,
}

impl Segment {
    /// First layer covered (inclusive).
    pub fn start_layer(&self) -> usize {
        self.start
    }

    /// Last layer covered (inclusive).
    pub fn end_layer(&self) -> usize {
        self.end
    }

    /// The fused operators, in application order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// How many original gates this segment stands for — the segment's
    /// contribution to the paper's `ops` metric.
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// `true` when the segment fell below [`FUSION_MIN_GATES`] and was
    /// compiled gate-by-gate instead of fused.
    pub fn is_bypassed(&self) -> bool {
        self.bypassed
    }

    #[doc(hidden)]
    pub fn ops_mut(&mut self) -> &mut Vec<FusedOp> {
        &mut self.ops
    }
}

/// A layered circuit compiled into fused segments between injection
/// cut-points (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct FusedProgram {
    n_qubits: usize,
    n_layers: usize,
    segments: Vec<Segment>,
    /// `seg_at[l]` = index of the segment containing layer `l`.
    seg_at: Vec<usize>,
}

impl FusedProgram {
    /// Compile `layered` against a set of cut layers (typically the union
    /// of injection layers across a trial set; unsorted/duplicated input is
    /// tolerated, out-of-range cuts are ignored). A cut at layer `l` means
    /// "an error operator may be applied after layer `l`", so `l` always
    /// ends a segment.
    pub fn new(layered: &LayeredCircuit, cut_layers: &[usize]) -> Self {
        let n_layers = layered.n_layers();
        let mut cuts: Vec<usize> = cut_layers.iter().copied().filter(|&l| l < n_layers).collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut segments = Vec::with_capacity(cuts.len() + 1);
        let mut seg_at = vec![0usize; n_layers];
        let mut start = 0usize;
        let mut cut_iter = cuts.iter().copied().peekable();
        while start < n_layers {
            let end = loop {
                match cut_iter.peek() {
                    Some(&c) if c < start => {
                        cut_iter.next();
                    }
                    Some(&c) => {
                        cut_iter.next();
                        break c;
                    }
                    None => break n_layers - 1,
                }
            };
            let source_gates = layered.gates_through(end)
                - if start == 0 { 0 } else { layered.gates_through(start - 1) };
            let bypassed = source_gates < FUSION_MIN_GATES;
            let ops = if bypassed {
                classify_gates(layered, start, end)
            } else {
                pair_disjoint_1q(fuse_layers(layered, start, end))
            };
            for slot in seg_at.iter_mut().take(end + 1).skip(start) {
                *slot = segments.len();
            }
            segments.push(Segment { start, end, ops, source_gates, bypassed });
            start = end + 1;
        }
        FusedProgram { n_qubits: layered.n_qubits(), n_layers, segments, seg_at }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Layers of the source circuit.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The segments, in layer order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    #[doc(hidden)]
    pub fn segments_mut(&mut self) -> &mut Vec<Segment> {
        &mut self.segments
    }

    /// `true` when an error operator can be applied after `layer` without
    /// splitting a segment — i.e. `layer` ends a segment. Executors must
    /// check this for every injection they intend to interleave.
    pub fn is_cut_aligned(&self, layer: usize) -> bool {
        layer < self.n_layers && self.segments[self.seg_at[layer]].end == layer
    }

    /// Total fused operators across all segments (one amplitude pass each).
    pub fn total_fused_ops(&self) -> usize {
        self.segments.iter().map(|s| s.ops.len()).sum()
    }

    /// How many segments fell below [`FUSION_MIN_GATES`] and were compiled
    /// gate-by-gate (reported as the `fusion_bypassed` telemetry counter).
    pub fn bypassed_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.bypassed).count()
    }

    /// Total source gates across all segments (equals the layered circuit's
    /// gate count).
    pub fn total_source_gates(&self) -> usize {
        self.segments.iter().map(|s| s.source_gates).sum()
    }

    /// `(source_gates, fused_ops)` of the segments covering layers
    /// `0 ..= through` — exactly what [`FusedProgram::apply_through`] from
    /// `done = -1` would return, computed without touching any amplitudes.
    /// This is the accounting credit an executor owes when it restores a
    /// cached prefix state instead of recomputing it.
    ///
    /// # Panics
    ///
    /// Panics if `through` does not end a segment (the same boundary
    /// contract as [`FusedProgram::apply_through`]). `through < 0` yields
    /// `(0, 0)`.
    pub fn segment_costs_through(&self, through: i64) -> (u64, u64) {
        let mut source = 0u64;
        let mut fused = 0u64;
        let mut done = -1i64;
        while done < through {
            let next = (done + 1) as usize;
            let seg = &self.segments[self.seg_at[next]];
            assert!(
                (seg.end as i64) <= through,
                "cost target {through} splits segment {}..={}",
                seg.start,
                seg.end
            );
            source += seg.source_gates as u64;
            fused += seg.ops.len() as u64;
            done = seg.end as i64;
        }
        (source, fused)
    }

    /// Apply whole segments to `state`, advancing `done` (the highest layer
    /// already applied, `-1` for none) through `through` inclusive. Returns
    /// `(source_gates, fused_ops)` applied — the former is the paper's
    /// `ops` contribution, the latter the number of amplitude passes.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] from the kernels.
    ///
    /// # Panics
    ///
    /// Panics if `done` or `through` does not lie on a segment boundary —
    /// the caller is expected to have aligned every stop with
    /// [`FusedProgram::is_cut_aligned`].
    pub fn apply_through(
        &self,
        state: &mut StateVector,
        done: &mut i64,
        through: i64,
    ) -> Result<(u64, u64), StateVecError> {
        let mut source = 0u64;
        let mut fused = 0u64;
        while *done < through {
            let next = (*done + 1) as usize;
            let seg = &self.segments[self.seg_at[next]];
            assert_eq!(seg.start, next, "advance does not start on a segment boundary");
            assert!(
                (seg.end as i64) <= through,
                "advance target {through} splits segment {}..={}",
                seg.start,
                seg.end
            );
            for op in &seg.ops {
                state.apply_fused(op)?;
            }
            source += seg.source_gates as u64;
            fused += seg.ops.len() as u64;
            *done = seg.end as i64;
        }
        Ok((source, fused))
    }

    /// Like [`FusedProgram::apply_through`], but times every kernel op and
    /// hands `(op, segment_end_layer, elapsed_ns)` to `observe`. Profiling
    /// path — the unobserved variant stays free of per-op clock reads.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] from the kernels.
    ///
    /// # Panics
    ///
    /// Panics if `done` or `through` does not lie on a segment boundary,
    /// exactly as [`FusedProgram::apply_through`].
    pub fn apply_through_observed(
        &self,
        state: &mut StateVector,
        done: &mut i64,
        through: i64,
        observe: &mut dyn FnMut(&FusedOp, usize, u64),
    ) -> Result<(u64, u64), StateVecError> {
        let mut source = 0u64;
        let mut fused = 0u64;
        while *done < through {
            let next = (*done + 1) as usize;
            let seg = &self.segments[self.seg_at[next]];
            assert_eq!(seg.start, next, "advance does not start on a segment boundary");
            assert!(
                (seg.end as i64) <= through,
                "advance target {through} splits segment {}..={}",
                seg.start,
                seg.end
            );
            for op in &seg.ops {
                let t0 = std::time::Instant::now();
                state.apply_fused(op)?;
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observe(op, seg.end, ns);
            }
            source += seg.source_gates as u64;
            fused += seg.ops.len() as u64;
            *done = seg.end as i64;
        }
        Ok((source, fused))
    }

    /// Run all segments on `|0…0⟩` (noiseless fused reference).
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`].
    pub fn simulate(&self) -> Result<StateVector, StateVecError> {
        let mut state = StateVector::zero_state(self.n_qubits);
        let mut done = -1i64;
        self.apply_through(&mut state, &mut done, self.n_layers as i64 - 1)?;
        Ok(state)
    }
}

/// Compile layers `start..=end` gate-by-gate, classifying each gate but
/// doing no chaining or pairing: the sub-threshold path, where the small
/// specialized kernels beat the dense matrices fusion would build.
fn classify_gates(layered: &LayeredCircuit, start: usize, end: usize) -> Vec<FusedOp> {
    let mut ops = Vec::new();
    for layer in start..=end {
        for op in layered.layer(layer) {
            if let Some(m) = op.gate.matrix1() {
                ops.push(FusedOp::classify_1q(&m, op.qubits[0]));
            } else if let Some(m) = op.gate.matrix2() {
                // GateOp convention: qubits[0] is the high local bit.
                ops.push(FusedOp::classify_2q(&m, op.qubits[1], op.qubits[0]));
            } else {
                debug_assert_eq!(op.gate, Gate::Ccx);
                ops.push(FusedOp::Ccx {
                    control_a: op.qubits[0],
                    control_b: op.qubits[1],
                    target: op.qubits[2],
                });
            }
        }
    }
    ops
}

/// A fused operator under construction.
enum Building {
    One(Matrix2, usize),
    /// 4×4 accumulator over `(low, high)` local bits.
    Two(Matrix4, usize, usize),
    Ccx(usize, usize, usize),
}

/// `U` acting on one local bit of a 4×4 operator.
fn lift_1q(m: &Matrix2, on_high: bool) -> Matrix4 {
    if on_high {
        Matrix4::kron(m, &Matrix2::identity())
    } else {
        Matrix4::kron(&Matrix2::identity(), m)
    }
}

/// Fuse the gates of layers `start..=end` into classified kernel ops.
///
/// Builder invariant: `open[q]` points at the last pending op touching `q`,
/// if that op can still absorb on `q`. Folding a gate into the op `open[q]`
/// names only commutes it past later ops that do not touch `q`, so the
/// emitted (creation-order) sequence stays mathematically equal to the
/// source gate sequence.
fn fuse_layers(layered: &LayeredCircuit, start: usize, end: usize) -> Vec<FusedOp> {
    let n_qubits = layered.n_qubits();
    let mut pending: Vec<Option<Building>> = Vec::new();
    let mut open: Vec<Option<usize>> = vec![None; n_qubits];

    for layer in start..=end {
        for op in layered.layer(layer) {
            if let Some(m) = op.gate.matrix1() {
                let q = op.qubits[0];
                match open[q].map(|i| (i, pending[i].as_mut().expect("open ops are pending"))) {
                    Some((_, Building::One(acc, _))) => *acc = m * *acc,
                    Some((_, Building::Two(acc, low, _))) => {
                        *acc = lift_1q(&m, q != *low) * *acc;
                    }
                    Some((_, Building::Ccx(..))) => unreachable!("ccx is never left open"),
                    None => {
                        open[q] = Some(pending.len());
                        pending.push(Some(Building::One(m, q)));
                    }
                }
            } else if let Some(m) = op.gate.matrix2() {
                // GateOp convention: qubits[0] is the high local bit.
                let (gl, gh) = (op.qubits[1], op.qubits[0]);
                let same_pair = match (open[gl], open[gh]) {
                    (Some(i), Some(j)) if i == j => {
                        matches!(pending[i], Some(Building::Two(..))).then_some(i)
                    }
                    _ => None,
                };
                if let Some(i) = same_pair {
                    let Some(Building::Two(acc, low, _)) = pending[i].as_mut() else {
                        unreachable!("same_pair checked the variant")
                    };
                    let oriented = if gl == *low { m } else { m.swapped_operands() };
                    *acc = oriented * *acc;
                } else {
                    let mut acc = m;
                    for (q, on_high) in [(gl, false), (gh, true)] {
                        if let Some(i) = open[q] {
                            if let Some(Building::One(prior, _)) = pending[i] {
                                // The pending 1q applies *before* this gate.
                                acc = acc * lift_1q(&prior, on_high);
                                pending[i] = None;
                            }
                        }
                    }
                    open[gl] = Some(pending.len());
                    open[gh] = Some(pending.len());
                    pending.push(Some(Building::Two(acc, gl, gh)));
                }
            } else {
                debug_assert_eq!(op.gate, Gate::Ccx);
                // Opaque fallback: emit closed, absorbing nothing.
                for &q in &op.qubits {
                    open[q] = None;
                }
                pending.push(Some(Building::Ccx(op.qubits[0], op.qubits[1], op.qubits[2])));
            }
        }
    }

    pending
        .into_iter()
        .flatten()
        .map(|b| match b {
            Building::One(m, q) => FusedOp::classify_1q(&m, q),
            Building::Two(m, low, high) => FusedOp::classify_2q(&m, low, high),
            Building::Ccx(a, b, t) => FusedOp::Ccx { control_a: a, control_b: b, target: t },
        })
        .collect()
}

/// View a kernel as a generic 1q matrix, if it is one.
fn as_1q(op: &FusedOp) -> Option<(Matrix2, usize)> {
    let zero = qsim_statevec::C64 { re: 0.0, im: 0.0 };
    let one = qsim_statevec::C64 { re: 1.0, im: 0.0 };
    match op {
        FusedOp::Dense1 { m, qubit } => Some((*m, *qubit)),
        FusedOp::Diag1 { d, qubit } => Some((Matrix2([[d[0], zero], [zero, d[1]]]), *qubit)),
        FusedOp::Phase1 { d1, qubit } => Some((Matrix2([[one, zero], [zero, *d1]]), *qubit)),
        FusedOp::Perm1 { phase, qubit } => {
            Some((Matrix2([[zero, phase[0]], [phase[1], zero]]), *qubit))
        }
        _ => None,
    }
}

/// Merge pairs of disjoint 1q kernels into one 2q kernel (a Kronecker
/// product): identical arithmetic, half the amplitude-array sweeps. This is
/// what keeps fusion profitable even when a dense cut union pins every
/// segment to a single layer — gates inside a layer are qubit-disjoint, so
/// cross-layer chaining finds nothing, but disjoint 1q gates still bundle.
///
/// A 1q op may slide right past any op not touching its qubit; the first
/// later 1q op on a *different* qubit becomes its merge partner (at the
/// partner's position, so ordering constraints against intervening ops on
/// the partner's qubit are respected).
fn pair_disjoint_1q(ops: Vec<FusedOp>) -> Vec<FusedOp> {
    let mut slots: Vec<Option<FusedOp>> = ops.into_iter().map(Some).collect();
    for i in 0..slots.len() {
        let Some((m_a, q_a)) = slots[i].as_ref().and_then(as_1q) else { continue };
        let mut j = i + 1;
        while j < slots.len() {
            let Some(other) = slots[j].as_ref() else {
                j += 1;
                continue;
            };
            if other.qubits().contains(&q_a) {
                break;
            }
            if let Some((m_b, q_b)) = as_1q(other) {
                let (low, high, m_low, m_high) =
                    if q_a < q_b { (q_a, q_b, m_a, m_b) } else { (q_b, q_a, m_b, m_a) };
                let m4 = Matrix4::kron(&m_high, &m_low);
                slots[j] = Some(FusedOp::classify_2q(&m4, low, high));
                slots[i] = None;
                break;
            }
            j += 1;
        }
    }
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, Circuit};

    fn assert_fused_matches(circuit: &Circuit, cuts: &[usize]) {
        let layered = circuit.layered().unwrap();
        let program = FusedProgram::new(&layered, cuts);
        let reference = layered.simulate().unwrap();
        let fused = program.simulate().unwrap();
        assert!(
            fused.fidelity(&reference).unwrap() > 1.0 - 1e-10,
            "{} diverged under cuts {cuts:?}",
            circuit.name()
        );
        assert_eq!(program.total_source_gates(), layered.total_gates());
    }

    #[test]
    fn fused_simulation_matches_unfused_reference() {
        for circuit in [
            catalog::bv(5, 0b1011),
            catalog::qft(4),
            catalog::grover_3q(1),
            catalog::wstate_3q(),
            catalog::seven_x1_mod15(),
            catalog::quantum_volume(5, 4, 11),
        ] {
            assert_fused_matches(&circuit, &[]);
            assert_fused_matches(&circuit, &[0]);
            let n = circuit.layered().unwrap().n_layers();
            assert_fused_matches(&circuit, &(0..n).collect::<Vec<_>>());
            assert_fused_matches(&circuit, &[n / 2, n / 3]);
        }
    }

    #[test]
    fn cuts_end_segments_exactly() {
        let layered = catalog::qft(5).layered().unwrap();
        let cuts = [2usize, 5, 7, 7, 2];
        let program = FusedProgram::new(&layered, &cuts);
        for &c in &cuts {
            assert!(program.is_cut_aligned(c), "cut {c} split a segment");
        }
        // Segments tile the layer range without overlap.
        let mut next = 0;
        for seg in program.segments() {
            assert_eq!(seg.start_layer(), next);
            assert!(seg.end_layer() >= seg.start_layer());
            next = seg.end_layer() + 1;
        }
        assert_eq!(next, layered.n_layers());
        // Only segment ends are aligned.
        for l in 0..layered.n_layers() {
            let is_end = program.segments().iter().any(|s| s.end_layer() == l);
            assert_eq!(program.is_cut_aligned(l), is_end);
        }
    }

    #[test]
    fn fusion_compresses_structured_circuits() {
        // QFT mixes H walls into cphase pairs: fusion must cut the pass
        // count below the gate count when no cuts intervene.
        let layered = catalog::qft(5).layered().unwrap();
        let program = FusedProgram::new(&layered, &[]);
        assert!(
            program.total_fused_ops() < layered.total_gates(),
            "{} fused ops vs {} gates",
            program.total_fused_ops(),
            layered.total_gates()
        );
        // One-qubit-chain-heavy circuits (RB sequences, transpiled u3 runs)
        // fuse much harder.
        let rb = catalog::rb_sequence(20, 3).layered().unwrap();
        let rb_program = FusedProgram::new(&rb, &[]);
        assert!(
            rb_program.total_fused_ops() * 2 <= rb.total_gates(),
            "{} fused ops vs {} gates",
            rb_program.total_fused_ops(),
            rb.total_gates()
        );
        // Denser cuts mean less fusion, never more.
        let all_cut = FusedProgram::new(&layered, &(0..layered.n_layers()).collect::<Vec<_>>());
        assert!(all_cut.total_fused_ops() >= program.total_fused_ops());
    }

    #[test]
    fn one_qubit_chains_collapse_to_single_ops() {
        let mut qc = Circuit::new("chain", 1, 0);
        qc.h(0).t(0).s(0).h(0).rz(0.4, 0);
        let layered = qc.layered().unwrap();
        let program = FusedProgram::new(&layered, &[]);
        assert_eq!(program.total_fused_ops(), 1);
        assert_eq!(program.total_source_gates(), 5);
        assert_fused_matches(&qc, &[]);
    }

    #[test]
    fn adjacent_1q_gates_absorb_into_2q_matrices() {
        let mut qc = Circuit::new("absorb", 2, 0);
        qc.h(0).h(1).cx(0, 1).t(0).s(1).cx(0, 1).h(1);
        let layered = qc.layered().unwrap();
        let program = FusedProgram::new(&layered, &[]);
        // Everything funnels into the CX pair: a single fused op.
        assert_eq!(program.total_fused_ops(), 1);
        assert_fused_matches(&qc, &[]);
    }

    #[test]
    fn ccx_stays_opaque_and_blocks_absorption() {
        let mut qc = Circuit::new("ccx", 3, 0);
        qc.h(0).ccx(0, 1, 2).h(0);
        let layered = qc.layered().unwrap();
        let program = FusedProgram::new(&layered, &[]);
        let kinds: Vec<&str> =
            program.segments().iter().flat_map(|s| s.ops()).map(|o| o.kernel_name()).collect();
        assert_eq!(kinds, ["dense1", "ccx", "dense1"]);
        assert_fused_matches(&qc, &[]);
    }

    #[test]
    fn kernel_classes_appear_where_expected() {
        let mut qc = Circuit::new("classes", 3, 0);
        qc.t(0).rz(0.2, 0).x(1).cz(1, 2).cx(0, 1);
        let layered = qc.layered().unwrap();
        let program = FusedProgram::new(&layered, &(0..layered.n_layers()).collect::<Vec<_>>());
        let kinds: Vec<&str> =
            program.segments().iter().flat_map(|s| s.ops()).map(|o| o.kernel_name()).collect();
        assert!(kinds.contains(&"phase1"), "{kinds:?}");
        assert!(kinds.contains(&"diag1"), "{kinds:?}");
        assert!(kinds.contains(&"perm1"), "{kinds:?}");
        assert!(kinds.contains(&"cphase2"), "{kinds:?}");
        assert!(kinds.contains(&"cx"), "{kinds:?}");
    }

    #[test]
    fn apply_through_counts_and_panics_on_misalignment() {
        let layered = catalog::qft(4).layered().unwrap();
        let program = FusedProgram::new(&layered, &[3]);
        let mut state = StateVector::zero_state(4);
        let mut done = -1i64;
        let (src, fused) = program.apply_through(&mut state, &mut done, 3).unwrap();
        assert_eq!(src as usize, layered.gates_through(3));
        assert!(fused > 0 && fused <= src);
        assert_eq!(done, 3);
        let last = layered.n_layers() as i64 - 1;
        let (src2, _) = program.apply_through(&mut state, &mut done, last).unwrap();
        assert_eq!(src as usize + src2 as usize, layered.total_gates());
        // Stopping inside a segment is a caller bug.
        let result = std::panic::catch_unwind(|| {
            let mut s = StateVector::zero_state(4);
            let mut d = -1i64;
            let _ = program.apply_through(&mut s, &mut d, 1);
        });
        assert!(result.is_err());
    }

    #[test]
    fn observed_apply_matches_unobserved_and_sees_every_op() {
        let layered = catalog::qft(4).layered().unwrap();
        let program = FusedProgram::new(&layered, &[3]);
        let mut plain = StateVector::zero_state(4);
        let mut done_plain = -1i64;
        let last = layered.n_layers() as i64 - 1;
        let counts = program.apply_through(&mut plain, &mut done_plain, last).unwrap();
        let mut observed = StateVector::zero_state(4);
        let mut done_obs = -1i64;
        let mut seen = 0u64;
        let mut layers: Vec<usize> = Vec::new();
        let counts_obs = program
            .apply_through_observed(&mut observed, &mut done_obs, last, &mut |_, layer, _| {
                seen += 1;
                layers.push(layer);
            })
            .unwrap();
        assert_eq!(counts, counts_obs);
        assert_eq!(seen, counts.1, "observer must fire once per fused op");
        assert_eq!(plain.amplitudes(), observed.amplitudes());
        // Every observed layer is a segment end.
        for layer in layers {
            assert!(program.is_cut_aligned(layer), "observer reported non-boundary layer {layer}");
        }
    }

    #[test]
    fn tiny_segments_bypass_fusion() {
        // A 3-gate circuit sits below FUSION_MIN_GATES: compiled per-gate.
        let mut qc = Circuit::new("tiny", 2, 0);
        qc.h(0).cx(0, 1).t(1);
        let layered = qc.layered().unwrap();
        let program = FusedProgram::new(&layered, &[]);
        assert_eq!(program.bypassed_segments(), 1);
        assert!(program.segments()[0].is_bypassed());
        assert_eq!(program.total_fused_ops(), 3, "bypassed segments run gate-by-gate");
        assert_fused_matches(&qc, &[]);
        // Above the threshold the same prefix fuses and reports no bypass.
        let mut big = Circuit::new("big", 2, 0);
        big.h(0).cx(0, 1).t(1).h(0).s(1);
        let program = FusedProgram::new(&big.layered().unwrap(), &[]);
        assert_eq!(program.bypassed_segments(), 0);
        assert!(program.total_fused_ops() < 5);
        assert_fused_matches(&big, &[]);
    }

    #[test]
    fn empty_circuit_yields_no_segments() {
        let qc = Circuit::new("empty", 2, 0);
        let program = FusedProgram::new(&qc.layered().unwrap(), &[0, 1]);
        assert!(program.segments().is_empty());
        assert_eq!(program.total_fused_ops(), 0);
        assert_eq!(program.simulate().unwrap().probability(0), 1.0);
    }
}
