use std::error::Error;
use std::fmt;

/// Errors produced by circuit construction, layering, and transpilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit operand was at least the register width.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// A classical bit operand was at least the classical register width.
    CbitOutOfRange {
        /// Offending classical bit index.
        cbit: usize,
        /// Classical register width.
        n_cbits: usize,
    },
    /// The same qubit appeared twice in one gate's operand list.
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// A gate received the wrong number of qubit operands.
    ArityMismatch {
        /// Gate name.
        gate: &'static str,
        /// Required operand count.
        expected: usize,
        /// Provided operand count.
        actual: usize,
    },
    /// A gate appeared after a measurement (the noisy-simulation pipeline
    /// requires all measurements to be terminal, as in the paper's
    /// benchmarks).
    GateAfterMeasure {
        /// Index of the offending instruction.
        position: usize,
    },
    /// A multi-qubit gate was not in the transpiler's supported set.
    Unsupported {
        /// Gate name.
        gate: String,
        /// Which pass rejected it.
        pass: &'static str,
    },
    /// A two-qubit gate addressed qubits with no path in the coupling map.
    Disconnected {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The circuit does not fit on the device.
    DeviceTooSmall {
        /// Logical qubits required.
        required: usize,
        /// Physical qubits available.
        available: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit circuit")
            }
            CircuitError::CbitOutOfRange { cbit, n_cbits } => {
                write!(f, "classical bit {cbit} out of range for {n_cbits}-bit register")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "gate operand list repeats qubit {qubit}")
            }
            CircuitError::ArityMismatch { gate, expected, actual } => {
                write!(f, "gate {gate} takes {expected} qubits, got {actual}")
            }
            CircuitError::GateAfterMeasure { position } => {
                write!(f, "instruction {position} applies a gate after measurement; measurements must be terminal")
            }
            CircuitError::Unsupported { gate, pass } => {
                write!(f, "gate {gate} is not supported by the {pass} pass")
            }
            CircuitError::Disconnected { a, b } => {
                write!(f, "no coupling path between physical qubits {a} and {b}")
            }
            CircuitError::DeviceTooSmall { required, available } => {
                write!(f, "circuit needs {required} qubits but the device has {available}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_operands() {
        let e = CircuitError::ArityMismatch { gate: "cx", expected: 2, actual: 3 };
        assert_eq!(e.to_string(), "gate cx takes 2 qubits, got 3");
        assert!(CircuitError::Disconnected { a: 1, b: 4 }.to_string().contains("1 and 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CircuitError>();
    }
}
