use std::fmt;

use qsim_statevec::{Matrix2, Matrix4, StateVecError, StateVector};

use crate::CircuitError;

/// A quantum gate, parameterized where applicable.
///
/// Gates are *logical*: the transpiler lowers everything to the device basis
/// (`U` plus `Cx`) before layering and noisy simulation. Angles are radians.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity (used by tests and as a decomposition sentinel).
    I,
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S.
    S,
    /// S adjoint.
    Sdg,
    /// π/8 gate T.
    T,
    /// T adjoint.
    Tdg,
    /// Rotation about X.
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z.
    Rz(f64),
    /// Phase gate `diag(1, e^{iλ})` (OpenQASM `u1`).
    Phase(f64),
    /// General one-qubit unitary `U(θ, φ, λ)` (OpenQASM `u3`).
    U(f64, f64, f64),
    /// CNOT; operands `[control, target]`.
    Cx,
    /// Controlled-Z; symmetric operands.
    Cz,
    /// SWAP; symmetric operands.
    Swap,
    /// Controlled phase; symmetric operands.
    Cphase(f64),
    /// Toffoli; operands `[control, control, target]`.
    Ccx,
}

impl Gate {
    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U(..) => 1,
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::Cphase(_) => 2,
            Gate::Ccx => 3,
        }
    }

    /// The OpenQASM 2.0 name of this gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "u1",
            Gate::U(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Cphase(_) => "cu1",
            Gate::Ccx => "ccx",
        }
    }

    /// Angle parameters in QASM argument order (empty for fixed gates).
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) | Gate::Cphase(t) => vec![t],
            Gate::U(t, p, l) => vec![t, p, l],
            _ => vec![],
        }
    }

    /// Dense 2×2 matrix of a one-qubit gate, `None` otherwise.
    pub fn matrix1(&self) -> Option<Matrix2> {
        Some(match *self {
            Gate::I => Matrix2::identity(),
            Gate::H => Matrix2::h(),
            Gate::X => Matrix2::x(),
            Gate::Y => Matrix2::y(),
            Gate::Z => Matrix2::z(),
            Gate::S => Matrix2::s(),
            Gate::Sdg => Matrix2::sdg(),
            Gate::T => Matrix2::t(),
            Gate::Tdg => Matrix2::tdg(),
            Gate::Rx(t) => Matrix2::rx(t),
            Gate::Ry(t) => Matrix2::ry(t),
            Gate::Rz(t) => Matrix2::rz(t),
            Gate::Phase(t) => Matrix2::phase(t),
            Gate::U(t, p, l) => Matrix2::u(t, p, l),
            _ => return None,
        })
    }

    /// Dense 4×4 matrix of a two-qubit gate in the convention where operand
    /// `qubits[0]` is the **high** local bit (so controls sit at
    /// `qubits[0]`), `None` otherwise.
    pub fn matrix2(&self) -> Option<Matrix4> {
        Some(match *self {
            Gate::Cx => Matrix4::cx(),
            Gate::Cz => Matrix4::cz(),
            Gate::Swap => Matrix4::swap(),
            Gate::Cphase(t) => Matrix4::cphase(t),
            _ => return None,
        })
    }

    /// `true` for gates directly accepted by the device basis used in the
    /// paper (arbitrary one-qubit unitaries and CNOT).
    pub fn is_native(&self) -> bool {
        self.arity() == 1 || matches!(self, Gate::Cx)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

/// A gate bound to its qubit operands.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub struct GateOp {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; for controlled gates, controls come first.
    pub qubits: Vec<usize>,
}

impl GateOp {
    /// Bind a gate to operands, validating arity and operand distinctness.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`] or
    /// [`CircuitError::DuplicateQubit`].
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Result<Self, CircuitError> {
        if qubits.len() != gate.arity() {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name(),
                expected: gate.arity(),
                actual: qubits.len(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        Ok(GateOp { gate, qubits })
    }

    /// Apply this gate to a state vector. One basic operation in the paper's
    /// cost metric (Toffoli counts as one as well; the transpiled circuits
    /// that the noisy simulation consumes never contain one).
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] for invalid operands.
    pub fn apply_to(&self, state: &mut StateVector) -> Result<(), StateVecError> {
        match self.gate {
            Gate::Cx => state.apply_cx(self.qubits[0], self.qubits[1]),
            Gate::Ccx => state.apply_ccx(self.qubits[0], self.qubits[1], self.qubits[2]),
            _ => {
                if let Some(m) = self.gate.matrix1() {
                    state.apply_1q(&m, self.qubits[0])
                } else if let Some(m) = self.gate.matrix2() {
                    // qubits[0] is the high local bit by convention.
                    state.apply_2q(&m, self.qubits[1], self.qubits[0])
                } else {
                    unreachable!("every gate has a matrix or a fast path")
                }
            }
        }
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let operands: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.gate, operands.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_statevec::TOL;

    #[test]
    fn arity_and_name_are_consistent() {
        let cases = [
            (Gate::H, 1, "h"),
            (Gate::U(0.1, 0.2, 0.3), 1, "u3"),
            (Gate::Cx, 2, "cx"),
            (Gate::Swap, 2, "swap"),
            (Gate::Ccx, 3, "ccx"),
        ];
        for (g, arity, name) in cases {
            assert_eq!(g.arity(), arity);
            assert_eq!(g.name(), name);
        }
    }

    #[test]
    fn every_gate_has_matrix_matching_arity() {
        let all = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.3),
            Gate::Ry(0.3),
            Gate::Rz(0.3),
            Gate::Phase(0.3),
            Gate::U(0.3, 0.2, 0.1),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Cphase(0.4),
            Gate::Ccx,
        ];
        for g in all {
            match g.arity() {
                1 => {
                    assert!(g.matrix1().unwrap().is_unitary(TOL));
                    assert!(g.matrix2().is_none());
                }
                2 => {
                    assert!(g.matrix2().unwrap().is_unitary(TOL));
                    assert!(g.matrix1().is_none());
                }
                3 => {
                    assert!(g.matrix1().is_none() && g.matrix2().is_none());
                }
                other => panic!("unexpected arity {other}"),
            }
        }
    }

    #[test]
    fn gateop_validates_operands() {
        assert!(GateOp::new(Gate::Cx, vec![0, 0]).is_err());
        assert!(GateOp::new(Gate::H, vec![0, 1]).is_err());
        assert!(GateOp::new(Gate::Ccx, vec![0, 1, 2]).is_ok());
        assert!(GateOp::new(Gate::Ccx, vec![0, 1, 0]).is_err());
    }

    #[test]
    fn cx_gateop_control_is_first_operand() {
        // |01⟩ (qubit 0 set). Control = 0 flips target 1.
        let mut s = StateVector::basis_state(2, 0b01).unwrap();
        GateOp::new(Gate::Cx, vec![0, 1]).unwrap().apply_to(&mut s).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < TOL);
        // Control = 1 (clear) leaves the state alone.
        let mut s = StateVector::basis_state(2, 0b01).unwrap();
        GateOp::new(Gate::Cx, vec![1, 0]).unwrap().apply_to(&mut s).unwrap();
        assert!((s.probability(0b01) - 1.0).abs() < TOL);
    }

    #[test]
    fn cphase_is_symmetric_in_operands() {
        let mut a = StateVector::zero_state(2);
        let mut b = StateVector::zero_state(2);
        for q in 0..2 {
            a.apply_1q(&Matrix2::h(), q).unwrap();
            b.apply_1q(&Matrix2::h(), q).unwrap();
        }
        GateOp::new(Gate::Cphase(0.7), vec![0, 1]).unwrap().apply_to(&mut a).unwrap();
        GateOp::new(Gate::Cphase(0.7), vec![1, 0]).unwrap().apply_to(&mut b).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((x - y).norm() < TOL);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(1.5).to_string().starts_with("rz(1.5"));
        let op = GateOp::new(Gate::Cx, vec![2, 0]).unwrap();
        assert_eq!(op.to_string(), "cx q[2],q[0]");
    }
}
