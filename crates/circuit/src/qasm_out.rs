//! OpenQASM 2.0 emission for [`Circuit`], the inverse of the `qsim-qasm`
//! front end.

use std::fmt::Write as _;

use crate::{Circuit, Instruction};

/// Render a circuit as an OpenQASM 2.0 program using `qelib1.inc` gate
/// names. Angles are printed with 17 significant digits so a parse/emit
/// round trip is exact.
///
/// ```
/// use qsim_circuit::{Circuit, to_qasm};
///
/// let mut qc = Circuit::new("bell", 2, 2);
/// qc.h(0).cx(0, 1).measure_all();
/// let qasm = to_qasm(&qc);
/// assert!(qasm.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.n_qubits());
    if circuit.n_cbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.n_cbits());
    }
    for instr in circuit.instructions() {
        match instr {
            Instruction::Gate(op) => {
                let params = op.gate.params();
                if params.is_empty() {
                    let _ = write!(out, "{}", op.gate.name());
                } else {
                    let rendered: Vec<String> =
                        params.iter().map(|p| format!("{p:.17e}")).collect();
                    let _ = write!(out, "{}({})", op.gate.name(), rendered.join(","));
                }
                let operands: Vec<String> = op.qubits.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(out, " {};", operands.join(","));
            }
            Instruction::Measure { qubit, cbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{cbit}];");
            }
            Instruction::Barrier(qs) => {
                if qs.is_empty() {
                    out.push_str("barrier q;\n");
                } else {
                    let operands: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                    let _ = writeln!(out, "barrier {};", operands.join(","));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn emits_header_and_registers() {
        let mut qc = Circuit::new("t", 3, 2);
        qc.h(0);
        let qasm = to_qasm(&qc);
        assert!(qasm.starts_with("OPENQASM 2.0;\n"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("creg c[2];"));
    }

    #[test]
    fn emits_parameterized_gates_with_full_precision() {
        let mut qc = Circuit::new("t", 1, 0);
        qc.rz(std::f64::consts::PI / 3.0, 0);
        let qasm = to_qasm(&qc);
        assert!(qasm.contains("rz(1.04719755119659"), "{qasm}");
    }

    #[test]
    fn emits_measure_arrows() {
        let mut qc = Circuit::new("t", 2, 2);
        qc.h(0).measure(0, 1);
        assert!(to_qasm(&qc).contains("measure q[0] -> c[1];"));
    }

    #[test]
    fn emits_barriers() {
        let mut qc = Circuit::new("t", 2, 0);
        qc.h(0).barrier();
        assert!(to_qasm(&qc).contains("barrier q;\n"));
        let mut qc = Circuit::new("t", 2, 0);
        qc.push(Instruction::Barrier(vec![1])).unwrap();
        assert!(to_qasm(&qc).contains("barrier q[1];\n"));
    }

    #[test]
    fn whole_catalog_emits_without_panic() {
        for qc in catalog::realistic_suite() {
            let qasm = to_qasm(&qc);
            assert!(qasm.lines().count() > 3, "{} produced empty QASM", qc.name());
        }
    }
}
