//! Recursive-descent parser for the supported OpenQASM 2.0 subset.

use crate::ast::{Argument, Expr, GateDef, Program, Statement};
use crate::error::{Pos, QasmError};
use crate::lexer::{Token, TokenKind};

/// Parse a token stream into a [`Program`].
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, QasmError> {
    let mut parser = Parser { tokens, i: 0 };
    let mut statements = Vec::new();
    while !parser.at_end() {
        statements.push(parser.statement()?);
    }
    Ok(Program { statements })
}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.i >= self.tokens.len()
    }

    fn pos(&self) -> Pos {
        self.tokens.get(self.i).or_else(|| self.tokens.last()).map(|t| t.pos).unwrap_or_default()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.i).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.i);
        self.i += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> QasmError {
        QasmError::Parse { pos: self.pos(), message: message.into() }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), QasmError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.i += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Pos), QasmError> {
        let pos = self.pos();
        match self.bump().map(|t| &t.kind) {
            Some(TokenKind::Ident(name)) => Ok((name.clone(), pos)),
            _ => Err(QasmError::Parse { pos, message: format!("expected {what}") }),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<usize, QasmError> {
        let pos = self.pos();
        match self.bump().map(|t| &t.kind) {
            Some(TokenKind::Int(v)) => Ok(*v),
            _ => Err(QasmError::Parse { pos, message: format!("expected {what}") }),
        }
    }

    fn statement(&mut self) -> Result<Statement, QasmError> {
        let pos = self.pos();
        let (keyword, _) = match self.peek() {
            Some(TokenKind::Ident(name)) => (name.clone(), ()),
            _ => return Err(self.err("expected a statement")),
        };
        match keyword.as_str() {
            "OPENQASM" => {
                self.i += 1;
                let version = match self.bump().map(|t| &t.kind) {
                    Some(TokenKind::Real(v)) => *v,
                    Some(TokenKind::Int(v)) => *v as f64,
                    _ => {
                        return Err(QasmError::Parse {
                            pos,
                            message: "expected version number".into(),
                        })
                    }
                };
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Version { version, pos })
            }
            "include" => {
                self.i += 1;
                let path = match self.bump().map(|t| &t.kind) {
                    Some(TokenKind::Str(s)) => s.clone(),
                    _ => {
                        return Err(QasmError::Parse {
                            pos,
                            message: "expected include path string".into(),
                        })
                    }
                };
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Include { path, pos })
            }
            "qreg" | "creg" => {
                self.i += 1;
                let (name, _) = self.expect_ident("register name")?;
                self.expect(&TokenKind::LBracket, "'['")?;
                let size = self.expect_int("register size")?;
                self.expect(&TokenKind::RBracket, "']'")?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                if keyword == "qreg" {
                    Ok(Statement::QReg { name, size, pos })
                } else {
                    Ok(Statement::CReg { name, size, pos })
                }
            }
            "gate" => {
                self.i += 1;
                self.gate_def(pos)
            }
            "opaque" => {
                self.i += 1;
                let (name, _) = self.expect_ident("opaque gate name")?;
                // Skip to the semicolon: opaque declarations carry no body.
                while let Some(kind) = self.peek() {
                    if *kind == TokenKind::Semicolon {
                        break;
                    }
                    self.i += 1;
                }
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Opaque { name, pos })
            }
            "measure" => {
                self.i += 1;
                let src = self.argument()?;
                self.expect(&TokenKind::Arrow, "'->'")?;
                let dst = self.argument()?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Measure { src, dst, pos })
            }
            "barrier" => {
                self.i += 1;
                let operands = self.argument_list()?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Barrier { operands, pos })
            }
            "if" => Err(QasmError::Unsupported { pos, construct: "if statement".into() }),
            "reset" => Err(QasmError::Unsupported { pos, construct: "reset statement".into() }),
            _ => {
                // Gate application.
                self.i += 1;
                let args = if self.peek() == Some(&TokenKind::LParen) {
                    self.i += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        while self.peek() == Some(&TokenKind::Comma) {
                            self.i += 1;
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    args
                } else {
                    Vec::new()
                };
                let operands = self.argument_list()?;
                if operands.is_empty() {
                    return Err(QasmError::Parse {
                        pos,
                        message: format!("gate {keyword} has no operands"),
                    });
                }
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Apply { name: keyword, args, operands, pos })
            }
        }
    }

    fn gate_def(&mut self, pos: Pos) -> Result<Statement, QasmError> {
        let (name, _) = self.expect_ident("gate name")?;
        let mut params = Vec::new();
        if self.peek() == Some(&TokenKind::LParen) {
            self.i += 1;
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    let (p, _) = self.expect_ident("parameter name")?;
                    params.push(p);
                    if self.peek() == Some(&TokenKind::Comma) {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
        }
        let mut qubits = Vec::new();
        loop {
            let (q, _) = self.expect_ident("qubit parameter")?;
            qubits.push(q);
            if self.peek() == Some(&TokenKind::Comma) {
                self.i += 1;
            } else {
                break;
            }
        }
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut body = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated gate body"));
            }
            let stmt = self.statement()?;
            match &stmt {
                Statement::Apply { .. } | Statement::Barrier { .. } => body.push(stmt),
                other => {
                    return Err(QasmError::Parse {
                        pos,
                        message: format!(
                            "gate bodies may only contain gate applications, found {other:?}"
                        ),
                    });
                }
            }
        }
        self.expect(&TokenKind::RBrace, "'}'")?;
        Ok(Statement::Gate(GateDef { name, params, qubits, body, pos }))
    }

    fn argument_list(&mut self) -> Result<Vec<Argument>, QasmError> {
        let mut operands = vec![self.argument()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.i += 1;
            operands.push(self.argument()?);
        }
        Ok(operands)
    }

    fn argument(&mut self) -> Result<Argument, QasmError> {
        let (register, pos) = self.expect_ident("register reference")?;
        let index = if self.peek() == Some(&TokenKind::LBracket) {
            self.i += 1;
            let idx = self.expect_int("register index")?;
            self.expect(&TokenKind::RBracket, "']'")?;
            Some(idx)
        } else {
            None
        };
        Ok(Argument { register, index, pos })
    }

    // Expression grammar: expr := term (('+'|'-') term)*
    //                     term := factor (('*'|'/') factor)*
    //                     factor := unary ('^' factor)?      (right assoc)
    //                     unary := '-' unary | atom
    //                     atom := number | pi | ident | ident '(' expr ')' | '(' expr ')'
    fn expr(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.i += 1;
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(TokenKind::Minus) => {
                    self.i += 1;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(TokenKind::Star) => {
                    self.i += 1;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
                }
                Some(TokenKind::Slash) => {
                    self.i += 1;
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, QasmError> {
        let base = self.unary()?;
        if self.peek() == Some(&TokenKind::Caret) {
            self.i += 1;
            let exp = self.factor()?; // right-associative
            Ok(Expr::Pow(Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn unary(&mut self) -> Result<Expr, QasmError> {
        if self.peek() == Some(&TokenKind::Minus) {
            self.i += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, QasmError> {
        let pos = self.pos();
        match self.bump().map(|t| t.kind.clone()) {
            Some(TokenKind::Real(v)) => Ok(Expr::Number(v)),
            Some(TokenKind::Int(v)) => Ok(Expr::Number(v as f64)),
            Some(TokenKind::LParen) => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            Some(TokenKind::Ident(name)) => {
                if name == "pi" {
                    Ok(Expr::Pi)
                } else if self.peek() == Some(&TokenKind::LParen) {
                    self.i += 1;
                    let arg = self.expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    Ok(Expr::Call(name, Box::new(arg)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            _ => Err(QasmError::Parse { pos, message: "expected an expression".into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Program {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_header_and_registers() {
        let p = parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n");
        assert_eq!(p.statements.len(), 4);
        assert!(matches!(p.statements[2], Statement::QReg { size: 3, .. }));
    }

    #[test]
    fn parses_gate_application_with_args() {
        let p = parse("rz(pi/2) q[0];");
        match &p.statements[0] {
            Statement::Apply { name, args, operands, .. } => {
                assert_eq!(name, "rz");
                assert_eq!(args.len(), 1);
                assert!(
                    (args[0].eval(&|_| None).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12
                );
                assert_eq!(operands[0].index, Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_measure_arrow() {
        let p = parse("measure q -> c;");
        assert!(matches!(&p.statements[0], Statement::Measure { src, dst, .. }
            if src.register == "q" && dst.register == "c" && src.index.is_none()));
    }

    #[test]
    fn parses_gate_definition() {
        let p = parse("gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }");
        match &p.statements[0] {
            Statement::Gate(def) => {
                assert_eq!(def.name, "majority");
                assert_eq!(def.qubits, vec!["a", "b", "c"]);
                assert_eq!(def.body.len(), 3);
                assert!(def.params.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parameterized_gate_definition() {
        let p = parse("gate my_rot(theta, phi) a { rz(theta) a; ry(phi + pi) a; }");
        match &p.statements[0] {
            Statement::Gate(def) => {
                assert_eq!(def.params, vec!["theta", "phi"]);
                assert_eq!(def.body.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse("rz(1 + 2 * 3 ^ 2) q[0];");
        if let Statement::Apply { args, .. } = &p.statements[0] {
            assert_eq!(args[0].eval(&|_| None), Some(19.0));
        } else {
            panic!();
        }
        let p = parse("rz(-(1 + 1) / 4) q[0];");
        if let Statement::Apply { args, .. } = &p.statements[0] {
            assert_eq!(args[0].eval(&|_| None), Some(-0.5));
        } else {
            panic!();
        }
    }

    #[test]
    fn rejects_dynamic_constructs() {
        let toks = lex("if (c == 1) x q[0];").unwrap();
        let err = parse_tokens(&toks).unwrap_err();
        assert!(matches!(err, QasmError::Unsupported { .. }));
        let toks = lex("reset q[0];").unwrap();
        assert!(matches!(parse_tokens(&toks).unwrap_err(), QasmError::Unsupported { .. }));
    }

    #[test]
    fn reports_missing_semicolons() {
        let toks = lex("qreg q[2]").unwrap();
        let err = parse_tokens(&toks).unwrap_err();
        assert!(err.to_string().contains("expected ';'"));
    }

    #[test]
    fn rejects_register_declaration_inside_gate_body() {
        let toks = lex("gate bad a { qreg r[1]; }").unwrap();
        assert!(parse_tokens(&toks).is_err());
    }

    #[test]
    fn parses_opaque_declaration() {
        let p = parse("opaque magic(alpha) a, b;");
        assert!(matches!(&p.statements[0], Statement::Opaque { name, .. } if name == "magic"));
    }
}
