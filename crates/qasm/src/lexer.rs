//! Hand-written lexer for OpenQASM 2.0.

use crate::error::{Pos, QasmError};

/// Lexical token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`qreg`, `measure`, gate names, …).
    Ident(String),
    /// Real literal (also covers integers followed by `.`/exponent).
    Real(f64),
    /// Non-negative integer literal.
    Int(usize),
    /// String literal (include paths).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Start position.
    pub pos: Pos,
}

/// Tokenize QASM source. Line comments (`// …`) are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, QasmError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(),
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, pos });
                advance!();
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos });
                advance!();
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos });
                advance!();
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos });
                advance!();
            }
            '[' => {
                tokens.push(Token { kind: TokenKind::LBracket, pos });
                advance!();
            }
            ']' => {
                tokens.push(Token { kind: TokenKind::RBracket, pos });
                advance!();
            }
            '{' => {
                tokens.push(Token { kind: TokenKind::LBrace, pos });
                advance!();
            }
            '}' => {
                tokens.push(Token { kind: TokenKind::RBrace, pos });
                advance!();
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos });
                advance!();
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos });
                advance!();
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos });
                advance!();
            }
            '^' => {
                tokens.push(Token { kind: TokenKind::Caret, pos });
                advance!();
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token { kind: TokenKind::Arrow, pos });
                    advance!();
                    advance!();
                } else {
                    tokens.push(Token { kind: TokenKind::Minus, pos });
                    advance!();
                }
            }
            '=' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token { kind: TokenKind::EqEq, pos });
                    advance!();
                    advance!();
                } else {
                    return Err(QasmError::Lex { pos, found: '=' });
                }
            }
            '"' => {
                advance!();
                let mut s = String::new();
                while i < chars.len() && chars[i] != '"' {
                    s.push(chars[i]);
                    advance!();
                }
                if i >= chars.len() {
                    return Err(QasmError::Parse { pos, message: "unterminated string".into() });
                }
                advance!(); // closing quote
                tokens.push(Token { kind: TokenKind::Str(s), pos });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut text = String::new();
                let mut is_real = c == '.';
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() {
                        text.push(d);
                        advance!();
                    } else if d == '.' {
                        is_real = true;
                        text.push(d);
                        advance!();
                    } else if d == 'e' || d == 'E' {
                        is_real = true;
                        text.push(d);
                        advance!();
                        if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                            text.push(chars[i]);
                            advance!();
                        }
                    } else {
                        break;
                    }
                }
                if is_real {
                    let value: f64 = text.parse().map_err(|_| QasmError::Parse {
                        pos,
                        message: format!("invalid real literal {text:?}"),
                    })?;
                    tokens.push(Token { kind: TokenKind::Real(value), pos });
                } else {
                    let value: usize = text.parse().map_err(|_| QasmError::Parse {
                        pos,
                        message: format!("invalid integer literal {text:?}"),
                    })?;
                    tokens.push(Token { kind: TokenKind::Int(value), pos });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    ident.push(chars[i]);
                    advance!();
                }
                tokens.push(Token { kind: TokenKind::Ident(ident), pos });
            }
            other => return Err(QasmError::Lex { pos, found: other }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_statement() {
        assert_eq!(
            kinds("qreg q[5];"),
            vec![
                TokenKind::Ident("qreg".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(5),
                TokenKind::RBracket,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_minus() {
        assert_eq!(
            kinds("a -> b - c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Minus,
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("3 3.5 1e-3 .25"),
            vec![
                TokenKind::Int(3),
                TokenKind::Real(3.5),
                TokenKind::Real(1e-3),
                TokenKind::Real(0.25),
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let tokens = lex("// header\nh q;\n").unwrap();
        assert_eq!(tokens[0].pos.line, 2);
        assert_eq!(tokens[0].pos.col, 1);
    }

    #[test]
    fn lexes_strings() {
        assert_eq!(kinds("include \"qelib1.inc\";")[1], TokenKind::Str("qelib1.inc".into()));
    }

    #[test]
    fn rejects_bad_characters() {
        let err = lex("h q; @").unwrap_err();
        assert!(matches!(err, QasmError::Lex { found: '@', .. }));
        assert!(lex("a = b").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("include \"oops").is_err());
    }
}
