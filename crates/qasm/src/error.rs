use std::error::Error;
use std::fmt;

/// A source position, 1-based.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number (1-based).
    pub line: usize,
    /// Column number (1-based).
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, or lowering OpenQASM 2.0 source.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QasmError {
    /// An unexpected character in the input.
    Lex {
        /// Position of the character.
        pos: Pos,
        /// What was found.
        found: char,
    },
    /// A syntactic failure.
    Parse {
        /// Position of the offending token.
        pos: Pos,
        /// Human-readable expectation.
        message: String,
    },
    /// A semantic failure during lowering.
    Semantic {
        /// Position where the construct started.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// A syntactically valid construct outside the supported subset.
    Unsupported {
        /// Position of the construct.
        pos: Pos,
        /// What was encountered.
        construct: String,
    },
}

impl QasmError {
    /// The source position the error points at.
    pub fn pos(&self) -> Pos {
        match self {
            QasmError::Lex { pos, .. }
            | QasmError::Parse { pos, .. }
            | QasmError::Semantic { pos, .. }
            | QasmError::Unsupported { pos, .. } => *pos,
        }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::Lex { pos, found } => {
                write!(f, "{pos}: unexpected character {found:?}")
            }
            QasmError::Parse { pos, message } => write!(f, "{pos}: {message}"),
            QasmError::Semantic { pos, message } => write!(f, "{pos}: {message}"),
            QasmError::Unsupported { pos, construct } => {
                write!(f, "{pos}: unsupported construct: {construct}")
            }
        }
    }
}

impl Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_render_line_colon_col() {
        let e = QasmError::Parse { pos: Pos { line: 3, col: 7 }, message: "expected ';'".into() };
        assert_eq!(e.to_string(), "3:7: expected ';'");
        assert_eq!(e.pos(), Pos { line: 3, col: 7 });
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<QasmError>();
    }
}
