//! Lowering from the QASM AST to [`qsim_circuit::Circuit`]: register
//! flattening, broadcasting, and recursive gate-definition expansion.

use std::collections::HashMap;
use std::f64::consts::FRAC_PI_2;

use qsim_circuit::{Circuit, Gate, Instruction};

use crate::ast::{Argument, Expr, GateDef, Program, Statement};
use crate::error::{Pos, QasmError};

/// Maximum gate-definition expansion depth (QASM 2.0 requires definitions
/// before use, so legal programs cannot recurse; this guards corrupt input).
const MAX_EXPANSION_DEPTH: usize = 64;

struct Registers {
    /// name → (offset, size) in the flattened index space.
    qregs: HashMap<String, (usize, usize)>,
    cregs: HashMap<String, (usize, usize)>,
    n_qubits: usize,
    n_cbits: usize,
}

/// Lower a parsed program to a circuit.
pub fn lower(program: &Program) -> Result<Circuit, QasmError> {
    let mut regs =
        Registers { qregs: HashMap::new(), cregs: HashMap::new(), n_qubits: 0, n_cbits: 0 };
    let mut defs: HashMap<String, GateDef> = HashMap::new();
    let mut opaques: Vec<String> = Vec::new();

    // First pass: declarations.
    for stmt in &program.statements {
        match stmt {
            Statement::Version { version, pos } if (*version - 2.0).abs() > 1e-9 => {
                return Err(QasmError::Unsupported {
                    pos: *pos,
                    construct: format!("OPENQASM version {version}"),
                });
            }
            Statement::Include { path, pos } if path != "qelib1.inc" => {
                return Err(QasmError::Unsupported {
                    pos: *pos,
                    construct: format!("include {path:?} (only qelib1.inc is built in)"),
                });
            }
            Statement::QReg { name, size, pos } => {
                if regs.qregs.contains_key(name) {
                    return Err(semantic(*pos, format!("duplicate qreg {name}")));
                }
                regs.qregs.insert(name.clone(), (regs.n_qubits, *size));
                regs.n_qubits += size;
            }
            Statement::CReg { name, size, pos } => {
                if regs.cregs.contains_key(name) {
                    return Err(semantic(*pos, format!("duplicate creg {name}")));
                }
                regs.cregs.insert(name.clone(), (regs.n_cbits, *size));
                regs.n_cbits += size;
            }
            Statement::Gate(def) => {
                if builtin_arity(&def.name).is_some() || defs.contains_key(&def.name) {
                    // Redefinitions of builtins (qelib1 files inline them)
                    // are tolerated; the builtin wins.
                    if builtin_arity(&def.name).is_none() {
                        return Err(semantic(def.pos, format!("duplicate gate {}", def.name)));
                    }
                } else {
                    defs.insert(def.name.clone(), def.clone());
                }
            }
            Statement::Opaque { name, .. } => opaques.push(name.clone()),
            _ => {}
        }
    }

    let mut circuit = Circuit::new("qasm_program", regs.n_qubits, regs.n_cbits);

    // Second pass: operations.
    for stmt in &program.statements {
        match stmt {
            Statement::Apply { name, args, operands, pos } => {
                if opaques.contains(name) {
                    return Err(QasmError::Unsupported {
                        pos: *pos,
                        construct: format!("application of opaque gate {name}"),
                    });
                }
                let arg_values = eval_args(args, *pos, &|_| None)?;
                for instance in broadcast(operands, &regs, *pos)? {
                    apply_gate(&mut circuit, name, &arg_values, &instance, &defs, *pos, 0)?;
                }
            }
            Statement::Measure { src, dst, pos } => {
                let (q_off, q_size) = resolve_qreg(&regs, src)?;
                let (c_off, c_size) = resolve_creg(&regs, dst)?;
                match (src.index, dst.index) {
                    (Some(qi), Some(ci)) => {
                        check_index(qi, q_size, src)?;
                        check_index(ci, c_size, dst)?;
                        push_measure(&mut circuit, q_off + qi, c_off + ci, *pos)?;
                    }
                    (None, None) => {
                        if q_size != c_size {
                            return Err(semantic(
                                *pos,
                                format!(
                                    "measure width mismatch: {} qubits -> {} bits",
                                    q_size, c_size
                                ),
                            ));
                        }
                        for k in 0..q_size {
                            push_measure(&mut circuit, q_off + k, c_off + k, *pos)?;
                        }
                    }
                    _ => {
                        return Err(semantic(
                            *pos,
                            "measure must be register->register or bit->bit".to_owned(),
                        ));
                    }
                }
            }
            Statement::Barrier { operands, pos } => {
                let mut qubits = Vec::new();
                for arg in operands {
                    let (off, size) = resolve_qreg(&regs, arg)?;
                    match arg.index {
                        Some(i) => {
                            check_index(i, size, arg)?;
                            qubits.push(off + i);
                        }
                        None => qubits.extend(off..off + size),
                    }
                }
                circuit
                    .push(Instruction::Barrier(qubits))
                    .map_err(|e| semantic(*pos, e.to_string()))?;
            }
            _ => {}
        }
    }
    Ok(circuit)
}

fn semantic(pos: Pos, message: String) -> QasmError {
    QasmError::Semantic { pos, message }
}

fn push_measure(
    circuit: &mut Circuit,
    qubit: usize,
    cbit: usize,
    pos: Pos,
) -> Result<(), QasmError> {
    circuit.push(Instruction::Measure { qubit, cbit }).map_err(|e| semantic(pos, e.to_string()))
}

fn check_index(index: usize, size: usize, arg: &Argument) -> Result<(), QasmError> {
    if index >= size {
        Err(semantic(
            arg.pos,
            format!("index {index} out of range for register {}[{size}]", arg.register),
        ))
    } else {
        Ok(())
    }
}

fn resolve_qreg(regs: &Registers, arg: &Argument) -> Result<(usize, usize), QasmError> {
    regs.qregs
        .get(&arg.register)
        .copied()
        .ok_or_else(|| semantic(arg.pos, format!("undeclared quantum register {}", arg.register)))
}

fn resolve_creg(regs: &Registers, arg: &Argument) -> Result<(usize, usize), QasmError> {
    regs.cregs
        .get(&arg.register)
        .copied()
        .ok_or_else(|| semantic(arg.pos, format!("undeclared classical register {}", arg.register)))
}

fn eval_args(
    args: &[Expr],
    pos: Pos,
    env: &dyn Fn(&str) -> Option<f64>,
) -> Result<Vec<f64>, QasmError> {
    args.iter()
        .map(|e| {
            e.eval(env).ok_or_else(|| {
                semantic(pos, "unbound parameter or unknown function in angle expression".into())
            })
        })
        .collect()
}

/// Expand whole-register operands into per-element instances (QASM
/// broadcasting: all unindexed operands iterate in lockstep; indexed
/// operands repeat).
fn broadcast(
    operands: &[Argument],
    regs: &Registers,
    pos: Pos,
) -> Result<Vec<Vec<usize>>, QasmError> {
    let mut width: Option<usize> = None;
    for arg in operands {
        let (_, size) = resolve_qreg(regs, arg)?;
        if arg.index.is_none() {
            match width {
                None => width = Some(size),
                Some(w) if w == size => {}
                Some(w) => {
                    return Err(semantic(pos, format!("broadcast width mismatch: {w} vs {size}")));
                }
            }
        }
    }
    let reps = width.unwrap_or(1);
    let mut instances = Vec::with_capacity(reps);
    for k in 0..reps {
        let mut qubits = Vec::with_capacity(operands.len());
        for arg in operands {
            let (off, size) = resolve_qreg(regs, arg)?;
            match arg.index {
                Some(i) => {
                    check_index(i, size, arg)?;
                    qubits.push(off + i);
                }
                None => qubits.push(off + k),
            }
        }
        instances.push(qubits);
    }
    Ok(instances)
}

/// Arity `(n_params, n_qubits)` of built-in gates.
fn builtin_arity(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" => (0, 1),
        "rx" | "ry" | "rz" | "u1" | "p" => (1, 1),
        "u2" => (2, 1),
        "u3" | "u" => (3, 1),
        "cx" | "CX" | "cz" | "swap" | "cy" | "ch" => (0, 2),
        "cu1" | "cp" | "crz" => (1, 2),
        "u0" => (1, 1),
        "ccx" => (0, 3),
        "cswap" => (0, 3),
        _ => return None,
    })
}

#[allow(clippy::too_many_arguments)]
fn apply_gate(
    circuit: &mut Circuit,
    name: &str,
    args: &[f64],
    qubits: &[usize],
    defs: &HashMap<String, GateDef>,
    pos: Pos,
    depth: usize,
) -> Result<(), QasmError> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(semantic(pos, format!("gate expansion too deep at {name}")));
    }
    if let Some((n_params, n_qubits)) = builtin_arity(name) {
        if args.len() != n_params {
            return Err(semantic(
                pos,
                format!("gate {name} takes {n_params} parameters, got {}", args.len()),
            ));
        }
        if qubits.len() != n_qubits {
            return Err(semantic(
                pos,
                format!("gate {name} takes {n_qubits} qubits, got {}", qubits.len()),
            ));
        }
        let push = |circuit: &mut Circuit, gate: Gate, qs: Vec<usize>| {
            circuit.push_gate(gate, qs).map_err(|e| semantic(pos, e.to_string()))
        };
        return match name {
            "id" => push(circuit, Gate::I, qubits.to_vec()),
            "x" => push(circuit, Gate::X, qubits.to_vec()),
            "y" => push(circuit, Gate::Y, qubits.to_vec()),
            "z" => push(circuit, Gate::Z, qubits.to_vec()),
            "h" => push(circuit, Gate::H, qubits.to_vec()),
            "s" => push(circuit, Gate::S, qubits.to_vec()),
            "sdg" => push(circuit, Gate::Sdg, qubits.to_vec()),
            "t" => push(circuit, Gate::T, qubits.to_vec()),
            "tdg" => push(circuit, Gate::Tdg, qubits.to_vec()),
            "rx" => push(circuit, Gate::Rx(args[0]), qubits.to_vec()),
            "ry" => push(circuit, Gate::Ry(args[0]), qubits.to_vec()),
            "rz" => push(circuit, Gate::Rz(args[0]), qubits.to_vec()),
            "u1" | "p" => push(circuit, Gate::Phase(args[0]), qubits.to_vec()),
            "u2" => push(circuit, Gate::U(FRAC_PI_2, args[0], args[1]), qubits.to_vec()),
            "u3" | "u" => push(circuit, Gate::U(args[0], args[1], args[2]), qubits.to_vec()),
            "cx" | "CX" => push(circuit, Gate::Cx, qubits.to_vec()),
            "cz" => push(circuit, Gate::Cz, qubits.to_vec()),
            "swap" => push(circuit, Gate::Swap, qubits.to_vec()),
            "cu1" | "cp" => push(circuit, Gate::Cphase(args[0]), qubits.to_vec()),
            "crz" => {
                // crz(λ) = rz(λ/2) t; cx; rz(−λ/2) t; cx
                let (c, t) = (qubits[0], qubits[1]);
                push(circuit, Gate::Rz(args[0] / 2.0), vec![t])?;
                push(circuit, Gate::Cx, vec![c, t])?;
                push(circuit, Gate::Rz(-args[0] / 2.0), vec![t])?;
                push(circuit, Gate::Cx, vec![c, t])
            }
            "cy" => {
                let (c, t) = (qubits[0], qubits[1]);
                push(circuit, Gate::Sdg, vec![t])?;
                push(circuit, Gate::Cx, vec![c, t])?;
                push(circuit, Gate::S, vec![t])
            }
            "ch" => {
                // ch = ry(−π/4) t; cx; ry(π/4) t  (H = rotation of X by −π/4 about Y)
                let (c, t) = (qubits[0], qubits[1]);
                push(circuit, Gate::Ry(-std::f64::consts::FRAC_PI_4), vec![t])?;
                push(circuit, Gate::Cx, vec![c, t])?;
                push(circuit, Gate::Ry(std::f64::consts::FRAC_PI_4), vec![t])
            }
            "u0" => push(circuit, Gate::I, qubits.to_vec()), // timed identity
            "ccx" => push(circuit, Gate::Ccx, qubits.to_vec()),
            "cswap" => {
                // Fredkin: cswap a,b,c = cx c,b; ccx a,b,c; cx c,b.
                let (a, b, c2) = (qubits[0], qubits[1], qubits[2]);
                push(circuit, Gate::Cx, vec![c2, b])?;
                push(circuit, Gate::Ccx, vec![a, b, c2])?;
                push(circuit, Gate::Cx, vec![c2, b])
            }
            _ => unreachable!("builtin_arity covered {name}"),
        };
    }

    // User-defined gate: bind formals and expand the body.
    let def = defs.get(name).ok_or_else(|| semantic(pos, format!("undefined gate {name}")))?;
    if args.len() != def.params.len() {
        return Err(semantic(
            pos,
            format!("gate {name} takes {} parameters, got {}", def.params.len(), args.len()),
        ));
    }
    if qubits.len() != def.qubits.len() {
        return Err(semantic(
            pos,
            format!("gate {name} takes {} qubits, got {}", def.qubits.len(), qubits.len()),
        ));
    }
    let param_env: HashMap<&str, f64> =
        def.params.iter().map(String::as_str).zip(args.iter().copied()).collect();
    let qubit_env: HashMap<&str, usize> =
        def.qubits.iter().map(String::as_str).zip(qubits.iter().copied()).collect();
    for stmt in &def.body {
        match stmt {
            Statement::Apply { name: inner, args: inner_args, operands, pos: inner_pos } => {
                let values = eval_args(inner_args, *inner_pos, &|p| param_env.get(p).copied())?;
                let mut mapped = Vec::with_capacity(operands.len());
                for op in operands {
                    if op.index.is_some() {
                        return Err(semantic(
                            op.pos,
                            "indexed operands are not allowed inside gate bodies".into(),
                        ));
                    }
                    let q = qubit_env.get(op.register.as_str()).ok_or_else(|| {
                        semantic(op.pos, format!("unknown qubit parameter {}", op.register))
                    })?;
                    mapped.push(*q);
                }
                apply_gate(circuit, inner, &values, &mapped, defs, *inner_pos, depth + 1)?;
            }
            Statement::Barrier { .. } => {} // barriers inside bodies are scheduling hints only
            other => {
                return Err(semantic(
                    pos,
                    format!("unsupported statement in gate body: {other:?}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn lowers_bell_program() {
        let qc = parse(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
        )
        .unwrap();
        assert_eq!(qc.n_qubits(), 2);
        assert_eq!(qc.counts().cnot, 1);
        assert_eq!(qc.counts().measure, 2);
        let s = qc.simulate().unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn broadcasts_whole_register_gates() {
        let qc = parse("qreg q[3];\nh q;\n").unwrap();
        assert_eq!(qc.counts().single, 3);
    }

    #[test]
    fn broadcasts_mixed_operands() {
        // cx q, r — lockstep broadcast across two registers.
        let qc = parse("qreg q[2];\nqreg r[2];\ncx q, r;\n").unwrap();
        assert_eq!(qc.counts().cnot, 2);
        // cx q[0], r — fixed control, iterated target.
        let qc = parse("qreg q[1];\nqreg r[2];\ncx q[0], r;\n").unwrap();
        assert_eq!(qc.counts().cnot, 2);
    }

    #[test]
    fn multiple_qregs_flatten_in_order() {
        let qc = parse("qreg a[2];\nqreg b[3];\nx b[0];\n").unwrap();
        assert_eq!(qc.n_qubits(), 5);
        let s = qc.simulate().unwrap();
        // b[0] is global qubit 2.
        assert!((s.probability(1 << 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expands_user_gate_definitions() {
        let qc = parse("qreg q[2];\ngate entangle a, b { h a; cx a, b; }\nentangle q[0], q[1];\n")
            .unwrap();
        assert_eq!(qc.counts().single, 1);
        assert_eq!(qc.counts().cnot, 1);
    }

    #[test]
    fn expands_parameterized_and_nested_definitions() {
        let qc = parse(
            "qreg q[1];\n\
             gate half_turn(theta) a { rz(theta/2) a; }\n\
             gate full(theta) a { half_turn(theta) a; half_turn(theta) a; }\n\
             full(pi) q[0];\n",
        )
        .unwrap();
        assert_eq!(qc.counts().single, 2);
        // Two rz(π/2) compose to rz(π) ~ Z up to phase.
        let mut with_h = Circuit::new("ref", 1, 0);
        with_h.h(0);
        let mut state = with_h.simulate().unwrap();
        for op in qc.gate_ops() {
            op.apply_to(&mut state).unwrap();
        }
        // H|0⟩ then Z-like phase: probabilities stay 1/2 each.
        assert!((state.probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn u2_maps_to_hadamard_family() {
        let qc = parse("qreg q[1];\nu2(0, pi) q[0];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cy_ch_crz_expansions_are_unitary_equivalents() {
        // cy |10⟩ (control q0 set) → i|11⟩ → probability 1 at |11⟩.
        let qc = parse("qreg q[2];\nx q[0];\ncy q[0], q[1];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
        // ch with control set behaves as H on target.
        let qc = parse("qreg q[2];\nx q[0];\nch q[0], q[1];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0b01) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        // crz on |11⟩ only adds phase: populations unchanged.
        let qc = parse("qreg q[2];\nx q[0];\nx q[1];\ncrz(pi/3) q[0], q[1];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_and_u0_builtins() {
        // Fredkin with control set swaps the targets: |101⟩ → |011⟩
        // (control q0, targets q1 = 0, q2 = 1).
        let qc = parse("qreg q[3];\nx q[0];\nx q[2];\ncswap q[0], q[1], q[2];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0b011) - 1.0).abs() < 1e-12);
        // Control clear: nothing moves.
        let qc = parse("qreg q[3];\nx q[2];\ncswap q[0], q[1], q[2];\n").unwrap();
        let s = qc.simulate().unwrap();
        assert!((s.probability(0b100) - 1.0).abs() < 1e-12);
        // u0 is a timed identity.
        let qc = parse("qreg q[1];\nu0(3) q[0];\n").unwrap();
        assert_eq!(qc.counts().single, 1);
        let s = qc.simulate().unwrap();
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_bit_to_bit_and_register_to_register() {
        let qc = parse("qreg q[2];\ncreg c[2];\nmeasure q[1] -> c[0];\n").unwrap();
        assert_eq!(qc.measurements(), vec![(1, 0)]);
        let err = parse("qreg q[2];\ncreg c[3];\nmeasure q -> c;\n").unwrap_err();
        assert!(err.to_string().contains("width mismatch"));
        let err = parse("qreg q[2];\ncreg c[2];\nmeasure q -> c[0];\n").unwrap_err();
        assert!(err.to_string().contains("register->register"));
    }

    #[test]
    fn semantic_errors_are_located() {
        let err = parse("qreg q[2];\nx q[5];\n").unwrap_err();
        assert_eq!(err.pos().line, 2);
        assert!(err.to_string().contains("out of range"));
        let err = parse("x q[0];\n").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
        let err = parse("qreg q[1];\nmystery q[0];\n").unwrap_err();
        assert!(err.to_string().contains("undefined gate"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse("qreg q[2];\nh q[0], q[1];\n").unwrap_err();
        assert!(err.to_string().contains("takes 1 qubits"));
        let err = parse("qreg q[1];\nrz q[0];\n").unwrap_err();
        assert!(err.to_string().contains("takes 1 parameters"));
    }

    #[test]
    fn rejects_unknown_include_and_version() {
        assert!(parse("OPENQASM 3.0;\n").is_err());
        assert!(parse("include \"other.inc\";\n").is_err());
    }

    #[test]
    fn opaque_gates_cannot_be_applied() {
        let err = parse("qreg q[1];\nopaque magic a;\nmagic q[0];\n").unwrap_err();
        assert!(matches!(err, QasmError::Unsupported { .. }));
    }

    #[test]
    fn barrier_lowers_to_instruction() {
        let qc = parse("qreg q[3];\nh q;\nbarrier q;\nh q[0];\n").unwrap();
        let layered = qc.layered().unwrap();
        assert_eq!(layered.n_layers(), 2);
    }

    #[test]
    fn duplicate_registers_are_rejected() {
        assert!(parse("qreg q[1];\nqreg q[2];\n").is_err());
        assert!(parse("creg c[1];\ncreg c[2];\n").is_err());
    }
}
