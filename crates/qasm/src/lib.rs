#![warn(missing_docs)]
//! OpenQASM 2.0 front end: lexer, parser, gate-definition expansion, and
//! lowering onto [`qsim_circuit::Circuit`].
//!
//! The paper's benchmarks come from IBM's OpenQASM suites, so a realistic
//! reproduction must consume `.qasm` sources. The supported subset is the
//! full static fragment of OpenQASM 2.0: register declarations, `qelib1`
//! built-in gates, user `gate` definitions (recursively expanded), angle
//! expressions over `pi` with the standard functions, `barrier`, and
//! terminal `measure`. Dynamic constructs (`if`, `reset`) are rejected with
//! a clear error, mirroring the paper's pipeline, which has no mid-circuit
//! control flow.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     creg c[2];
//!     h q[0];
//!     cx q[0], q[1];
//!     measure q -> c;
//! "#;
//! let circuit = qsim_qasm::parse(source)?;
//! assert_eq!(circuit.n_qubits(), 2);
//! assert_eq!(circuit.counts().cnot, 1);
//! # Ok::<(), qsim_qasm::QasmError>(())
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use ast::{Argument, Expr, GateDef, Program, Statement};
pub use error::QasmError;

use qsim_circuit::Circuit;

/// Parse an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`QasmError`] with line/column positions for lexical, syntactic,
/// and semantic failures (undeclared registers, arity mismatches,
/// out-of-range indices, unsupported dynamic constructs).
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    let program = parse_ast(source)?;
    lower::lower(&program)
}

/// Parse to the AST without lowering — useful for tooling and tests.
///
/// # Errors
///
/// Returns [`QasmError`] on lexical or syntactic failures.
pub fn parse_ast(source: &str) -> Result<Program, QasmError> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens)
}

/// Maximum include-nesting depth (guards include cycles).
const MAX_INCLUDE_DEPTH: usize = 16;

/// Parse an OpenQASM 2.0 **file**, resolving `include` statements other
/// than the built-in `qelib1.inc` against the including file's directory
/// and splicing their statements in place.
///
/// # Errors
///
/// Returns [`QasmError`] for unreadable files, include cycles (nesting
/// deeper than 16), and all [`parse`] failures.
pub fn parse_file(path: impl AsRef<std::path::Path>) -> Result<Circuit, QasmError> {
    let program = parse_ast_file(path.as_ref(), 0)?;
    lower::lower(&program)
}

fn parse_ast_file(path: &std::path::Path, depth: usize) -> Result<Program, QasmError> {
    use crate::error::Pos;
    if depth > MAX_INCLUDE_DEPTH {
        return Err(QasmError::Unsupported {
            pos: Pos::default(),
            construct: format!(
                "include nesting deeper than {MAX_INCLUDE_DEPTH} (cycle?) at {}",
                path.display()
            ),
        });
    }
    let source = std::fs::read_to_string(path).map_err(|e| QasmError::Semantic {
        pos: Pos::default(),
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    let ast = parse_ast(&source)?;
    let base = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let mut statements = Vec::with_capacity(ast.statements.len());
    for stmt in ast.statements {
        match stmt {
            Statement::Include { path: include_path, pos } if include_path != "qelib1.inc" => {
                let sub =
                    parse_ast_file(&base.join(&include_path), depth + 1).map_err(|e| match e {
                        QasmError::Semantic { message, .. } => QasmError::Semantic { pos, message },
                        other => other,
                    })?;
                statements.extend(
                    sub.statements.into_iter().filter(|s| !matches!(s, Statement::Version { .. })),
                );
            }
            other => statements.push(other),
        }
    }
    Ok(Program { statements })
}
