//! Abstract syntax tree for the supported OpenQASM 2.0 subset.

use crate::error::Pos;

/// An angle expression (evaluated at lowering time).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// The constant `pi`.
    Pi,
    /// A gate-definition formal parameter.
    Param(String),
    /// Negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
    /// Exponentiation.
    Pow(Box<Expr>, Box<Expr>),
    /// A unary function call (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
    Call(String, Box<Expr>),
}

impl Expr {
    /// Evaluate with `params` giving values for formal parameters.
    ///
    /// Returns `None` for an unbound parameter or unknown function.
    pub fn eval(&self, params: &dyn Fn(&str) -> Option<f64>) -> Option<f64> {
        Some(match self {
            Expr::Number(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => params(name)?,
            Expr::Neg(e) => -e.eval(params)?,
            Expr::Add(a, b) => a.eval(params)? + b.eval(params)?,
            Expr::Sub(a, b) => a.eval(params)? - b.eval(params)?,
            Expr::Mul(a, b) => a.eval(params)? * b.eval(params)?,
            Expr::Div(a, b) => a.eval(params)? / b.eval(params)?,
            Expr::Pow(a, b) => a.eval(params)?.powf(b.eval(params)?),
            Expr::Call(func, arg) => {
                let v = arg.eval(params)?;
                match func.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    _ => return None,
                }
            }
        })
    }
}

/// A register reference: whole register (`q`) or one element (`q[3]`).
#[derive(Clone, Debug, PartialEq)]
pub struct Argument {
    /// Register name.
    pub register: String,
    /// Element index, `None` for whole-register broadcast.
    pub index: Option<usize>,
    /// Source position (for semantic errors).
    pub pos: Pos,
}

/// A user gate definition: `gate name(params) qubits { body }`.
#[derive(Clone, Debug, PartialEq)]
pub struct GateDef {
    /// Gate name.
    pub name: String,
    /// Formal angle parameters.
    pub params: Vec<String>,
    /// Formal qubit parameters.
    pub qubits: Vec<String>,
    /// Body: gate applications over the formal names (no measure/barrier
    /// per the QASM 2.0 grammar — `barrier` inside bodies is accepted and
    /// ignored).
    pub body: Vec<Statement>,
    /// Source position.
    pub pos: Pos,
}

/// One program statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `OPENQASM 2.0;`
    Version {
        /// Declared version (must be 2.0).
        version: f64,
        /// Position.
        pos: Pos,
    },
    /// `include "...";`
    Include {
        /// Included path.
        path: String,
        /// Position.
        pos: Pos,
    },
    /// `qreg name[size];`
    QReg {
        /// Register name.
        name: String,
        /// Width.
        size: usize,
        /// Position.
        pos: Pos,
    },
    /// `creg name[size];`
    CReg {
        /// Register name.
        name: String,
        /// Width.
        size: usize,
        /// Position.
        pos: Pos,
    },
    /// A gate definition.
    Gate(GateDef),
    /// `opaque name(params) qubits;` — declared but uncallable.
    Opaque {
        /// Gate name.
        name: String,
        /// Position.
        pos: Pos,
    },
    /// A gate application `name(args) operands;`.
    Apply {
        /// Gate name.
        name: String,
        /// Angle arguments.
        args: Vec<Expr>,
        /// Qubit operands.
        operands: Vec<Argument>,
        /// Position.
        pos: Pos,
    },
    /// `measure src -> dst;`
    Measure {
        /// Measured qubit(s).
        src: Argument,
        /// Destination classical bit(s).
        dst: Argument,
        /// Position.
        pos: Pos,
    },
    /// `barrier operands;`
    Barrier {
        /// Barrier operands (empty means none were parseable — whole
        /// registers appear as unindexed arguments).
        operands: Vec<Argument>,
        /// Position.
        pos: Pos,
    },
}

/// A parsed program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_arithmetic() {
        let e = Expr::Div(Box::new(Expr::Pi), Box::new(Expr::Number(2.0)));
        assert!((e.eval(&|_| None).unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let e = Expr::Pow(Box::new(Expr::Number(2.0)), Box::new(Expr::Number(10.0)));
        assert_eq!(e.eval(&|_| None), Some(1024.0));
    }

    #[test]
    fn expr_eval_params_and_functions() {
        let e = Expr::Call("sin".into(), Box::new(Expr::Param("theta".into())));
        let val = e.eval(&|name| (name == "theta").then_some(std::f64::consts::FRAC_PI_2));
        assert!((val.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(e.eval(&|_| None), None);
        let bad = Expr::Call("frobnicate".into(), Box::new(Expr::Number(1.0)));
        assert_eq!(bad.eval(&|_| None), None);
    }

    #[test]
    fn expr_eval_negation() {
        let e = Expr::Neg(Box::new(Expr::Sub(
            Box::new(Expr::Number(1.0)),
            Box::new(Expr::Number(3.0)),
        )));
        assert_eq!(e.eval(&|_| None), Some(2.0));
    }
}
