//! File-level parsing: cross-file `include` resolution.

use std::fs;
use std::path::PathBuf;

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "qsim-qasm-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos()
        ));
        fs::create_dir_all(&path).expect("temp dir creatable");
        TempDir { path }
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let file = self.path.join(name);
        fs::write(&file, contents).expect("temp file writable");
        file
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[test]
fn includes_splice_gate_libraries() {
    let dir = TempDir::new("lib");
    dir.write("mylib.inc", "gate entangle a, b { h a; cx a, b; }\n");
    let main = dir.write(
        "main.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\ninclude \"mylib.inc\";\nqreg q[2];\ncreg c[2];\nentangle q[0], q[1];\nmeasure q -> c;\n",
    );
    let circuit = qsim_qasm::parse_file(&main).expect("include resolves");
    assert_eq!(circuit.counts().cnot, 1);
    assert_eq!(circuit.counts().single, 1);
    let state = circuit.simulate().expect("simulates");
    assert!((state.probability(0) - 0.5).abs() < 1e-9);
}

#[test]
fn nested_includes_resolve_relative_to_each_file() {
    let dir = TempDir::new("nested");
    fs::create_dir_all(dir.path.join("sub")).expect("subdir");
    dir.write("sub/inner.inc", "gate flip a { x a; }\n");
    dir.write("sub/outer.inc", "include \"inner.inc\";\ngate flip2 a { flip a; flip a; }\n");
    let main = dir.write(
        "main.qasm",
        "include \"sub/outer.inc\";\nqreg q[1];\ncreg c[1];\nflip q[0];\nflip2 q[0];\nmeasure q -> c;\n",
    );
    let circuit = qsim_qasm::parse_file(&main).expect("nested includes resolve");
    assert_eq!(circuit.counts().single, 3);
    let state = circuit.simulate().expect("simulates");
    assert!((state.probability(1) - 1.0).abs() < 1e-9); // three X = X
}

#[test]
fn include_cycles_are_cut_off() {
    let dir = TempDir::new("cycle");
    dir.write("a.inc", "include \"b.inc\";\n");
    dir.write("b.inc", "include \"a.inc\";\n");
    let main = dir.write("main.qasm", "include \"a.inc\";\nqreg q[1];\n");
    let err = qsim_qasm::parse_file(&main).unwrap_err();
    assert!(err.to_string().contains("nesting deeper"), "{err}");
}

#[test]
fn missing_include_reports_the_including_position() {
    let dir = TempDir::new("missing");
    let main = dir.write("main.qasm", "qreg q[1];\ninclude \"ghost.inc\";\n");
    let err = qsim_qasm::parse_file(&main).unwrap_err();
    assert!(err.to_string().contains("cannot read"), "{err}");
    assert_eq!(err.pos().line, 2);
}

#[test]
fn string_parse_still_rejects_foreign_includes() {
    let err = qsim_qasm::parse("include \"other.inc\";\n").unwrap_err();
    assert!(err.to_string().contains("only qelib1.inc"), "{err}");
}
