//! Emit → parse round-trip tests across the whole benchmark catalog, plus
//! fidelity checks that the parsed circuit reproduces the original states.

use qsim_circuit::{catalog, to_qasm, Circuit};

fn assert_state_equivalent(a: &Circuit, b: &Circuit) {
    let sa = a.simulate().expect("simulate original");
    let sb = b.simulate().expect("simulate roundtrip");
    assert_eq!(sa.n_qubits(), sb.n_qubits(), "{}", a.name());
    let f = sa.fidelity(&sb).expect("same width");
    assert!(f > 1.0 - 1e-9, "{}: fidelity {f}", a.name());
}

#[test]
fn catalog_roundtrips_through_qasm() {
    for qc in catalog::realistic_suite() {
        let qasm = to_qasm(&qc);
        let parsed = qsim_qasm::parse(&qasm)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}\n{qasm}", qc.name()));
        assert_eq!(parsed.n_qubits(), qc.n_qubits(), "{}", qc.name());
        assert_eq!(parsed.counts().measure, qc.counts().measure, "{}", qc.name());
        assert_state_equivalent(&qc, &parsed);
    }
}

#[test]
#[allow(clippy::excessive_precision)] // extra digits deliberately stress emission
fn roundtrip_preserves_angles_exactly() {
    let mut qc = Circuit::new("angles", 2, 0);
    qc.rz(0.123456789012345678, 0).u(1.0 / 3.0, 2.0 / 7.0, -5.0 / 11.0, 1).cphase(
        std::f64::consts::PI / 7.0,
        0,
        1,
    );
    let parsed = qsim_qasm::parse(&to_qasm(&qc)).expect("parse");
    // Gate-for-gate identical parameters after the roundtrip.
    let original: Vec<Vec<f64>> = qc.gate_ops().map(|op| op.gate.params()).collect();
    let recovered: Vec<Vec<f64>> = parsed.gate_ops().map(|op| op.gate.params()).collect();
    // cphase decomposes to cu1 which is preserved exactly too.
    assert_eq!(original, recovered);
}

#[test]
fn qft_roundtrip_after_transpilation() {
    use qsim_circuit::transpile::{transpile, TranspileOptions};
    use qsim_circuit::CouplingMap;
    let out = transpile(&catalog::qft(4), &TranspileOptions::for_device(CouplingMap::yorktown()))
        .expect("transpile");
    let parsed = qsim_qasm::parse(&to_qasm(&out.circuit)).expect("parse transpiled");
    assert_state_equivalent(&out.circuit, &parsed);
}

#[test]
fn measurement_mapping_roundtrips() {
    let mut qc = Circuit::new("meas", 3, 3);
    qc.h(0).cx(0, 2).measure(2, 0).measure(0, 2).measure(1, 1);
    let parsed = qsim_qasm::parse(&to_qasm(&qc)).expect("parse");
    assert_eq!(parsed.measurements(), qc.measurements());
}
