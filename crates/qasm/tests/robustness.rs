//! Property-based robustness: the QASM front end must never panic — any
//! input either parses or produces a positioned error — and emitted QASM
//! from random circuits must always round-trip.

use proptest::prelude::*;
use qsim_circuit::{to_qasm, Circuit};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte soup: parse must return, never panic.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = qsim_qasm::parse(&input);
    }

    /// Structured-looking garbage built from QASM tokens.
    #[test]
    fn token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("qreg".to_owned()),
                Just("creg".to_owned()),
                Just("gate".to_owned()),
                Just("measure".to_owned()),
                Just("barrier".to_owned()),
                Just("h".to_owned()),
                Just("cx".to_owned()),
                Just("q[0]".to_owned()),
                Just("q".to_owned()),
                Just("->".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(";".to_owned()),
                Just(",".to_owned()),
                Just("pi".to_owned()),
                Just("2.0".to_owned()),
                Just("include".to_owned()),
                Just("\"qelib1.inc\"".to_owned()),
            ],
            0..40,
        )
    ) {
        let source = words.join(" ");
        let _ = qsim_qasm::parse(&source);
    }

    /// Random circuits emit → parse → identical structure.
    #[test]
    fn random_circuits_roundtrip(
        ops in proptest::collection::vec((0usize..8, 0usize..4, 0usize..4, -6.3f64..6.3), 1..30)
    ) {
        let n = 4;
        let mut qc = Circuit::new("rand", n, n);
        for (kind, a, b, angle) in ops {
            let (a, b) = (a % n, b % n);
            match kind {
                0 => { qc.h(a); }
                1 => { qc.t(a); }
                2 => { qc.rz(angle, a); }
                3 => { qc.u(angle, angle / 2.0, -angle, a); }
                4 if a != b => { qc.cx(a, b); }
                5 if a != b => { qc.cz(a, b); }
                6 if a != b => { qc.cphase(angle, a, b); }
                _ => { qc.x(a); }
            }
        }
        qc.measure_all();
        let parsed = qsim_qasm::parse(&to_qasm(&qc)).expect("emitted QASM parses");
        prop_assert_eq!(parsed.n_qubits(), qc.n_qubits());
        prop_assert_eq!(parsed.counts().measure, qc.counts().measure);
        // Gate-for-gate identity (names + operands + parameters).
        let sig = |c: &Circuit| -> Vec<(String, Vec<usize>, Vec<u64>)> {
            c.gate_ops()
                .map(|op| {
                    (
                        op.gate.name().to_owned(),
                        op.qubits.clone(),
                        op.gate.params().iter().map(|p| p.to_bits()).collect(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(sig(&parsed), sig(&qc));
    }

    /// The lowered circuit's noiseless state matches the original exactly.
    #[test]
    fn roundtrip_preserves_quantum_state(
        seed_gates in proptest::collection::vec((0usize..4, 0usize..3, -3.0f64..3.0), 1..12)
    ) {
        let n = 3;
        let mut qc = Circuit::new("rt", n, 0);
        for (kind, q, angle) in seed_gates {
            match kind {
                0 => { qc.h(q); }
                1 => { qc.ry(angle, q); }
                2 => { qc.cx(q, (q + 1) % n); }
                _ => { qc.cphase(angle, q, (q + 1) % n); }
            }
        }
        let parsed = qsim_qasm::parse(&to_qasm(&qc)).expect("emitted QASM parses");
        let a = qc.simulate().expect("original simulates");
        let b = parsed.simulate().expect("roundtrip simulates");
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((x - y).norm() < 1e-12);
        }
    }
}

/// Deliberately nasty deterministic inputs.
#[test]
fn adversarial_corpus_is_handled() {
    let cases = [
        "",
        ";;;",
        "OPENQASM 2.0",                  // missing semicolon
        "qreg q[99999999999999999999];", // overflow literal
        "gate g a { g a; }",             // self-recursive definition
        "qreg q[1]; g q[0];",
        "rz() q[0];",
        "rz(1/0) q[0];",   // division by zero → inf angle
        "qreg q[0]; h q;", // empty register broadcast
        "measure -> ;",
        "gate x a { }", // shadowing a builtin
        "include \"qelib1.inc\"; include \"qelib1.inc\";",
        "qreg q[2]; cx q[0], q[0];",
        "OPENQASM 2.0; qreg q[1]; u3(pi, pi, q[0];",
    ];
    for source in cases {
        // Must not panic; error or success both fine.
        let _ = qsim_qasm::parse(source);
    }
    // Self-recursive gate usage must be caught, not loop forever.
    let err = qsim_qasm::parse("qreg q[1]; gate g a { g a; } g q[0];");
    assert!(err.is_err());
    // Duplicate-operand CX is a semantic error.
    assert!(qsim_qasm::parse("qreg q[2]; cx q[0], q[0];").is_err());
}
