//! The canonical `adder.qasm` example from the OpenQASM 2.0 specification
//! (Cross et al., arXiv:1707.03429): a Cuccaro ripple-carry adder built
//! from user-defined `majority`/`unmaj` gates. Parsing, expanding, and
//! simulating it correctly exercises most of the front end at once.

const ADDER_QASM: &str = r#"
// quantum ripple-carry adder from Cuccaro et al, quant-ph/0410184
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate unmaj a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
// set input states
x a[0]; // a = 0001
x b;    // b = 1111
// add a to b, storing result in b
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
majority a[1],b[2],a[2];
majority a[2],b[3],a[3];
cx a[3],cout[0];
unmaj a[2],b[3],a[3];
unmaj a[1],b[2],a[2];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
"#;

#[test]
fn spec_adder_parses_and_computes_one_plus_fifteen() {
    let circuit = qsim_qasm::parse(ADDER_QASM).expect("the spec example parses");
    assert_eq!(circuit.n_qubits(), 10);
    assert_eq!(circuit.n_cbits(), 5);
    // 8 majority/unmaj calls × 3 gates + 1 cx + 5 x-prep.
    let counts = circuit.counts();
    assert_eq!(counts.measure, 5);
    assert_eq!(counts.cnot + counts.other_multi + counts.single, 8 * 3 + 1 + 5);

    // a=1, b=15 → ans = 16 = 0b10000.
    let state = circuit.simulate().expect("simulates");
    let measurements = circuit.measurements();
    let (best, p) = state
        .probabilities()
        .into_iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    assert!((p - 1.0).abs() < 1e-9, "adder output not deterministic: {p}");
    let mut answer = 0usize;
    for &(qubit, cbit) in &measurements {
        if best >> qubit & 1 == 1 {
            answer |= 1 << cbit;
        }
    }
    assert_eq!(answer, 16, "1 + 15 must equal 16");
}

#[test]
fn spec_adder_transpiles_to_a_ten_qubit_line() {
    use qsim_circuit::transpile::{transpile, TranspileOptions};
    use qsim_circuit::CouplingMap;
    let circuit = qsim_qasm::parse(ADDER_QASM).expect("parses");
    let out = transpile(&circuit, &TranspileOptions::for_device(CouplingMap::linear(10)))
        .expect("routes onto a 10-qubit chain");
    assert_eq!(out.circuit.counts().other_multi, 0);
    // The routed adder still adds: equivalence via measured distribution.
    assert!(qsim_circuit::equiv::distributions_equivalent(&circuit, &out.circuit, 1e-9)
        .expect("same classical register"));
}

#[test]
fn spec_adder_other_inputs() {
    // Swap the preparation to a=3, b=5 → 8.
    let modified = ADDER_QASM
        .replace("x a[0]; // a = 0001", "x a[0]; x a[1];")
        .replace("x b;    // b = 1111", "x b[0]; x b[2];");
    let circuit = qsim_qasm::parse(&modified).expect("parses");
    let state = circuit.simulate().expect("simulates");
    let (best, p) = state
        .probabilities()
        .into_iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty");
    assert!((p - 1.0).abs() < 1e-9);
    let mut answer = 0usize;
    for &(qubit, cbit) in &circuit.measurements() {
        if best >> qubit & 1 == 1 {
            answer |= 1 << cbit;
        }
    }
    assert_eq!(answer, 8, "3 + 5 must equal 8");
}
