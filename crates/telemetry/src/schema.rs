//! Schema validation for JSONL traces.
//!
//! A trace is one JSON object per line: a `meta` header followed by
//! `span` / `kernel` / `counter` / `msv` / `cache` / `heartbeat` events.
//! The validator
//! parses each line with a small built-in JSON reader (flat objects of
//! strings, integers, and booleans — exactly what [`crate::JsonlRecorder`]
//! emits) and checks the per-event field schema, so CI can prove a
//! `--trace` artifact well-formed without external dependencies.

use std::collections::BTreeMap;

use crate::recorder::{KernelClass, MsvEvent};

/// A parsed flat JSON value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Bool(bool),
}

/// Parse one flat JSON object (string/integer/boolean values only).
fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let mut fields = BTreeMap::new();
    let err = |at: usize, what: &str| format!("offset {at}: {what}");

    let expect =
        |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>, want: char| match chars.next()
        {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(format!("offset {at}: expected '{want}', found '{c}'")),
            None => Err(format!("unexpected end of line (expected '{want}')")),
        };
    let parse_string = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        expect(chars, '"')?;
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((at, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 't')) => s.push('\t'),
                    _ => return Err(err(at, "unsupported escape")),
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".to_owned()),
            }
        }
    };

    expect(&mut chars, '{')?;
    if chars.peek().is_some_and(|&(_, c)| c == '}') {
        chars.next();
    } else {
        loop {
            let key = parse_string(&mut chars)?;
            expect(&mut chars, ':')?;
            let value = match chars.peek() {
                Some(&(_, '"')) => Value::Str(parse_string(&mut chars)?),
                Some(&(_, 't')) | Some(&(_, 'f')) => {
                    let mut word = String::new();
                    while chars.peek().is_some_and(|&(_, c)| c.is_ascii_alphabetic()) {
                        word.push(chars.next().expect("peeked").1);
                    }
                    match word.as_str() {
                        "true" => Value::Bool(true),
                        "false" => Value::Bool(false),
                        other => return Err(format!("bad literal {other:?}")),
                    }
                }
                Some(&(at, c)) if c.is_ascii_digit() => {
                    let mut digits = String::new();
                    while chars.peek().is_some_and(|&(_, c)| c.is_ascii_digit()) {
                        digits.push(chars.next().expect("peeked").1);
                    }
                    Value::Int(digits.parse().map_err(|_| err(at, "integer out of range"))?)
                }
                Some(&(at, c)) => return Err(format!("offset {at}: unexpected value start '{c}'")),
                None => return Err("unexpected end of line (expected value)".to_owned()),
            };
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                Some((at, c)) => {
                    return Err(err(at, &format!("expected ',' or '}}', found '{c}'")))
                }
                None => return Err("unterminated object".to_owned()),
            }
        }
    }
    if let Some((at, c)) = chars.next() {
        return Err(err(at, &format!("trailing content starting with '{c}'")));
    }
    Ok(fields)
}

fn str_field<'a>(fields: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a str, String> {
    match fields.get(key) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn int_field(fields: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    match fields.get(key) {
        Some(Value::Int(n)) => Ok(*n),
        Some(_) => Err(format!("field {key:?} must be an unsigned integer")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn bool_field(fields: &BTreeMap<String, Value>, key: &str) -> Result<bool, String> {
    match fields.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field {key:?} must be a boolean")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn check_exact_keys(fields: &BTreeMap<String, Value>, allowed: &[&str]) -> Result<(), String> {
    for key in fields.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unexpected field {key:?}"));
        }
    }
    Ok(())
}

/// Validate one trace line against the event schema.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let fields = parse_object(line)?;
    match str_field(&fields, "ev")? {
        "meta" => {
            check_exact_keys(&fields, &["ev", "version", "git_rev", "seed", "qubits", "strategy"])?;
            let version = int_field(&fields, "version")?;
            if version != crate::jsonl::TRACE_VERSION {
                return Err(format!("unsupported trace version {version}"));
            }
            str_field(&fields, "git_rev")?;
            int_field(&fields, "seed")?;
            int_field(&fields, "qubits")?;
            str_field(&fields, "strategy")?;
        }
        "span" => {
            check_exact_keys(&fields, &["ev", "path", "start_ns", "end_ns"])?;
            str_field(&fields, "path")?;
            let start = int_field(&fields, "start_ns")?;
            let end = int_field(&fields, "end_ns")?;
            if end < start {
                return Err(format!("span ends ({end}) before it starts ({start})"));
            }
        }
        "kernel" => {
            check_exact_keys(&fields, &["ev", "phase", "class", "layer", "count", "ns"])?;
            str_field(&fields, "phase")?;
            let class = str_field(&fields, "class")?;
            if KernelClass::from_name(class).is_none() {
                return Err(format!("unknown kernel class {class:?}"));
            }
            int_field(&fields, "layer")?;
            int_field(&fields, "count")?;
            int_field(&fields, "ns")?;
        }
        "counter" => {
            check_exact_keys(&fields, &["ev", "name", "delta"])?;
            str_field(&fields, "name")?;
            int_field(&fields, "delta")?;
        }
        "msv" => {
            check_exact_keys(&fields, &["ev", "kind", "depth", "residency"])?;
            let kind = str_field(&fields, "kind")?;
            if !MsvEvent::ALL.iter().any(|e| e.name() == kind) {
                return Err(format!("unknown msv event kind {kind:?}"));
            }
            int_field(&fields, "depth")?;
            int_field(&fields, "residency")?;
        }
        "cache" => {
            check_exact_keys(&fields, &["ev", "depth", "hit"])?;
            int_field(&fields, "depth")?;
            bool_field(&fields, "hit")?;
        }
        "heartbeat" => {
            check_exact_keys(&fields, &["ev", "completed", "depth", "resident"])?;
            int_field(&fields, "completed")?;
            int_field(&fields, "depth")?;
            int_field(&fields, "resident")?;
        }
        other => return Err(format!("unknown event type {other:?}")),
    }
    Ok(())
}

/// Validate a whole JSONL trace: the first line must be the `meta` header,
/// every following non-empty line a valid event.
///
/// # Errors
///
/// Returns `line number (1-based) + description` of the first violation.
pub fn validate_jsonl(text: &str) -> Result<(), String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    match lines.next() {
        Some((index, line)) => {
            validate_line(line).map_err(|e| format!("line {}: {e}", index + 1))?;
            if !line.contains("\"ev\":\"meta\"") {
                return Err(format!("line {}: trace must start with the meta header", index + 1));
            }
        }
        None => return Err("empty trace".to_owned()),
    }
    for (index, line) in lines {
        validate_line(line).map_err(|e| format!("line {}: {e}", index + 1))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "{\"ev\":\"meta\",\"version\":2,\"git_rev\":\"abc1234\",\"seed\":1,\
                        \"qubits\":4,\"strategy\":\"reuse\"}";

    #[test]
    fn accepts_every_event_shape() {
        for line in [
            META,
            "{\"ev\":\"span\",\"path\":\"run/reuse\",\"start_ns\":5,\"end_ns\":9}",
            "{\"ev\":\"kernel\",\"phase\":\"reuse/shared\",\"class\":\"cx\",\"layer\":3,\"count\":2,\"ns\":77}",
            "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":3}",
            "{\"ev\":\"msv\",\"kind\":\"fork\",\"depth\":1,\"residency\":2}",
            "{\"ev\":\"cache\",\"depth\":0,\"hit\":true}",
            "{\"ev\":\"cache\",\"depth\":4,\"hit\":false}",
            "{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":2,\"resident\":1024}",
        ] {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for (line, fragment) in [
            ("not json", "expected '{'"),
            ("{\"ev\":\"nope\"}", "unknown event type"),
            ("{\"ev\":\"counter\",\"name\":\"ops\"}", "missing field \"delta\""),
            ("{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":-1}", "unexpected value start"),
            ("{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":1,\"extra\":2}", "unexpected field"),
            (
                "{\"ev\":\"kernel\",\"phase\":\"p\",\"class\":\"warp\",\"layer\":0,\"count\":1,\"ns\":1}",
                "unknown kernel class",
            ),
            (
                "{\"ev\":\"kernel\",\"phase\":\"p\",\"class\":\"cx\",\"count\":1,\"ns\":1}",
                "missing field \"layer\"",
            ),
            ("{\"ev\":\"msv\",\"kind\":\"zap\",\"depth\":0,\"residency\":1}", "unknown msv event"),
            ("{\"ev\":\"span\",\"path\":\"p\",\"start_ns\":9,\"end_ns\":5}", "before it starts"),
            ("{\"ev\":\"cache\",\"depth\":0,\"hit\":1}", "must be a boolean"),
            ("{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":0}", "missing field \"resident\""),
            (
                "{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":0,\"resident\":0,\"x\":1}",
                "unexpected field",
            ),
            (
                "{\"ev\":\"meta\",\"version\":99,\"git_rev\":\"x\",\"seed\":0,\"qubits\":0,\"strategy\":\"s\"}",
                "unsupported trace version",
            ),
            ("{\"ev\":\"meta\",\"version\":2}", "missing field \"git_rev\""),
            ("{\"ev\":\"meta\",\"version\":1} trailing", "trailing content"),
            ("{\"ev\":\"meta\",\"ev\":\"meta\",\"version\":1}", "duplicate key"),
        ] {
            let err = validate_line(line).expect_err(line);
            assert!(err.contains(fragment), "{line}: got {err:?}, wanted {fragment:?}");
        }
    }

    #[test]
    fn whole_trace_validation_pins_line_numbers() {
        let good = format!("{META}\n{{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":1}}\n");
        let good = good.as_str();
        validate_jsonl(good).unwrap();
        let bad = format!("{good}{{\"ev\":\"bogus\"}}\n");
        let err = validate_jsonl(&bad).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        let headerless = "{\"ev\":\"counter\",\"name\":\"ops\",\"delta\":1}\n";
        let err = validate_jsonl(headerless).unwrap_err();
        assert!(err.contains("meta header"), "{err}");
        assert!(validate_jsonl("").unwrap_err().contains("empty trace"));
    }
}
