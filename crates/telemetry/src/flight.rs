//! The flight recorder: a lock-free bounded ring buffer retaining the most
//! recent instrumentation events.
//!
//! A [`FlightRecorder`] is the "black box" of a run: it keeps the newest
//! `N` events in fixed storage with near-zero overhead (one atomic
//! increment plus a handful of relaxed word stores per event, no
//! allocation, no locks), counting everything it had to overwrite. Tee it
//! with another recorder to keep a crash-dump tail alongside full
//! aggregation, or use it alone when only the last moments of a run
//! matter.
//!
//! Concurrency model: writers claim a monotonically increasing sequence
//! number, map it onto a slot, and publish the slot's payload under a
//! per-slot seqlock tag (the claimed sequence number itself, which is
//! unique for the life of the recorder — so a reader that observes the
//! same tag before and after reading the payload words has read exactly
//! that event's words). A writer that catches a slot mid-write backs off
//! and counts a contention drop instead of spinning, keeping the hot path
//! wait-free.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::clock::Clock;
use crate::recorder::{Heartbeat, KernelClass, MsvEvent, Recorder};

/// Tag value marking a slot whose payload is mid-write.
const WRITING: u64 = u64::MAX;

/// Payload words per slot: event kind, timestamp, and up to six
/// event-specific words (the kernel event is the widest).
const WORDS: usize = 8;

const KIND_SPAN: u64 = 0;
const KIND_KERNEL: u64 = 1;
const KIND_COUNTER: u64 = 2;
const KIND_MSV: u64 = 3;
const KIND_CACHE: u64 = 4;
const KIND_HEARTBEAT: u64 = 5;

/// One decoded flight-recorder event, timestamped on the recorder's clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// When the event was recorded, in nanoseconds since the recorder was
    /// created.
    pub at_ns: u64,
    /// The event payload.
    pub kind: FlightEventKind,
}

/// The payload of one flight-recorder event — the [`Recorder`] vocabulary,
/// verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A named execution span.
    Span {
        /// Span path (`"run/reuse"`).
        path: &'static str,
        /// Span start on the recorder's clock.
        start_ns: u64,
        /// Span end on the recorder's clock.
        end_ns: u64,
    },
    /// Kernel application(s).
    Kernel {
        /// Execution phase (`"reuse/shared"`).
        phase: &'static str,
        /// Kernel class.
        class: KernelClass,
        /// Circuit layer the work ended on.
        layer: u64,
        /// Applications batched into this event.
        count: u64,
        /// Total nanoseconds spent.
        ns: u64,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// An MSV lifecycle event.
    Msv {
        /// Event kind.
        event: MsvEvent,
        /// Prefix-trie depth.
        depth: u64,
        /// Live MSVs after the event.
        residency: u64,
    },
    /// A per-trial prefix-cache lookup.
    Cache {
        /// Reused-injection depth the lookup resolved at.
        depth: u64,
        /// Whether a cached frontier was reused.
        hit: bool,
    },
    /// A progress heartbeat.
    Heartbeat(Heartbeat),
}

/// One ring slot: a seqlock tag plus the payload words it guards.
#[derive(Debug)]
struct Slot {
    /// `0` = never written, [`WRITING`] = mid-write, otherwise
    /// `sequence + 1` of the event the payload words describe.
    tag: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { tag: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A lock-free bounded ring buffer retaining the newest `N` events (see
/// the module docs above).
#[derive(Debug)]
pub struct FlightRecorder {
    clock: Clock,
    slots: Vec<Slot>,
    /// Next sequence number to claim == total events ever recorded.
    next: AtomicU64,
    /// Events abandoned because their slot was caught mid-write.
    contended: AtomicU64,
}

impl FlightRecorder {
    /// A flight recorder retaining the newest `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            clock: Clock::new(),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever offered to this recorder.
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events no longer retrievable: everything overwritten by newer
    /// events plus writes abandoned under slot contention.
    pub fn dropped(&self) -> u64 {
        let wrapped = self.recorded().saturating_sub(self.capacity() as u64);
        wrapped + self.contended.load(Ordering::Relaxed)
    }

    /// Decode the retained events, oldest first. Events whose slot is
    /// mid-overwrite at read time are skipped (they are being replaced by
    /// newer ones); with no concurrent writers this returns exactly the
    /// newest `min(recorded, capacity)` events.
    pub fn events(&self) -> Vec<FlightEvent> {
        let total = self.recorded();
        let cap = self.capacity() as u64;
        let first = total.saturating_sub(cap);
        let mut out = Vec::with_capacity((total - first) as usize);
        for seq in first..total {
            let slot = &self.slots[(seq % cap) as usize];
            let expected = seq + 1;
            if slot.tag.load(Ordering::Acquire) != expected {
                continue;
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Seqlock read validation: the tag is unique to `seq` for the
            // recorder's whole life, so matching before and after proves
            // the words belong to exactly this event.
            fence(Ordering::Acquire);
            if slot.tag.load(Ordering::Relaxed) != expected {
                continue;
            }
            if let Some(event) = decode(&words) {
                out.push(event);
            }
        }
        out
    }

    /// Record one event's words. Wait-free: a slot caught mid-write drops
    /// the new event instead of spinning.
    fn record(&self, kind: u64, payload: [u64; WORDS - 2]) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.capacity() as u64) as usize];
        if slot.tag.swap(WRITING, Ordering::Relaxed) == WRITING {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Order the claim before the payload stores so a reader holding
        // the old tag can never observe the new words.
        fence(Ordering::Release);
        slot.words[0].store(kind, Ordering::Relaxed);
        slot.words[1].store(self.clock.now_ns(), Ordering::Relaxed);
        for (word, value) in slot.words[2..].iter().zip(payload) {
            word.store(value, Ordering::Relaxed);
        }
        slot.tag.store(seq + 1, Ordering::Release);
    }
}

/// Pack a `&'static str` as a (pointer, length) word pair. Only `'static`
/// strings enter the ring (every [`Recorder`] string parameter is
/// `&'static str`), which is what makes decoding sound.
fn pack_str(s: &'static str) -> (u64, u64) {
    (s.as_ptr() as usize as u64, s.len() as u64)
}

/// Recover a `&'static str` packed by [`pack_str`].
fn unpack_str(ptr: u64, len: u64) -> Option<&'static str> {
    if ptr == 0 {
        return None;
    }
    // SAFETY: the (ptr, len) pair was produced by `pack_str` from a live
    // `&'static str`, and the seqlock tag check in `events` guarantees
    // both words come from the same event, so the pair addresses the
    // original static UTF-8 buffer for the program's whole life.
    let bytes = unsafe { std::slice::from_raw_parts(ptr as usize as *const u8, len as usize) };
    // SAFETY: the bytes are the original `&'static str`'s, hence UTF-8.
    Some(unsafe { std::str::from_utf8_unchecked(bytes) })
}

fn decode(words: &[u64; WORDS]) -> Option<FlightEvent> {
    let at_ns = words[1];
    let kind = match words[0] {
        KIND_SPAN => FlightEventKind::Span {
            path: unpack_str(words[2], words[3])?,
            start_ns: words[4],
            end_ns: words[5],
        },
        KIND_KERNEL => FlightEventKind::Kernel {
            phase: unpack_str(words[2], words[3])?,
            class: *KernelClass::ALL.get(words[4] as usize)?,
            layer: words[5],
            count: words[6],
            ns: words[7],
        },
        KIND_COUNTER => {
            FlightEventKind::Counter { name: unpack_str(words[2], words[3])?, delta: words[4] }
        }
        KIND_MSV => FlightEventKind::Msv {
            event: *MsvEvent::ALL.get(words[2] as usize)?,
            depth: words[3],
            residency: words[4],
        },
        KIND_CACHE => FlightEventKind::Cache { depth: words[2], hit: words[3] != 0 },
        KIND_HEARTBEAT => FlightEventKind::Heartbeat(Heartbeat {
            completed: words[2],
            depth: words[3],
            resident_bytes: words[4],
        }),
        _ => return None,
    };
    Some(FlightEvent { at_ns, kind })
}

fn class_index(class: KernelClass) -> u64 {
    KernelClass::ALL.iter().position(|&c| c == class).expect("class listed in ALL") as u64
}

fn msv_index(event: MsvEvent) -> u64 {
    MsvEvent::ALL.iter().position(|&e| e == event).expect("event listed in ALL") as u64
}

impl Recorder for FlightRecorder {
    /// The flight ring is a liveness sink, not a profiler: it declines
    /// per-kernel timing so fused advances report one batched event
    /// instead of paying two clock reads per op.
    fn kernel_timing(&self) -> bool {
        false
    }

    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        let (ptr, len) = pack_str(path);
        self.record(KIND_SPAN, [ptr, len, start_ns, end_ns, 0, 0]);
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, layer: u64, count: u64, ns: u64) {
        let (ptr, len) = pack_str(phase);
        self.record(KIND_KERNEL, [ptr, len, class_index(class), layer, count, ns]);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let (ptr, len) = pack_str(name);
        self.record(KIND_COUNTER, [ptr, len, delta, 0, 0, 0]);
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.record(KIND_MSV, [msv_index(event), depth as u64, residency as u64, 0, 0, 0]);
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.record(KIND_CACHE, [depth as u64, u64::from(hit), 0, 0, 0, 0]);
    }

    fn heartbeat(&self, hb: Heartbeat) {
        self.record(KIND_HEARTBEAT, [hb.completed, hb.depth, hb.resident_bytes, 0, 0, 0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_below_capacity() {
        let flight = FlightRecorder::with_capacity(16);
        flight.counter("ops", 1);
        flight.kernel("reuse/shared", KernelClass::Cx, 3, 2, 50);
        flight.msv(MsvEvent::Fork, 1, 2);
        flight.cache(1, true);
        flight.span("run/reuse", 0, 99);
        flight.heartbeat(Heartbeat { completed: 1, depth: 2, resident_bytes: 256 });
        assert_eq!(flight.recorded(), 6);
        assert_eq!(flight.dropped(), 0);
        let events = flight.events();
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].kind, FlightEventKind::Counter { name: "ops", delta: 1 });
        assert_eq!(
            events[1].kind,
            FlightEventKind::Kernel {
                phase: "reuse/shared",
                class: KernelClass::Cx,
                layer: 3,
                count: 2,
                ns: 50
            }
        );
        assert_eq!(
            events[2].kind,
            FlightEventKind::Msv { event: MsvEvent::Fork, depth: 1, residency: 2 }
        );
        assert_eq!(events[3].kind, FlightEventKind::Cache { depth: 1, hit: true });
        assert_eq!(
            events[4].kind,
            FlightEventKind::Span { path: "run/reuse", start_ns: 0, end_ns: 99 }
        );
        assert_eq!(
            events[5].kind,
            FlightEventKind::Heartbeat(Heartbeat { completed: 1, depth: 2, resident_bytes: 256 })
        );
    }

    #[test]
    fn wrap_around_retains_newest_and_counts_drops_exactly() {
        let flight = FlightRecorder::with_capacity(8);
        for delta in 0..100u64 {
            flight.counter("ops", delta);
        }
        assert_eq!(flight.recorded(), 100);
        assert_eq!(flight.dropped(), 92, "drops == recorded - capacity");
        let events = flight.events();
        assert_eq!(events.len(), 8, "exactly the newest capacity events retained");
        for (i, event) in events.iter().enumerate() {
            assert_eq!(
                event.kind,
                FlightEventKind::Counter { name: "ops", delta: 92 + i as u64 },
                "oldest-to-newest order"
            );
        }
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let flight = FlightRecorder::with_capacity(0);
        assert_eq!(flight.capacity(), 1);
        flight.counter("ops", 7);
        flight.counter("ops", 8);
        assert_eq!(flight.dropped(), 1);
        let events = flight.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FlightEventKind::Counter { name: "ops", delta: 8 });
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        use std::sync::Arc;
        let flight = Arc::new(FlightRecorder::with_capacity(32));
        let names: [&'static str; 4] = ["alpha", "beta", "gamma", "delta_counter"];
        std::thread::scope(|scope| {
            for (t, name) in names.iter().enumerate() {
                let flight = Arc::clone(&flight);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        flight.counter(name, t as u64 * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(flight.recorded(), 2000);
        let events = flight.events();
        assert!(events.len() <= 32);
        for event in events {
            // Every surviving event must be one that some writer actually
            // emitted: a known name whose delta encodes that name's thread.
            let FlightEventKind::Counter { name, delta } = event.kind else {
                panic!("unexpected event {event:?}");
            };
            let t = names.iter().position(|&n| n == name).expect("known name");
            assert_eq!(delta / 1000, t as u64, "delta belongs to the thread that owns {name}");
            assert!(delta % 1000 < 500);
        }
        // Everything not retained is accounted for as a drop (wrap or
        // contention), never silently lost.
        assert!(flight.dropped() >= flight.recorded() - flight.events().len() as u64);
    }
}
