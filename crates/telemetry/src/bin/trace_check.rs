//! Validate a JSONL trace file against the telemetry schema.
//!
//! Usage: `trace-check <trace.jsonl>...` — exits non-zero (printing the
//! first violation with its line number) if any file is malformed. CI runs
//! this over the traces produced by `qsim --trace`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match qsim_telemetry::schema::validate_jsonl(&text) {
            Ok(()) => {
                let events = text.lines().filter(|l| !l.trim().is_empty()).count();
                println!("{path}: ok ({events} lines)");
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
