//! Monotonic timestamps for recorders.

use std::time::Instant;

/// A monotonic clock anchored at its creation instant. All timestamps a
/// recorder emits are nanoseconds since its clock's origin, so events from
/// one run share a common, strictly non-decreasing time base regardless of
/// wall-clock adjustments.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// A clock anchored now.
    pub fn new() -> Self {
        Clock { origin: Instant::now() }
    }

    /// Nanoseconds elapsed since the origin (saturating at `u64::MAX`,
    /// ~584 years).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_monotonic() {
        let clock = Clock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
