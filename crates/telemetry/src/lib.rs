#![warn(missing_docs)]
//! Runtime telemetry for the noisy-simulation executors: structured
//! tracing, per-kernel-class timing, and cache-lifecycle profiling.
//!
//! The paper's claim is a *runtime* phenomenon — prefix-state reuse
//! eliminating the bulk of gate applications while only a handful of
//! maintained state vectors (MSVs) are alive — but executors only report
//! coarse end-of-run totals. This crate provides the observation plane:
//!
//! * [`Recorder`] — the span/kernel/counter/lifecycle sink trait every
//!   executor is instrumented against. Implementations take `&self` (they
//!   synchronize internally) so one recorder can serve all worker threads
//!   of a parallel run.
//! * [`NullRecorder`] — the default. Its [`Recorder::enabled`] returns
//!   `false` and every instrumentation site guards on that flag, so the
//!   monomorphized fast path compiles the telemetry out (overhead is
//!   budget-gated by the `telemetry` bench).
//! * [`AggregatingRecorder`] — in-memory aggregation: saturating counters,
//!   log₂ timing histograms per `(phase, kernel class)`, span totals, MSV
//!   residency tracking, and per-depth prefix-cache hit rates. Snapshots
//!   render as a Prometheus-style text page, JSON, or folded stacks for
//!   flamegraph tooling (see [`MetricsReport`]).
//! * [`JsonlRecorder`] — a buffered streaming sink writing one JSON object
//!   per event line; [`schema`] validates such traces (used by tests and
//!   the `trace-check` binary in CI).
//! * [`TeeRecorder`] — fan out one instrumentation stream to two sinks
//!   (e.g. aggregate *and* trace in the same run).
//! * [`FlightRecorder`] — a lock-free bounded ring buffer retaining the
//!   newest N events with drop-counting: the "black box" of a run, cheap
//!   enough to leave on everywhere.
//! * [`LiveRecorder`] / [`LivePublisher`] — the live plane: all-atomic
//!   in-flight aggregation of progress [`Heartbeat`]s and counters into a
//!   versioned [`LiveSnapshot`], atomically published as `live.json` +
//!   Prometheus text for `qsim top` and CI to tail.
//!
//! The crate is intentionally dependency-free (std only) and knows nothing
//! about circuits or states: executors translate their domain events into
//! the small vocabulary of [`KernelClass`] / [`MsvEvent`] / named counters.
//! The contract that makes telemetry trustworthy is *exactness*: the
//! `ops`, `fused_ops` and `amplitude_passes` counters and the peak MSV
//! residency recorded by an executor must equal its `ExecStats` — the
//! integration suite asserts this across every shipped benchmark.

mod aggregate;
mod clock;
mod flight;
mod jsonl;
mod live;
pub mod names;
mod recorder;
pub mod schema;

pub use aggregate::{AggregatingRecorder, CacheDepthStat, KernelStat, MetricsReport, SpanStat};
pub use clock::Clock;
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use jsonl::{JsonlRecorder, TraceMeta, TRACE_VERSION};
pub use live::{LivePublisher, LiveRecorder, LiveSnapshot, LIVE_VERSION};
pub use recorder::{Heartbeat, KernelClass, MsvEvent, NullRecorder, Recorder, TeeRecorder};
