//! Buffered JSONL trace sink: one JSON object per line, validated by
//! [`crate::schema`].

use std::io::Write;
use std::sync::Mutex;

use crate::recorder::{KernelClass, MsvEvent, Recorder};
use crate::Clock;

/// Flush the line buffer to the writer once it exceeds this size.
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// Trace format version stamped into the meta line.
///
/// Version history:
/// - 1: meta line carried only `version`.
/// - 2: meta line carries run metadata (`git_rev`, `seed`, `qubits`,
///   `strategy`); kernel events carry a `layer` field.
pub const TRACE_VERSION: u64 = 2;

/// Run metadata stamped into the first (meta) line of every trace, so a
/// trace file is self-describing: which revision produced it, under which
/// seed, on how many qubits, and with which execution strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Git revision of the producing build (`"unknown"` when undetectable).
    pub git_rev: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Qubit count of the simulated circuit.
    pub qubits: u64,
    /// Execution strategy name (`"baseline"`, `"reuse"`, ...).
    pub strategy: String,
}

impl Default for TraceMeta {
    fn default() -> Self {
        TraceMeta {
            git_rev: "unknown".to_owned(),
            seed: 0,
            qubits: 0,
            strategy: "unknown".to_owned(),
        }
    }
}

/// Escape a metadata string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// The destination a [`Sink`] drains into. Files are kept as a distinct
/// variant so the drop guard can `sync_all` them: a trace interrupted by a
/// panic must still reach the disk, not just the OS page cache.
enum SinkWriter {
    Stream(Box<dyn Write + Send>),
    File(std::io::BufWriter<std::fs::File>),
}

impl SinkWriter {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            SinkWriter::Stream(w) => w.write_all(bytes),
            SinkWriter::File(w) => w.write_all(bytes),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SinkWriter::Stream(w) => w.flush(),
            SinkWriter::File(w) => w.flush(),
        }
    }

    /// Flush, then force file sinks through to stable storage.
    fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        match self {
            SinkWriter::Stream(_) => Ok(()),
            SinkWriter::File(w) => w.get_ref().sync_all(),
        }
    }
}

struct Sink {
    buffer: String,
    writer: SinkWriter,
    error: Option<std::io::Error>,
}

/// A streaming recorder writing one JSON event object per line. Events are
/// buffered in memory and flushed in large chunks; [`Recorder::flush`]
/// drains the buffer. Dropping the recorder — including during a panic or
/// on an interrupted run — drains the buffered tail and syncs file sinks
/// to disk, so the trace is never silently truncated. I/O errors are
/// sticky and surface on the next explicit flush.
pub struct JsonlRecorder {
    clock: Clock,
    sink: Mutex<Sink>,
}

impl JsonlRecorder {
    /// Trace into `writer`, starting with a meta line identifying the
    /// format version and the run metadata.
    pub fn new(writer: Box<dyn Write + Send>, meta: &TraceMeta) -> Self {
        JsonlRecorder::with_sink(SinkWriter::Stream(writer), meta)
    }

    fn with_sink(writer: SinkWriter, meta: &TraceMeta) -> Self {
        let recorder = JsonlRecorder {
            clock: Clock::new(),
            sink: Mutex::new(Sink { buffer: String::new(), writer, error: None }),
        };
        recorder.line(&format!(
            "{{\"ev\":\"meta\",\"version\":{TRACE_VERSION},\"git_rev\":\"{}\",\"seed\":{},\
             \"qubits\":{},\"strategy\":\"{}\"}}",
            escape(&meta.git_rev),
            meta.seed,
            meta.qubits,
            escape(&meta.strategy)
        ));
        recorder
    }

    /// Trace into a newly created file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: &str, meta: &TraceMeta) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder::with_sink(SinkWriter::File(std::io::BufWriter::new(file)), meta))
    }

    fn line(&self, line: &str) {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        sink.buffer.push_str(line);
        sink.buffer.push('\n');
        if sink.buffer.len() >= FLUSH_THRESHOLD {
            drain(&mut sink);
        }
    }
}

fn drain(sink: &mut Sink) {
    if sink.error.is_some() {
        return;
    }
    if let Err(e) = sink.writer.write_all(sink.buffer.as_bytes()) {
        sink.error = Some(e);
    }
    sink.buffer.clear();
}

impl Recorder for JsonlRecorder {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        self.line(&format!(
            "{{\"ev\":\"span\",\"path\":\"{path}\",\"start_ns\":{start_ns},\"end_ns\":{end_ns}}}"
        ));
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, layer: u64, count: u64, ns: u64) {
        self.line(&format!(
            "{{\"ev\":\"kernel\",\"phase\":\"{phase}\",\"class\":\"{}\",\"layer\":{layer},\
             \"count\":{count},\"ns\":{ns}}}",
            class.name()
        ));
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.line(&format!("{{\"ev\":\"counter\",\"name\":\"{name}\",\"delta\":{delta}}}"));
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.line(&format!(
            "{{\"ev\":\"msv\",\"kind\":\"{}\",\"depth\":{depth},\"residency\":{residency}}}",
            event.name()
        ));
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.line(&format!("{{\"ev\":\"cache\",\"depth\":{depth},\"hit\":{hit}}}"));
    }

    fn heartbeat(&self, hb: crate::recorder::Heartbeat) {
        self.line(&format!(
            "{{\"ev\":\"heartbeat\",\"completed\":{},\"depth\":{},\"resident\":{}}}",
            hb.completed, hb.depth, hb.resident_bytes
        ));
    }

    fn flush(&self) -> std::io::Result<()> {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        drain(&mut sink);
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        sink.writer.flush()
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        // The drop guard must run even when the recorder is dropped during
        // a panic that poisoned the sink mutex mid-line: recover the inner
        // sink (a torn final line is better than a lost tail), drain, and
        // sync file sinks through to stable storage.
        let mut sink = self.sink.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        drain(&mut sink);
        let _ = sink.writer.sync();
    }
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write sink tests can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn recorded(record: impl FnOnce(&JsonlRecorder)) -> String {
        let sink = Shared::default();
        let recorder = JsonlRecorder::new(Box::new(sink.clone()), &TraceMeta::default());
        record(&recorder);
        Recorder::flush(&recorder).unwrap();
        let bytes = sink.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn events_become_valid_schema_lines() {
        let text = recorded(|r| {
            r.span("run/reuse", 1, 2);
            r.kernel("reuse/shared", KernelClass::Perm2, 4, 1, 42);
            r.counter("ops", 9);
            r.msv(MsvEvent::Drop, 3, 2);
            r.cache(2, false);
        });
        assert_eq!(text.lines().count(), 6, "{text}");
        assert!(text.starts_with("{\"ev\":\"meta\""), "{text}");
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn meta_line_carries_run_metadata() {
        let sink = Shared::default();
        let meta = TraceMeta {
            git_rev: "abc1234".to_owned(),
            seed: 7,
            qubits: 5,
            strategy: "reuse".to_owned(),
        };
        let recorder = JsonlRecorder::new(Box::new(sink.clone()), &meta);
        Recorder::flush(&recorder).unwrap();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            format!(
                "{{\"ev\":\"meta\",\"version\":{TRACE_VERSION},\"git_rev\":\"abc1234\",\
                 \"seed\":7,\"qubits\":5,\"strategy\":\"reuse\"}}"
            )
        );
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn metadata_strings_are_escaped() {
        let sink = Shared::default();
        let meta = TraceMeta { git_rev: "a\"b\\c".to_owned(), ..TraceMeta::default() };
        let recorder = JsonlRecorder::new(Box::new(sink.clone()), &meta);
        Recorder::flush(&recorder).unwrap();
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"git_rev\":\"a\\\"b\\\\c\""), "{text}");
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn heartbeats_become_valid_schema_lines() {
        let text = recorded(|r| {
            r.heartbeat(crate::Heartbeat { completed: 1, depth: 3, resident_bytes: 512 });
        });
        assert!(
            text.contains("{\"ev\":\"heartbeat\",\"completed\":1,\"depth\":3,\"resident\":512}"),
            "{text}"
        );
        crate::schema::validate_jsonl(&text).unwrap();
    }

    /// A unique temp-file path (no tempfile crate in this dependency-free
    /// crate).
    fn temp_trace_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "qsim-telemetry-{tag}-{}-{}.jsonl",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn dropping_without_flush_persists_the_buffered_tail() {
        let path = temp_trace_path("drop-guard");
        {
            let recorder =
                JsonlRecorder::create(path.to_str().unwrap(), &TraceMeta::default()).unwrap();
            recorder.counter("ops", 41);
            recorder.cache(0, false);
            // Well below FLUSH_THRESHOLD: nothing has hit the file yet.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(text.contains("\"name\":\"ops\",\"delta\":41"), "{text}");
        assert!(text.contains("\"ev\":\"cache\""), "{text}");
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn dropping_during_a_panic_persists_the_buffered_tail() {
        let path = temp_trace_path("panic-guard");
        let path_str = path.to_str().unwrap().to_owned();
        let outcome = std::panic::catch_unwind(move || {
            let recorder = JsonlRecorder::create(&path_str, &TraceMeta::default()).unwrap();
            recorder.counter("trials", 7);
            panic!("simulated interrupt mid-run");
            // The recorder unwinds here; its drop guard must still drain.
        });
        assert!(outcome.is_err(), "the panic must actually fire");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(text.contains("\"name\":\"trials\",\"delta\":7"), "{text}");
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn buffer_flushes_at_threshold_without_explicit_flush() {
        let sink = Shared::default();
        let recorder = JsonlRecorder::new(Box::new(sink.clone()), &TraceMeta::default());
        for _ in 0..(FLUSH_THRESHOLD / 16) {
            recorder.counter("ops", 1);
        }
        assert!(!sink.0.lock().unwrap().is_empty(), "threshold flush never fired");
        drop(recorder); // drop drains the tail
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        crate::schema::validate_jsonl(&text).unwrap();
    }
}
