//! Buffered JSONL trace sink: one JSON object per line, validated by
//! [`crate::schema`].

use std::io::Write;
use std::sync::Mutex;

use crate::recorder::{KernelClass, MsvEvent, Recorder};
use crate::Clock;

/// Flush the line buffer to the writer once it exceeds this size.
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// Trace format version stamped into the meta line.
pub(crate) const TRACE_VERSION: u64 = 1;

struct Sink {
    buffer: String,
    writer: Box<dyn Write + Send>,
    error: Option<std::io::Error>,
}

/// A streaming recorder writing one JSON event object per line. Events are
/// buffered in memory and flushed in large chunks; [`Recorder::flush`]
/// (called automatically on drop) drains the buffer. I/O errors are sticky
/// and surface on the next flush.
pub struct JsonlRecorder {
    clock: Clock,
    sink: Mutex<Sink>,
}

impl JsonlRecorder {
    /// Trace into `writer`, starting with a meta line identifying the
    /// format version.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        let recorder = JsonlRecorder {
            clock: Clock::new(),
            sink: Mutex::new(Sink { buffer: String::new(), writer, error: None }),
        };
        recorder.line(format!("{{\"ev\":\"meta\",\"version\":{TRACE_VERSION}}}"));
        recorder
    }

    /// Trace into a newly created file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlRecorder::new(Box::new(std::io::BufWriter::new(file))))
    }

    fn line(&self, line: String) {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        sink.buffer.push_str(&line);
        sink.buffer.push('\n');
        if sink.buffer.len() >= FLUSH_THRESHOLD {
            drain(&mut sink);
        }
    }
}

fn drain(sink: &mut Sink) {
    if sink.error.is_some() {
        return;
    }
    if let Err(e) = sink.writer.write_all(sink.buffer.as_bytes()) {
        sink.error = Some(e);
    }
    sink.buffer.clear();
}

impl Recorder for JsonlRecorder {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        self.line(format!(
            "{{\"ev\":\"span\",\"path\":\"{path}\",\"start_ns\":{start_ns},\"end_ns\":{end_ns}}}"
        ));
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, count: u64, ns: u64) {
        self.line(format!(
            "{{\"ev\":\"kernel\",\"phase\":\"{phase}\",\"class\":\"{}\",\"count\":{count},\"ns\":{ns}}}",
            class.name()
        ));
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.line(format!("{{\"ev\":\"counter\",\"name\":\"{name}\",\"delta\":{delta}}}"));
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.line(format!(
            "{{\"ev\":\"msv\",\"kind\":\"{}\",\"depth\":{depth},\"residency\":{residency}}}",
            event.name()
        ));
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.line(format!("{{\"ev\":\"cache\",\"depth\":{depth},\"hit\":{hit}}}"));
    }

    fn flush(&self) -> std::io::Result<()> {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        drain(&mut sink);
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        sink.writer.flush()
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = Recorder::flush(self);
    }
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write sink tests can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn recorded(record: impl FnOnce(&JsonlRecorder)) -> String {
        let sink = Shared::default();
        let recorder = JsonlRecorder::new(Box::new(sink.clone()));
        record(&recorder);
        Recorder::flush(&recorder).unwrap();
        let bytes = sink.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn events_become_valid_schema_lines() {
        let text = recorded(|r| {
            r.span("run/reuse", 1, 2);
            r.kernel("reuse/shared", KernelClass::Perm2, 1, 42);
            r.counter("ops", 9);
            r.msv(MsvEvent::Drop, 3, 2);
            r.cache(2, false);
        });
        assert_eq!(text.lines().count(), 6, "{text}");
        assert!(text.starts_with("{\"ev\":\"meta\""), "{text}");
        crate::schema::validate_jsonl(&text).unwrap();
    }

    #[test]
    fn buffer_flushes_at_threshold_without_explicit_flush() {
        let sink = Shared::default();
        let recorder = JsonlRecorder::new(Box::new(sink.clone()));
        for _ in 0..(FLUSH_THRESHOLD / 16) {
            recorder.counter("ops", 1);
        }
        assert!(!sink.0.lock().unwrap().is_empty(), "threshold flush never fired");
        drop(recorder); // drop drains the tail
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        crate::schema::validate_jsonl(&text).unwrap();
    }
}
