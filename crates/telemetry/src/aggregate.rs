//! In-memory aggregation and post-run reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::recorder::{KernelClass, MsvEvent, Recorder};
use crate::Clock;

/// Number of log₂ latency buckets (bucket `i` holds durations with
/// `ns.ilog2() == i`; bucket 0 also holds 0 ns).
const BUCKETS: usize = 40;

/// Aggregated timing of one `(phase, kernel class)` cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel applications recorded.
    pub count: u64,
    /// Total nanoseconds across all applications.
    pub total_ns: u64,
    /// Fastest single record (ns; `u64::MAX` when empty).
    pub min_ns: u64,
    /// Slowest single record (ns).
    pub max_ns: u64,
    /// Log₂ histogram of per-record durations.
    pub buckets: Vec<u64>,
}

impl KernelStat {
    fn new() -> Self {
        KernelStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, buckets: vec![0; BUCKETS] }
    }

    fn record(&mut self, count: u64, ns: u64) {
        self.count = self.count.saturating_add(count);
        self.total_ns = self.total_ns.saturating_add(ns);
        // Histogram over the *record* (one record may batch several
        // applications; its duration lands in one bucket).
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (ns.max(1).ilog2() as usize).min(BUCKETS - 1);
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
    }

    /// Mean nanoseconds per recorded kernel application.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Aggregated span timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Spans recorded under this path.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_ns: u64,
}

/// Prefix-cache behavior at one trie depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheDepthStat {
    /// Lookups that reused a cached frontier at this depth.
    pub hits: u64,
    /// Lookups that resolved cold at this depth.
    pub misses: u64,
}

#[derive(Debug, Default)]
struct Aggregate {
    counters: BTreeMap<&'static str, u64>,
    kernels: BTreeMap<(&'static str, KernelClass), KernelStat>,
    spans: BTreeMap<&'static str, SpanStat>,
    msv_events: BTreeMap<MsvEvent, u64>,
    msv_residency: usize,
    msv_peak_residency: usize,
    msv_peak_depth: usize,
    cache: BTreeMap<usize, CacheDepthStat>,
}

/// In-memory aggregating recorder: counters, per-kernel-class timing
/// histograms, span totals, MSV residency, per-depth cache hit rates.
/// Thread-safe; snapshot with [`AggregatingRecorder::report`].
#[derive(Debug, Default)]
pub struct AggregatingRecorder {
    clock: Clock,
    inner: Mutex<Aggregate>,
}

impl AggregatingRecorder {
    /// A fresh recorder with its clock anchored now.
    pub fn new() -> Self {
        AggregatingRecorder::default()
    }

    /// Snapshot the aggregate into an immutable report.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the recorder panicked mid-record
    /// (poisoned lock).
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock().expect("recorder lock poisoned");
        MetricsReport {
            counters: inner.counters.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            kernels: inner
                .kernels
                .iter()
                .map(|(&(phase, class), stat)| ((phase.to_owned(), class), stat.clone()))
                .collect(),
            spans: inner.spans.iter().map(|(&k, &v)| (k.to_owned(), v)).collect(),
            msv_events: inner.msv_events.clone(),
            msv_peak_residency: inner.msv_peak_residency,
            msv_peak_depth: inner.msv_peak_depth,
            cache: inner.cache.clone(),
        }
    }

    fn with<F: FnOnce(&mut Aggregate)>(&self, f: F) {
        f(&mut self.inner.lock().expect("recorder lock poisoned"));
    }
}

impl Recorder for AggregatingRecorder {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        self.with(|a| {
            let stat = a.spans.entry(path).or_default();
            stat.count = stat.count.saturating_add(1);
            stat.total_ns = stat.total_ns.saturating_add(end_ns.saturating_sub(start_ns));
        });
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, _layer: u64, count: u64, ns: u64) {
        // Aggregation folds the per-layer dimension away: per-layer
        // attribution is reconstructed from JSONL traces by the observatory.
        self.with(|a| {
            a.kernels.entry((phase, class)).or_insert_with(KernelStat::new).record(count, ns);
        });
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.with(|a| {
            let slot = a.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(delta);
        });
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.with(|a| {
            let slot = a.msv_events.entry(event).or_insert(0);
            *slot = slot.saturating_add(1);
            a.msv_residency = residency;
            a.msv_peak_residency = a.msv_peak_residency.max(residency);
            a.msv_peak_depth = a.msv_peak_depth.max(depth);
        });
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.with(|a| {
            let stat = a.cache.entry(depth).or_default();
            if hit {
                stat.hits = stat.hits.saturating_add(1);
            } else {
                stat.misses = stat.misses.saturating_add(1);
            }
        });
    }
}

/// An immutable snapshot of an [`AggregatingRecorder`], renderable as a
/// Prometheus-style text page, JSON, or folded stacks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Saturating named counters.
    pub counters: BTreeMap<String, u64>,
    /// Timing per `(phase, kernel class)`.
    pub kernels: BTreeMap<(String, KernelClass), KernelStat>,
    /// Span totals per path.
    pub spans: BTreeMap<String, SpanStat>,
    /// MSV lifecycle event counts.
    pub msv_events: BTreeMap<MsvEvent, u64>,
    /// Peak number of concurrently live MSVs observed.
    pub msv_peak_residency: usize,
    /// Deepest trie depth any MSV reached.
    pub msv_peak_depth: usize,
    /// Prefix-cache behavior per reuse depth.
    pub cache: BTreeMap<usize, CacheDepthStat>,
}

impl MetricsReport {
    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Peak concurrently-live MSVs (the paper's MSV metric as observed at
    /// runtime).
    pub fn peak_residency(&self) -> usize {
        self.msv_peak_residency
    }

    /// Count of one MSV lifecycle event kind.
    pub fn msv_count(&self, event: MsvEvent) -> u64 {
        self.msv_events.get(&event).copied().unwrap_or(0)
    }

    /// Total kernel applications across all phases for `class`.
    pub fn kernel_count(&self, class: KernelClass) -> u64 {
        self.kernels.iter().filter(|((_, c), _)| *c == class).map(|(_, s)| s.count).sum()
    }

    /// Total kernel applications across all phases and classes. On a fused
    /// run every application is one amplitude pass, so this equals
    /// `ExecStats::amplitude_passes` exactly.
    pub fn total_kernel_count(&self) -> u64 {
        self.kernels.values().map(|s| s.count).sum()
    }

    /// Total prefix-cache lookups `(hits, misses)` across all depths.
    pub fn cache_totals(&self) -> (u64, u64) {
        self.cache.values().fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses))
    }

    /// Render as a Prometheus-style text exposition page.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# HELP qsim_counter Executor counters (exact, cross-checked).");
        let _ = writeln!(out, "# TYPE qsim_counter counter");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "qsim_counter{{name=\"{name}\"}} {value}");
        }
        let _ = writeln!(out, "# TYPE qsim_kernel_applications counter");
        let _ = writeln!(out, "# TYPE qsim_kernel_ns counter");
        for ((phase, class), stat) in &self.kernels {
            let labels = format!("phase=\"{phase}\",class=\"{}\"", class.name());
            let _ = writeln!(out, "qsim_kernel_applications{{{labels}}} {}", stat.count);
            let _ = writeln!(out, "qsim_kernel_ns{{{labels}}} {}", stat.total_ns);
        }
        let _ = writeln!(out, "# TYPE qsim_span_ns counter");
        for (path, stat) in &self.spans {
            let _ = writeln!(out, "qsim_span_ns{{path=\"{path}\"}} {}", stat.total_ns);
        }
        let _ = writeln!(out, "# TYPE qsim_msv_events counter");
        for (event, count) in &self.msv_events {
            let _ = writeln!(out, "qsim_msv_events{{kind=\"{}\"}} {count}", event.name());
        }
        let _ = writeln!(out, "# TYPE qsim_msv_peak_residency gauge");
        let _ = writeln!(out, "qsim_msv_peak_residency {}", self.msv_peak_residency);
        let _ = writeln!(out, "# TYPE qsim_msv_peak_depth gauge");
        let _ = writeln!(out, "qsim_msv_peak_depth {}", self.msv_peak_depth);
        let _ = writeln!(out, "# TYPE qsim_cache_lookups counter");
        for (depth, stat) in &self.cache {
            let _ = writeln!(
                out,
                "qsim_cache_lookups{{depth=\"{depth}\",outcome=\"hit\"}} {}",
                stat.hits
            );
            let _ = writeln!(
                out,
                "qsim_cache_lookups{{depth=\"{depth}\",outcome=\"miss\"}} {}",
                stat.misses
            );
        }
        out
    }

    /// Render as a single JSON object (hand-rolled; keys are controlled
    /// identifiers, so no escaping surprises).
    pub fn render_json(&self) -> String {
        fn quoted(s: &str) -> String {
            let escaped: String = s
                .chars()
                .map(|c| match c {
                    '"' => "\\\"".to_owned(),
                    '\\' => "\\\\".to_owned(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
                    c => c.to_string(),
                })
                .collect();
            format!("\"{escaped}\"")
        }
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("{}: {v}", quoted(k))).collect();
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|((phase, class), s)| {
                format!(
                    "{{\"phase\": {}, \"class\": {}, \"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}}}",
                    quoted(phase),
                    quoted(class.name()),
                    s.count,
                    s.total_ns,
                    s.mean_ns()
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(path, s)| {
                format!(
                    "{{\"path\": {}, \"count\": {}, \"total_ns\": {}}}",
                    quoted(path),
                    s.count,
                    s.total_ns
                )
            })
            .collect();
        let msv: Vec<String> =
            self.msv_events.iter().map(|(e, c)| format!("{}: {c}", quoted(e.name()))).collect();
        let cache: Vec<String> = self
            .cache
            .iter()
            .map(|(depth, s)| {
                format!("{{\"depth\": {depth}, \"hits\": {}, \"misses\": {}}}", s.hits, s.misses)
            })
            .collect();
        format!(
            "{{\"counters\": {{{}}}, \"kernels\": [{}], \"spans\": [{}], \"msv_events\": {{{}}}, \
             \"msv_peak_residency\": {}, \"msv_peak_depth\": {}, \"cache_depths\": [{}]}}",
            counters.join(", "),
            kernels.join(", "),
            spans.join(", "),
            msv.join(", "),
            self.msv_peak_residency,
            self.msv_peak_depth,
            cache.join(", ")
        )
    }

    /// Render kernel time as folded stacks for flamegraph tooling: one
    /// `qsim;<phase components>;<class> <total_ns>` line per cell.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for ((phase, class), stat) in &self.kernels {
            let path = phase.replace('/', ";");
            let _ = writeln!(out, "qsim;{path};{} {}", class.name(), stat.total_ns);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let rec = AggregatingRecorder::new();
        rec.counter("ops", 10);
        rec.counter("ops", 5);
        rec.counter("amplitude_passes", 7);
        rec.kernel("reuse/shared", KernelClass::Dense2, 0, 3, 300);
        rec.kernel("reuse/shared", KernelClass::Dense2, 0, 1, 50);
        rec.kernel("reuse/remainder", KernelClass::Error, 1, 1, 20);
        rec.span("run/reuse", 100, 400);
        rec.msv(MsvEvent::Create, 0, 1);
        rec.msv(MsvEvent::Fork, 1, 2);
        rec.msv(MsvEvent::Fork, 2, 3);
        rec.msv(MsvEvent::Drop, 2, 2);
        rec.cache(0, false);
        rec.cache(1, true);
        rec.cache(1, true);
        rec.report()
    }

    #[test]
    fn aggregation_sums_and_tracks_peaks() {
        let report = sample();
        assert_eq!(report.counter("ops"), 15);
        assert_eq!(report.counter("amplitude_passes"), 7);
        assert_eq!(report.counter("missing"), 0);
        assert_eq!(report.peak_residency(), 3);
        assert_eq!(report.msv_peak_depth, 2);
        assert_eq!(report.msv_count(MsvEvent::Fork), 2);
        assert_eq!(report.kernel_count(KernelClass::Dense2), 4);
        assert_eq!(report.cache_totals(), (2, 1));
        let stat = &report.kernels[&("reuse/shared".to_owned(), KernelClass::Dense2)];
        assert_eq!(stat.count, 4);
        assert_eq!(stat.total_ns, 350);
        assert_eq!(stat.min_ns, 50);
        assert_eq!(stat.max_ns, 300);
        assert_eq!(stat.buckets.iter().sum::<u64>(), 2, "one bucket entry per record");
        assert!((stat.mean_ns() - 87.5).abs() < 1e-9);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let rec = AggregatingRecorder::new();
        rec.counter("big", u64::MAX - 1);
        rec.counter("big", 5);
        rec.kernel("p", KernelClass::Cx, 0, u64::MAX, u64::MAX);
        rec.kernel("p", KernelClass::Cx, 0, 3, 3);
        let report = rec.report();
        assert_eq!(report.counter("big"), u64::MAX);
        assert_eq!(report.kernel_count(KernelClass::Cx), u64::MAX);
    }

    #[test]
    fn prometheus_page_contains_every_family() {
        let text = sample().render_prometheus();
        assert!(text.contains("qsim_counter{name=\"ops\"} 15"), "{text}");
        assert!(
            text.contains("qsim_kernel_applications{phase=\"reuse/shared\",class=\"dense2\"} 4"),
            "{text}"
        );
        assert!(text.contains("qsim_span_ns{path=\"run/reuse\"} 300"), "{text}");
        assert!(text.contains("qsim_msv_events{kind=\"fork\"} 2"), "{text}");
        assert!(text.contains("qsim_msv_peak_residency 3"), "{text}");
        assert!(text.contains("qsim_cache_lookups{depth=\"1\",outcome=\"hit\"} 2"), "{text}");
    }

    #[test]
    fn json_render_is_schema_shaped() {
        let json = sample().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"msv_peak_residency\": 3"), "{json}");
        assert!(json.contains("\"class\": \"error\""), "{json}");
    }

    #[test]
    fn folded_stacks_expand_phase_paths() {
        let folded = sample().render_folded();
        assert!(folded.contains("qsim;reuse;shared;dense2 350"), "{folded}");
        assert!(folded.contains("qsim;reuse;remainder;error 20"), "{folded}");
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("folded line shape");
            assert!(stack.starts_with("qsim;"), "{line}");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = AggregatingRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.counter("ops", 1);
                        rec.kernel("p", KernelClass::Diag1, 0, 1, 10);
                    }
                });
            }
        });
        let report = rec.report();
        assert_eq!(report.counter("ops"), 400);
        assert_eq!(report.kernel_count(KernelClass::Diag1), 400);
    }
}
