//! Counter names shared between emitters and consumers.
//!
//! Counters flow through [`crate::Recorder::counter`] as `&'static str`
//! literals; the persistent MSV store's counters are read back by the
//! observatory's cross-checks, so their names are pinned here once instead
//! of being spelled independently at both ends.

/// Cross-run semantic cache: lookups that restored a stored prefix.
pub const MSVSTORE_HIT: &str = "msvstore.hit";
/// Cross-run semantic cache: lookups that found no usable snapshot.
pub const MSVSTORE_MISS: &str = "msvstore.miss";
/// Snapshots published to the store after a miss.
pub const MSVSTORE_STORE: &str = "msvstore.store";
/// Snapshots evicted while publishing (budget pressure).
pub const MSVSTORE_EVICT: &str = "msvstore.evict";
/// Snapshot payload bytes read on hits.
pub const MSVSTORE_BYTES_READ: &str = "msvstore.bytes_read";
/// Snapshot payload bytes written on publishes.
pub const MSVSTORE_BYTES_WRITTEN: &str = "msvstore.bytes_written";
/// Amplitude passes *not* performed because a stored prefix was restored.
/// On a hit run, recorded kernel events fall short of `amplitude_passes`
/// by exactly this amount — the observatory's exactness cross-check adds
/// it back.
pub const MSVSTORE_CREDITED_PASSES: &str = "msvstore.credited_passes";
/// Source-gate applications credited without execution on a hit (the
/// `ops`-metric counterpart of [`MSVSTORE_CREDITED_PASSES`]).
pub const MSVSTORE_CREDITED_OPS: &str = "msvstore.credited_ops";
/// The layer the reusable prefix extends through (recorded once per
/// cached run, as a value-carrying counter).
pub const MSVSTORE_PREFIX_LAYER: &str = "msvstore.prefix_layer";

/// Every msvstore counter name, for consumers that sweep them generically.
pub const MSVSTORE_ALL: &[&str] = &[
    MSVSTORE_HIT,
    MSVSTORE_MISS,
    MSVSTORE_STORE,
    MSVSTORE_EVICT,
    MSVSTORE_BYTES_READ,
    MSVSTORE_BYTES_WRITTEN,
    MSVSTORE_CREDITED_PASSES,
    MSVSTORE_CREDITED_OPS,
    MSVSTORE_PREFIX_LAYER,
];

/// Prefix shared by every msvstore counter.
pub const MSVSTORE_PREFIX: &str = "msvstore.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_consistent() {
        for name in MSVSTORE_ALL {
            assert!(name.starts_with(MSVSTORE_PREFIX), "{name} lacks the msvstore prefix");
        }
        let mut sorted: Vec<&str> = MSVSTORE_ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), MSVSTORE_ALL.len(), "duplicate counter name");
    }
}
