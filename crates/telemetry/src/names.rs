//! The registry of counter and span names shared between emitters and
//! consumers.
//!
//! Counters flow through [`crate::Recorder::counter`] as `&'static str`
//! literals; the persistent MSV store's counters are read back by the
//! observatory's cross-checks, so their names are pinned here once instead
//! of being spelled independently at both ends.
//!
//! [`COUNTERS_ALL`] and [`SPANS_ALL`] enumerate every name any emitter in
//! the workspace is allowed to use; a workspace-level exhaustiveness test
//! greps all emission sites against them, so a new counter that is not
//! registered here fails CI instead of silently drifting out of the
//! observability surface.

/// Cross-run semantic cache: lookups that restored a stored prefix.
pub const MSVSTORE_HIT: &str = "msvstore.hit";
/// Cross-run semantic cache: lookups that found no usable snapshot.
pub const MSVSTORE_MISS: &str = "msvstore.miss";
/// Snapshots published to the store after a miss.
pub const MSVSTORE_STORE: &str = "msvstore.store";
/// Snapshots evicted while publishing (budget pressure).
pub const MSVSTORE_EVICT: &str = "msvstore.evict";
/// Snapshot payload bytes read on hits.
pub const MSVSTORE_BYTES_READ: &str = "msvstore.bytes_read";
/// Snapshot payload bytes written on publishes.
pub const MSVSTORE_BYTES_WRITTEN: &str = "msvstore.bytes_written";
/// Amplitude passes *not* performed because a stored prefix was restored.
/// On a hit run, recorded kernel events fall short of `amplitude_passes`
/// by exactly this amount — the observatory's exactness cross-check adds
/// it back.
pub const MSVSTORE_CREDITED_PASSES: &str = "msvstore.credited_passes";
/// Source-gate applications credited without execution on a hit (the
/// `ops`-metric counterpart of [`MSVSTORE_CREDITED_PASSES`]).
pub const MSVSTORE_CREDITED_OPS: &str = "msvstore.credited_ops";
/// The layer the reusable prefix extends through (recorded once per
/// cached run, as a value-carrying counter).
pub const MSVSTORE_PREFIX_LAYER: &str = "msvstore.prefix_layer";

/// Every msvstore counter name, for consumers that sweep them generically.
pub const MSVSTORE_ALL: &[&str] = &[
    MSVSTORE_HIT,
    MSVSTORE_MISS,
    MSVSTORE_STORE,
    MSVSTORE_EVICT,
    MSVSTORE_BYTES_READ,
    MSVSTORE_BYTES_WRITTEN,
    MSVSTORE_CREDITED_PASSES,
    MSVSTORE_CREDITED_OPS,
    MSVSTORE_PREFIX_LAYER,
];

/// Prefix shared by every msvstore counter.
pub const MSVSTORE_PREFIX: &str = "msvstore.";

/// Trials executed (mirrors `ExecStats::n_trials`).
pub const TRIALS: &str = "trials";
/// Basic operations performed (mirrors `ExecStats::ops`).
pub const OPS: &str = "ops";
/// Fused kernel applications (mirrors `ExecStats::fused_ops`).
pub const FUSED_OPS: &str = "fused_ops";
/// Full amplitude-array passes (mirrors `ExecStats::amplitude_passes`).
pub const AMPLITUDE_PASSES: &str = "amplitude_passes";
/// Fusion segments below the profitability threshold, compiled
/// gate-by-gate.
pub const FUSION_BYPASSED: &str = "fusion_bypassed";
/// State-pool clones served from recycled buffers.
pub const POOL_REUSED: &str = "pool.reused";
/// State-pool clones that had to allocate fresh.
pub const POOL_ALLOCATED: &str = "pool.allocated";
/// Compressed executor: frontier stores performed.
pub const COMPRESS_FRAMES_STORED: &str = "compress.frames_stored";
/// Compressed executor: stores that chose the sparse representation.
pub const COMPRESS_SPARSE_FRAMES: &str = "compress.sparse_frames";
/// Compressed executor: bytes written across all stores, compressed.
pub const COMPRESS_STORED_BYTES: &str = "compress.stored_bytes";
/// Compressed executor: bytes the same stores would have written dense.
pub const COMPRESS_DENSE_BYTES: &str = "compress.dense_bytes";
/// Fused-program compilations performed by the execution planner.
pub const PLAN_FUSE_COMPILE: &str = "plan.fuse_compile";
/// Advisor: predicted amplitude passes of the selected strategy.
pub const ADVISOR_PREDICTED_PASSES: &str = "advisor.predicted_passes";
/// Advisor: predicted basic ops of the selected strategy.
pub const ADVISOR_PREDICTED_OPS: &str = "advisor.predicted_ops";
/// Advisor: predicted peak MSV residency of the selected strategy.
pub const ADVISOR_PREDICTED_MSV: &str = "advisor.predicted_msv";
/// Advisor selected the sequential (baseline, unfused) strategy.
pub const ADVISOR_SELECTED_SEQUENTIAL: &str = "advisor.selected.sequential";
/// Advisor selected the fused baseline strategy.
pub const ADVISOR_SELECTED_FUSED: &str = "advisor.selected.fused";
/// Advisor selected the reordered reuse strategy.
pub const ADVISOR_SELECTED_REUSE: &str = "advisor.selected.reuse";
/// Advisor selected the compressed-frontier strategy.
pub const ADVISOR_SELECTED_COMPRESSED: &str = "advisor.selected.compressed";
/// Advisor selected the frame-tracking strategy.
pub const ADVISOR_SELECTED_FRAME_TRACKING: &str = "advisor.selected.frame-tracking";
/// Advisor selected the batched tree strategy.
pub const ADVISOR_SELECTED_TREE: &str = "advisor.selected.tree";
/// Batched executor: fused-op sweeps over the sibling frontier (mirrors
/// `ExecStats::batch_sweeps`).
pub const BATCH_SWEEPS: &str = "batch_sweeps";
/// Batched executor: widest frontier any sweep covered (mirrors
/// `ExecStats::batch_width_max`).
pub const BATCH_WIDTH_MAX: &str = "batch_width_max";

/// Every counter name any emitter in the workspace may use.
pub const COUNTERS_ALL: &[&str] = &[
    TRIALS,
    OPS,
    FUSED_OPS,
    AMPLITUDE_PASSES,
    FUSION_BYPASSED,
    POOL_REUSED,
    POOL_ALLOCATED,
    COMPRESS_FRAMES_STORED,
    COMPRESS_SPARSE_FRAMES,
    COMPRESS_STORED_BYTES,
    COMPRESS_DENSE_BYTES,
    PLAN_FUSE_COMPILE,
    ADVISOR_PREDICTED_PASSES,
    ADVISOR_PREDICTED_OPS,
    ADVISOR_PREDICTED_MSV,
    ADVISOR_SELECTED_SEQUENTIAL,
    ADVISOR_SELECTED_FUSED,
    ADVISOR_SELECTED_REUSE,
    ADVISOR_SELECTED_COMPRESSED,
    ADVISOR_SELECTED_FRAME_TRACKING,
    ADVISOR_SELECTED_TREE,
    BATCH_SWEEPS,
    BATCH_WIDTH_MAX,
    MSVSTORE_HIT,
    MSVSTORE_MISS,
    MSVSTORE_STORE,
    MSVSTORE_EVICT,
    MSVSTORE_BYTES_READ,
    MSVSTORE_BYTES_WRITTEN,
    MSVSTORE_CREDITED_PASSES,
    MSVSTORE_CREDITED_OPS,
    MSVSTORE_PREFIX_LAYER,
];

/// Baseline executor run span.
pub const SPAN_RUN_BASELINE: &str = "run/baseline";
/// Reuse executor run span.
pub const SPAN_RUN_REUSE: &str = "run/reuse";
/// Compressed executor run span.
pub const SPAN_RUN_COMPRESSED: &str = "run/compressed";
/// Parallel baseline run span (covers all workers).
pub const SPAN_RUN_PARALLEL_BASELINE: &str = "run/parallel-baseline";
/// Parallel reuse run span (covers all workers).
pub const SPAN_RUN_PARALLEL_REUSE: &str = "run/parallel-reuse";
/// Batched tree executor run span.
pub const SPAN_RUN_TREE: &str = "run/tree";

/// Every span path any emitter in the workspace may use.
pub const SPANS_ALL: &[&str] = &[
    SPAN_RUN_BASELINE,
    SPAN_RUN_REUSE,
    SPAN_RUN_COMPRESSED,
    SPAN_RUN_PARALLEL_BASELINE,
    SPAN_RUN_PARALLEL_REUSE,
    SPAN_RUN_TREE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_consistent() {
        for name in MSVSTORE_ALL {
            assert!(name.starts_with(MSVSTORE_PREFIX), "{name} lacks the msvstore prefix");
        }
        let mut sorted: Vec<&str> = MSVSTORE_ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), MSVSTORE_ALL.len(), "duplicate counter name");
    }

    #[test]
    fn registry_has_no_duplicates_and_embeds_msvstore() {
        let mut sorted: Vec<&str> = COUNTERS_ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), COUNTERS_ALL.len(), "duplicate counter name in registry");
        for name in MSVSTORE_ALL {
            assert!(COUNTERS_ALL.contains(name), "{name} missing from COUNTERS_ALL");
        }
        let mut spans: Vec<&str> = SPANS_ALL.to_vec();
        spans.sort_unstable();
        spans.dedup();
        assert_eq!(spans.len(), SPANS_ALL.len(), "duplicate span path in registry");
        for span in SPANS_ALL {
            assert!(span.starts_with("run/"), "{span} lacks the run/ prefix");
        }
    }
}
