//! The recorder trait and its trivial implementations.

/// Kernel classes of the fused execution engine, plus the non-gate passes
/// executors perform. Mirrors `qsim_statevec::FusedOp::kernel_name` (the
/// executors translate; this crate stays dependency-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelClass {
    /// One-qubit phase kernel (active-half multiply).
    Phase1,
    /// Diagonal one-qubit kernel.
    Diag1,
    /// Phased one-qubit permutation (X/Y-shaped).
    Perm1,
    /// Dense one-qubit kernel.
    Dense1,
    /// Controlled-phase kernel (active-quarter multiply).
    CPhase2,
    /// Controlled-diagonal kernel (active-half multiply).
    CDiag1,
    /// Diagonal two-qubit kernel.
    Diag2,
    /// Exact-CNOT strided swap.
    Cx,
    /// Controlled dense one-qubit kernel (active-half 2×2 update).
    Ctrl1,
    /// Phased two-qubit permutation.
    Perm2,
    /// Dense two-qubit kernel.
    Dense2,
    /// Toffoli fallback.
    Ccx,
    /// An injected error operator (one amplitude pass).
    Error,
    /// A batched multi-op advance not attributed to a single kernel: the
    /// layer-by-layer engine, or a fused advance observed by a recorder
    /// that declines per-kernel timing ([`Recorder::kernel_timing`]).
    Unfused,
}

impl KernelClass {
    /// Every class, in report order (cheapest dispatch first).
    pub const ALL: [KernelClass; 14] = [
        KernelClass::Phase1,
        KernelClass::Diag1,
        KernelClass::Perm1,
        KernelClass::Dense1,
        KernelClass::CPhase2,
        KernelClass::CDiag1,
        KernelClass::Diag2,
        KernelClass::Cx,
        KernelClass::Ctrl1,
        KernelClass::Perm2,
        KernelClass::Dense2,
        KernelClass::Ccx,
        KernelClass::Error,
        KernelClass::Unfused,
    ];

    /// Stable snake-case name (used in reports, traces, and the schema).
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::Phase1 => "phase1",
            KernelClass::Diag1 => "diag1",
            KernelClass::Perm1 => "perm1",
            KernelClass::Dense1 => "dense1",
            KernelClass::CPhase2 => "cphase2",
            KernelClass::CDiag1 => "cdiag1",
            KernelClass::Diag2 => "diag2",
            KernelClass::Cx => "cx",
            KernelClass::Ctrl1 => "ctrl1",
            KernelClass::Perm2 => "perm2",
            KernelClass::Dense2 => "dense2",
            KernelClass::Ccx => "ccx",
            KernelClass::Error => "error",
            KernelClass::Unfused => "unfused",
        }
    }

    /// Inverse of [`KernelClass::name`] (also accepts the executor-side
    /// `FusedOp::kernel_name` strings, which are identical).
    pub fn from_name(name: &str) -> Option<KernelClass> {
        KernelClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// Lifecycle of one maintained state vector (MSV) — a cached frontier on
/// the reuse executors' prefix-trie stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsvEvent {
    /// The root (error-free) frontier came alive.
    Create,
    /// A child frontier was forked off a cached parent (one clone + one
    /// injection).
    Fork,
    /// A cached frontier was reused as the starting point of a trial.
    Reuse,
    /// A frontier was dropped (the paper's eager drop) and its buffer
    /// recycled.
    Drop,
}

impl MsvEvent {
    /// Every event kind, in report order.
    pub const ALL: [MsvEvent; 4] =
        [MsvEvent::Create, MsvEvent::Fork, MsvEvent::Reuse, MsvEvent::Drop];

    /// Stable name (reports, traces, schema).
    pub fn name(&self) -> &'static str {
        match self {
            MsvEvent::Create => "create",
            MsvEvent::Fork => "fork",
            MsvEvent::Reuse => "reuse",
            MsvEvent::Drop => "drop",
        }
    }
}

/// One progress heartbeat from an executor loop, emitted after each trial's
/// outcome is produced.
///
/// Fields are **deltas or instantaneous gauges**, never running totals:
/// parallel workers share one recorder, and deltas from workers over
/// disjoint trial chunks sum to the exact global total, which is what lets
/// the live plane reconcile bitwise with `ExecStats` after the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Trials newly completed since the previous heartbeat from this call
    /// site (normally 1).
    pub completed: u64,
    /// Prefix-trie depth (reuse executors) or layer count (baseline) the
    /// finished trial ran at — an instantaneous gauge.
    pub depth: u64,
    /// Amplitude bytes currently resident in this executor: live frontier
    /// states plus pool-idle buffers. An instantaneous gauge.
    pub resident_bytes: u64,
}

/// Sink for executor instrumentation. Methods take `&self` and must be
/// thread-safe: a parallel run hands one recorder to every worker.
///
/// Every instrumentation site guards on [`Recorder::enabled`] before
/// taking timestamps or formatting anything, so a recorder that returns
/// `false` (the [`NullRecorder`]) costs one inlined branch.
pub trait Recorder: Sync {
    /// Whether instrumentation sites should emit events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this recorder wants per-kernel observed timing. Profiling
    /// sinks (aggregate, JSONL) keep the default `true` and receive one
    /// individually timed event per fused op; liveness sinks (the flight
    /// ring, the live publisher) return `false`, and fused instrumentation
    /// sites fall back to one batched [`KernelClass::Unfused`] event per
    /// advance — the same total application count for two clock reads per
    /// segment instead of two per op.
    fn kernel_timing(&self) -> bool {
        true
    }

    /// Current monotonic timestamp on this recorder's clock, for span
    /// bracketing. Disabled recorders return 0.
    fn now_ns(&self) -> u64 {
        0
    }

    /// A named execution span `[start_ns, end_ns]` on this recorder's
    /// clock. Paths use `/` separators (`"run/reuse"`).
    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64);

    /// `count` kernel application(s) of `class` taking `ns` nanoseconds in
    /// total, attributed to `phase` (a `/`-separated context path such as
    /// `"reuse/shared"`) and to the circuit layer `layer` the work ended on
    /// (fused segments report their end layer; error operators their
    /// injection layer).
    fn kernel(&self, phase: &'static str, class: KernelClass, layer: u64, count: u64, ns: u64);

    /// Add `delta` to the named saturating counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// An MSV lifecycle event at prefix-trie depth `depth`; `residency` is
    /// the number of live MSVs *after* the event.
    fn msv(&self, event: MsvEvent, depth: usize, residency: usize);

    /// A per-trial prefix-cache lookup that resolved at `depth` reused
    /// injections (`hit` = a previously cached frontier was reused).
    fn cache(&self, depth: usize, hit: bool);

    /// A progress [`Heartbeat`], emitted once per completed trial. The
    /// default is a no-op so pre-existing recorders (aggregate, JSONL) can
    /// opt in individually.
    fn heartbeat(&self, hb: Heartbeat) {
        let _ = hb;
    }

    /// Flush buffered output (streaming sinks).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for streaming sinks.
    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The disabled recorder: reports `enabled() == false` so monomorphized
/// instrumentation sites compile the telemetry out entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn kernel_timing(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span(&self, _: &'static str, _: u64, _: u64) {}

    #[inline(always)]
    fn kernel(&self, _: &'static str, _: KernelClass, _: u64, _: u64, _: u64) {}

    #[inline(always)]
    fn counter(&self, _: &'static str, _: u64) {}

    #[inline(always)]
    fn msv(&self, _: MsvEvent, _: usize, _: usize) {}

    #[inline(always)]
    fn cache(&self, _: usize, _: bool) {}

    #[inline(always)]
    fn heartbeat(&self, _: Heartbeat) {}
}

/// Forward one instrumentation stream to two sinks (e.g. aggregate and
/// trace in the same run). Enabled when either side is; span timestamps
/// come from the first side's clock.
#[derive(Clone, Copy)]
pub struct TeeRecorder<'a> {
    a: &'a dyn Recorder,
    b: &'a dyn Recorder,
}

impl std::fmt::Debug for TeeRecorder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeRecorder").finish_non_exhaustive()
    }
}

impl<'a> TeeRecorder<'a> {
    /// Tee into `a` and `b`.
    pub fn new(a: &'a dyn Recorder, b: &'a dyn Recorder) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn kernel_timing(&self) -> bool {
        self.a.kernel_timing() || self.b.kernel_timing()
    }

    fn now_ns(&self) -> u64 {
        if self.a.enabled() {
            self.a.now_ns()
        } else {
            self.b.now_ns()
        }
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        self.a.span(path, start_ns, end_ns);
        self.b.span(path, start_ns, end_ns);
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, layer: u64, count: u64, ns: u64) {
        self.a.kernel(phase, class, layer, count, ns);
        self.b.kernel(phase, class, layer, count, ns);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.a.counter(name, delta);
        self.b.counter(name, delta);
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.a.msv(event, depth, residency);
        self.b.msv(event, depth, residency);
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.a.cache(depth, hit);
        self.b.cache(depth, hit);
    }

    fn heartbeat(&self, hb: Heartbeat) {
        self.a.heartbeat(hb);
        self.b.heartbeat(hb);
    }

    fn flush(&self) -> std::io::Result<()> {
        self.a.flush()?;
        self.b.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregatingRecorder;

    #[test]
    fn kernel_class_names_round_trip() {
        for class in KernelClass::ALL {
            assert_eq!(KernelClass::from_name(class.name()), Some(class));
        }
        assert_eq!(KernelClass::from_name("bogus"), None);
    }

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let null = NullRecorder;
        assert!(!null.enabled());
        assert_eq!(null.now_ns(), 0);
        null.span("run/x", 0, 1);
        null.kernel("p", KernelClass::Cx, 0, 1, 1);
        null.counter("ops", 5);
        null.msv(MsvEvent::Fork, 1, 2);
        null.cache(0, true);
        null.heartbeat(Heartbeat::default());
        null.flush().unwrap();
    }

    /// A recorder that appends `"<name>:<event>"` markers to a shared log,
    /// so tests can assert cross-sink ordering.
    struct OrderLogger {
        name: &'static str,
        log: std::sync::Arc<std::sync::Mutex<Vec<String>>>,
    }

    impl OrderLogger {
        fn mark(&self, event: &str) {
            self.log.lock().unwrap().push(format!("{}:{event}", self.name));
        }
    }

    impl Recorder for OrderLogger {
        fn span(&self, path: &'static str, _: u64, _: u64) {
            self.mark(&format!("span/{path}"));
        }

        fn kernel(&self, _: &'static str, class: KernelClass, _: u64, _: u64, _: u64) {
            self.mark(&format!("kernel/{}", class.name()));
        }

        fn counter(&self, name: &'static str, _: u64) {
            self.mark(&format!("counter/{name}"));
        }

        fn msv(&self, event: MsvEvent, _: usize, _: usize) {
            self.mark(&format!("msv/{}", event.name()));
        }

        fn cache(&self, _: usize, hit: bool) {
            self.mark(&format!("cache/{hit}"));
        }

        fn heartbeat(&self, hb: Heartbeat) {
            self.mark(&format!("heartbeat/{}", hb.completed));
        }
    }

    #[test]
    fn tee_forwards_every_event_in_a_then_b_order() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let a = OrderLogger { name: "a", log: std::sync::Arc::clone(&log) };
        let b = OrderLogger { name: "b", log: std::sync::Arc::clone(&log) };
        let tee = TeeRecorder::new(&a, &b);
        tee.counter("ops", 1);
        tee.kernel("p", KernelClass::Cx, 0, 1, 1);
        tee.msv(MsvEvent::Fork, 1, 2);
        tee.cache(0, true);
        tee.heartbeat(Heartbeat { completed: 1, depth: 0, resident_bytes: 0 });
        tee.span("run/reuse", 0, 1);
        let log = log.lock().unwrap();
        assert_eq!(
            *log,
            vec![
                "a:counter/ops",
                "b:counter/ops",
                "a:kernel/cx",
                "b:kernel/cx",
                "a:msv/fork",
                "b:msv/fork",
                "a:cache/true",
                "b:cache/true",
                "a:heartbeat/1",
                "b:heartbeat/1",
                "a:span/run/reuse",
                "b:span/run/reuse",
            ],
            "every event reaches a before b, in emission order"
        );
    }

    #[test]
    fn tee_forwards_to_both_sides() {
        let a = AggregatingRecorder::new();
        let b = AggregatingRecorder::new();
        let tee = TeeRecorder::new(&a, &b);
        assert!(tee.enabled());
        tee.counter("ops", 3);
        tee.kernel("reuse/shared", KernelClass::Dense2, 0, 2, 100);
        tee.msv(MsvEvent::Create, 0, 1);
        tee.cache(1, true);
        tee.span("run/reuse", 0, 10);
        tee.flush().unwrap();
        for side in [&a, &b] {
            let report = side.report();
            assert_eq!(report.counter("ops"), 3);
            assert_eq!(report.peak_residency(), 1);
        }
    }
}
