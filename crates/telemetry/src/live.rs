//! The live snapshot plane: in-flight aggregation of executor progress
//! into a versioned [`LiveSnapshot`], atomically published to disk.
//!
//! [`LiveRecorder`] is an all-atomic [`Recorder`]: every field is an
//! `AtomicU64`, so executor threads update it without locks and a
//! concurrent reader can take a racy-but-coherent [`LiveSnapshot`] at any
//! moment (the *final* snapshot, taken after the run returns, is exact —
//! the live matrix test reconciles it bitwise against `ExecStats`).
//!
//! [`LivePublisher`] wraps a [`LiveRecorder`] and, on each heartbeat past
//! a configurable interval, atomically rewrites `live.json` (and a
//! Prometheus text exposition, `live.prom`) in a target directory via the
//! write-temp-then-rename idiom — the file-based precursor to a `qsim
//! serve` HTTP endpoint. `qsim top` tails that file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock::Clock;
use crate::jsonl::{escape, TraceMeta};
use crate::recorder::{Heartbeat, KernelClass, MsvEvent, Recorder};

/// Version stamped into every published [`LiveSnapshot`].
///
/// Version history:
/// - 1: initial flat schema (22 keys, see [`LiveSnapshot::render_json`]).
pub const LIVE_VERSION: u64 = 1;

/// Relaxed is enough everywhere in this module: each field is an
/// independent monotone counter or gauge, and cross-field coherence for
/// the final snapshot comes from the executor having returned (a
/// happens-before edge via thread join / program order).
const ORD: Ordering = Ordering::Relaxed;

/// A point-in-time view of a run, either mid-flight (racy-coherent) or
/// final (exact). Publishes as flat JSON so the observatory's flat-object
/// parsers can validate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Snapshot schema version ([`LIVE_VERSION`]).
    pub version: u64,
    /// Execution strategy name (from the run's [`TraceMeta`]).
    pub strategy: String,
    /// Qubit count of the simulated circuit.
    pub qubits: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Nanoseconds since the recorder was created.
    pub elapsed_ns: u64,
    /// Heartbeats received so far.
    pub heartbeats: u64,
    /// Trials completed so far (sum of heartbeat deltas).
    pub trials_done: u64,
    /// Total trials the run will execute.
    pub trials_total: u64,
    /// Most recent heartbeat depth (prefix-trie depth or layer count).
    pub depth: u64,
    /// Kernel applications observed (fused kernels + error operators);
    /// equals `amplitude_passes` at the end of an uncached run.
    pub passes: u64,
    /// Basic operations counter (mirrors `ExecStats::ops` when final).
    pub ops: u64,
    /// Fused kernel counter (mirrors `ExecStats::fused_ops` when final).
    pub fused_ops: u64,
    /// Amplitude-pass counter (mirrors `ExecStats::amplitude_passes`).
    pub amplitude_passes: u64,
    /// Amplitude passes credited (not executed) by the semantic store.
    pub credited_passes: u64,
    /// Semantic-store lookups that restored a stored prefix.
    pub store_hits: u64,
    /// Semantic-store lookups that found no usable snapshot.
    pub store_misses: u64,
    /// Per-trial prefix-cache hits.
    pub cache_hits: u64,
    /// Per-trial prefix-cache misses.
    pub cache_misses: u64,
    /// Live MSVs after the most recent lifecycle event.
    pub msv_resident: u64,
    /// Peak MSV residency observed.
    pub msv_peak: u64,
    /// Most recent heartbeat's resident amplitude bytes.
    pub resident_bytes: u64,
    /// Peak resident amplitude bytes observed.
    pub peak_resident_bytes: u64,
}

impl LiveSnapshot {
    /// Render as one flat JSON object (the `live.json` payload).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"version\":{},\"strategy\":\"{}\",\"qubits\":{},\"seed\":{},\
             \"elapsed_ns\":{},\"heartbeats\":{},\"trials_done\":{},\"trials_total\":{},\
             \"depth\":{},\"passes\":{},\"ops\":{},\"fused_ops\":{},\"amplitude_passes\":{},\
             \"credited_passes\":{},\"store_hits\":{},\"store_misses\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"msv_resident\":{},\"msv_peak\":{},\"resident_bytes\":{},\
             \"peak_resident_bytes\":{}}}",
            self.version,
            escape(&self.strategy),
            self.qubits,
            self.seed,
            self.elapsed_ns,
            self.heartbeats,
            self.trials_done,
            self.trials_total,
            self.depth,
            self.passes,
            self.ops,
            self.fused_ops,
            self.amplitude_passes,
            self.credited_passes,
            self.store_hits,
            self.store_misses,
            self.cache_hits,
            self.cache_misses,
            self.msv_resident,
            self.msv_peak,
            self.resident_bytes,
            self.peak_resident_bytes,
        )
    }

    /// Render as a Prometheus text exposition (the `live.prom` payload):
    /// one `qsim_live_*` gauge per numeric field, labelled with the run's
    /// strategy.
    pub fn render_prometheus(&self) -> String {
        let label = format!("{{strategy=\"{}\"}}", escape(&self.strategy));
        let mut out = String::new();
        for (name, value) in [
            ("version", self.version),
            ("qubits", self.qubits),
            ("seed", self.seed),
            ("elapsed_ns", self.elapsed_ns),
            ("heartbeats", self.heartbeats),
            ("trials_done", self.trials_done),
            ("trials_total", self.trials_total),
            ("depth", self.depth),
            ("passes", self.passes),
            ("ops", self.ops),
            ("fused_ops", self.fused_ops),
            ("amplitude_passes", self.amplitude_passes),
            ("credited_passes", self.credited_passes),
            ("store_hits", self.store_hits),
            ("store_misses", self.store_misses),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("msv_resident", self.msv_resident),
            ("msv_peak", self.msv_peak),
            ("resident_bytes", self.resident_bytes),
            ("peak_resident_bytes", self.peak_resident_bytes),
        ] {
            out.push_str(&format!(
                "# TYPE qsim_live_{name} gauge\nqsim_live_{name}{label} {value}\n"
            ));
        }
        out
    }
}

/// An all-atomic [`Recorder`] aggregating the live-plane vocabulary (see
/// the module docs above).
#[derive(Debug)]
pub struct LiveRecorder {
    clock: Clock,
    strategy: String,
    qubits: u64,
    seed: u64,
    heartbeats: AtomicU64,
    trials_done: AtomicU64,
    trials_total: u64,
    depth: AtomicU64,
    passes: AtomicU64,
    ops: AtomicU64,
    fused_ops: AtomicU64,
    amplitude_passes: AtomicU64,
    credited_passes: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    msv_resident: AtomicU64,
    msv_peak: AtomicU64,
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
}

fn store_max(slot: &AtomicU64, value: u64) {
    slot.fetch_max(value, ORD);
}

impl LiveRecorder {
    /// A live recorder for a run described by `meta`, executing
    /// `trials_total` trials.
    pub fn new(meta: &TraceMeta, trials_total: u64) -> Self {
        LiveRecorder {
            clock: Clock::new(),
            strategy: meta.strategy.clone(),
            qubits: meta.qubits,
            seed: meta.seed,
            heartbeats: AtomicU64::new(0),
            trials_done: AtomicU64::new(0),
            trials_total,
            depth: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            fused_ops: AtomicU64::new(0),
            amplitude_passes: AtomicU64::new(0),
            credited_passes: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            msv_resident: AtomicU64::new(0),
            msv_peak: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(0),
        }
    }

    /// Take a snapshot. Mid-run it is racy-but-coherent (each field
    /// individually valid); after the run returns it is exact.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            version: LIVE_VERSION,
            strategy: self.strategy.clone(),
            qubits: self.qubits,
            seed: self.seed,
            elapsed_ns: self.clock.now_ns(),
            heartbeats: self.heartbeats.load(ORD),
            trials_done: self.trials_done.load(ORD),
            trials_total: self.trials_total,
            depth: self.depth.load(ORD),
            passes: self.passes.load(ORD),
            ops: self.ops.load(ORD),
            fused_ops: self.fused_ops.load(ORD),
            amplitude_passes: self.amplitude_passes.load(ORD),
            credited_passes: self.credited_passes.load(ORD),
            store_hits: self.store_hits.load(ORD),
            store_misses: self.store_misses.load(ORD),
            cache_hits: self.cache_hits.load(ORD),
            cache_misses: self.cache_misses.load(ORD),
            msv_resident: self.msv_resident.load(ORD),
            msv_peak: self.msv_peak.load(ORD),
            resident_bytes: self.resident_bytes.load(ORD),
            peak_resident_bytes: self.peak_resident_bytes.load(ORD),
        }
    }
}

impl Recorder for LiveRecorder {
    /// The live plane aggregates totals; it declines per-kernel timing so
    /// fused advances report one batched event instead of paying two
    /// clock reads per op.
    fn kernel_timing(&self) -> bool {
        false
    }

    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span(&self, _path: &'static str, _start_ns: u64, _end_ns: u64) {}

    fn kernel(&self, _phase: &'static str, _class: KernelClass, _layer: u64, count: u64, _ns: u64) {
        self.passes.fetch_add(count, ORD);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        match name {
            crate::names::OPS => self.ops.fetch_add(delta, ORD),
            crate::names::FUSED_OPS => self.fused_ops.fetch_add(delta, ORD),
            crate::names::AMPLITUDE_PASSES => self.amplitude_passes.fetch_add(delta, ORD),
            crate::names::MSVSTORE_CREDITED_PASSES => self.credited_passes.fetch_add(delta, ORD),
            crate::names::MSVSTORE_HIT => self.store_hits.fetch_add(delta, ORD),
            crate::names::MSVSTORE_MISS => self.store_misses.fetch_add(delta, ORD),
            _ => return,
        };
    }

    fn msv(&self, _event: MsvEvent, _depth: usize, residency: usize) {
        self.msv_resident.store(residency as u64, ORD);
        store_max(&self.msv_peak, residency as u64);
    }

    fn cache(&self, _depth: usize, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, ORD);
        } else {
            self.cache_misses.fetch_add(1, ORD);
        }
    }

    fn heartbeat(&self, hb: Heartbeat) {
        self.heartbeats.fetch_add(1, ORD);
        self.trials_done.fetch_add(hb.completed, ORD);
        self.depth.store(hb.depth, ORD);
        self.resident_bytes.store(hb.resident_bytes, ORD);
        store_max(&self.peak_resident_bytes, hb.resident_bytes);
    }
}

/// A [`LiveRecorder`] that additionally publishes snapshots to a directory
/// (see the module docs above). Mid-run publish errors are sticky and
/// surface on [`Recorder::flush`]; the run itself is never interrupted by
/// a full disk or a vanished directory.
pub struct LivePublisher {
    inner: LiveRecorder,
    dir: PathBuf,
    interval_ns: u64,
    last_publish_ns: AtomicU64,
    // Concurrent heartbeats can win successive publish elections and
    // overlap; a unique temp name per publish keeps every rename valid.
    tmp_seq: AtomicU64,
    error: Mutex<Option<std::io::Error>>,
}

impl std::fmt::Debug for LivePublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePublisher")
            .field("dir", &self.dir)
            .field("interval_ns", &self.interval_ns)
            .finish_non_exhaustive()
    }
}

impl LivePublisher {
    /// Publish into `dir` (created if missing) every `interval_ns`
    /// nanoseconds of heartbeat time (`0` = on every heartbeat). An
    /// initial snapshot is written immediately so consumers see the file
    /// as soon as the run starts.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or the
    /// initial snapshot cannot be written.
    pub fn create(
        dir: &Path,
        meta: &TraceMeta,
        trials_total: u64,
        interval_ns: u64,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let publisher = LivePublisher {
            inner: LiveRecorder::new(meta, trials_total),
            dir: dir.to_path_buf(),
            interval_ns,
            last_publish_ns: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            error: Mutex::new(None),
        };
        publisher.publish()?;
        Ok(publisher)
    }

    /// The underlying live recorder.
    pub fn recorder(&self) -> &LiveRecorder {
        &self.inner
    }

    /// Path of the published JSON snapshot.
    pub fn json_path(&self) -> PathBuf {
        self.dir.join("live.json")
    }

    /// Path of the published Prometheus exposition.
    pub fn prom_path(&self) -> PathBuf {
        self.dir.join("live.prom")
    }

    /// Atomically rewrite both snapshot files from the current state.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn publish(&self) -> std::io::Result<()> {
        let snapshot = self.inner.snapshot();
        let seq = self.tmp_seq.fetch_add(1, ORD);
        write_atomic(&self.json_path(), seq, &snapshot.render_json())?;
        write_atomic(&self.prom_path(), seq, &snapshot.render_prometheus())
    }

    fn maybe_publish(&self) {
        let now = self.inner.clock.now_ns();
        let last = self.last_publish_ns.load(ORD);
        if now.saturating_sub(last) < self.interval_ns {
            return;
        }
        // Elect exactly one publisher among racing heartbeats.
        if self.last_publish_ns.compare_exchange(last, now, ORD, ORD).is_err() {
            return;
        }
        if let Err(e) = self.publish() {
            self.error.lock().expect("publish error slot poisoned").get_or_insert(e);
        }
    }
}

/// Write `content` to `path` via a temp file + rename, so a concurrent
/// reader always sees a complete snapshot, never a torn one. `seq` makes
/// the temp name unique so overlapping publishers never steal each other's
/// temp file between write and rename.
fn write_atomic(path: &Path, seq: u64, content: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{seq}"));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

impl Recorder for LivePublisher {
    fn kernel_timing(&self) -> bool {
        self.inner.kernel_timing()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn span(&self, path: &'static str, start_ns: u64, end_ns: u64) {
        self.inner.span(path, start_ns, end_ns);
    }

    fn kernel(&self, phase: &'static str, class: KernelClass, layer: u64, count: u64, ns: u64) {
        self.inner.kernel(phase, class, layer, count, ns);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.inner.counter(name, delta);
    }

    fn msv(&self, event: MsvEvent, depth: usize, residency: usize) {
        self.inner.msv(event, depth, residency);
    }

    fn cache(&self, depth: usize, hit: bool) {
        self.inner.cache(depth, hit);
    }

    fn heartbeat(&self, hb: Heartbeat) {
        self.inner.heartbeat(hb);
        self.maybe_publish();
    }

    /// Publish the final snapshot, surfacing any sticky mid-run error
    /// first.
    fn flush(&self) -> std::io::Result<()> {
        if let Some(e) = self.error.lock().expect("publish error slot poisoned").take() {
            return Err(e);
        }
        self.publish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            git_rev: "deadbeef".to_owned(),
            seed: 7,
            qubits: 4,
            strategy: "reuse".to_owned(),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "qsim-live-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn recorder_aggregates_the_live_vocabulary() {
        let live = LiveRecorder::new(&meta(), 3);
        live.kernel("reuse/shared", KernelClass::Cx, 0, 2, 10);
        live.kernel("reuse/remainder", KernelClass::Error, 1, 1, 5);
        live.counter("ops", 12);
        live.counter("fused_ops", 2);
        live.counter("amplitude_passes", 3);
        live.counter("msvstore.credited_passes", 4);
        live.counter("msvstore.hit", 1);
        live.counter("msvstore.miss", 2);
        live.counter("pool.reused", 99); // not part of the live vocabulary
        live.msv(MsvEvent::Fork, 1, 2);
        live.msv(MsvEvent::Drop, 1, 1);
        live.cache(0, false);
        live.cache(1, true);
        live.heartbeat(Heartbeat { completed: 1, depth: 2, resident_bytes: 640 });
        live.heartbeat(Heartbeat { completed: 2, depth: 1, resident_bytes: 320 });
        let snap = live.snapshot();
        assert_eq!(snap.version, LIVE_VERSION);
        assert_eq!(snap.strategy, "reuse");
        assert_eq!((snap.qubits, snap.seed), (4, 7));
        assert_eq!(snap.passes, 3);
        assert_eq!(snap.ops, 12);
        assert_eq!(snap.fused_ops, 2);
        assert_eq!(snap.amplitude_passes, 3);
        assert_eq!(snap.credited_passes, 4);
        assert_eq!((snap.store_hits, snap.store_misses), (1, 2));
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_eq!((snap.msv_resident, snap.msv_peak), (1, 2));
        assert_eq!(snap.heartbeats, 2);
        assert_eq!((snap.trials_done, snap.trials_total), (3, 3));
        assert_eq!(snap.depth, 1);
        assert_eq!((snap.resident_bytes, snap.peak_resident_bytes), (320, 640));
    }

    #[test]
    fn snapshot_renders_flat_json_and_prometheus() {
        let live = LiveRecorder::new(&meta(), 5);
        live.heartbeat(Heartbeat { completed: 1, depth: 0, resident_bytes: 128 });
        let snap = live.snapshot();
        let json = snap.render_json();
        assert!(json.starts_with("{\"version\":1,\"strategy\":\"reuse\""), "{json}");
        assert!(json.contains("\"trials_done\":1,\"trials_total\":5"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        let prom = snap.render_prometheus();
        assert!(prom.contains("qsim_live_trials_total{strategy=\"reuse\"} 5"), "{prom}");
        assert!(prom.contains("# TYPE qsim_live_trials_done gauge"), "{prom}");
    }

    #[test]
    fn publisher_writes_complete_snapshots_atomically() {
        let dir = temp_dir("publish");
        let publisher = LivePublisher::create(&dir, &meta(), 2, 0).unwrap();
        // The initial snapshot exists before any heartbeat.
        assert!(publisher.json_path().is_file());
        publisher.counter("ops", 3);
        publisher.heartbeat(Heartbeat { completed: 1, depth: 1, resident_bytes: 64 });
        publisher.heartbeat(Heartbeat { completed: 1, depth: 0, resident_bytes: 64 });
        Recorder::flush(&publisher).unwrap();
        let json = std::fs::read_to_string(publisher.json_path()).unwrap();
        assert!(json.contains("\"trials_done\":2,\"trials_total\":2"), "{json}");
        assert!(json.contains("\"ops\":3"), "{json}");
        let prom = std::fs::read_to_string(publisher.prom_path()).unwrap();
        assert!(prom.contains("qsim_live_trials_done{strategy=\"reuse\"} 2"), "{prom}");
        // No temp files left behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(!name.to_string_lossy().contains(".tmp"), "stray temp file {name:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn long_intervals_skip_intermediate_publishes() {
        let dir = temp_dir("interval");
        // An hour-long interval: only the initial snapshot and the final
        // flush ever hit the disk.
        let publisher = LivePublisher::create(&dir, &meta(), 10, 3_600_000_000_000).unwrap();
        let initial = std::fs::read_to_string(publisher.json_path()).unwrap();
        for _ in 0..10 {
            publisher.heartbeat(Heartbeat { completed: 1, depth: 0, resident_bytes: 0 });
        }
        let unchanged = std::fs::read_to_string(publisher.json_path()).unwrap();
        assert_eq!(initial, unchanged, "interval was not honored");
        Recorder::flush(&publisher).unwrap();
        let fin = std::fs::read_to_string(publisher.json_path()).unwrap();
        assert!(fin.contains("\"trials_done\":10"), "{fin}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
