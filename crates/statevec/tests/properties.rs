//! Property-based tests for the state-vector substrate.

use proptest::prelude::*;
use qsim_statevec::{Matrix2, Matrix4, Pauli, StateVector};

const TOL: f64 = 1e-9;

fn arb_angle() -> impl Strategy<Value = f64> {
    -6.3f64..6.3f64
}

fn arb_u() -> impl Strategy<Value = Matrix2> {
    (arb_angle(), arb_angle(), arb_angle()).prop_map(|(t, p, l)| Matrix2::u(t, p, l))
}

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![Just(Pauli::X), Just(Pauli::Y), Just(Pauli::Z)]
}

/// Prepare a pseudo-random 3-qubit product state from three U gates.
fn prepared_state(us: &[Matrix2; 3]) -> StateVector {
    let mut s = StateVector::zero_state(3);
    for (q, u) in us.iter().enumerate() {
        s.apply_1q(u, q).expect("valid qubit");
    }
    s
}

proptest! {
    #[test]
    fn u_gates_are_always_unitary(u in arb_u()) {
        prop_assert!(u.is_unitary(TOL));
    }

    #[test]
    fn unitary_application_preserves_norm(
        us in [arb_u(), arb_u(), arb_u()],
        extra in arb_u(),
        q in 0usize..3,
    ) {
        let mut s = prepared_state(&us);
        s.apply_1q(&extra, q).unwrap();
        prop_assert!((s.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn gate_then_adjoint_is_identity(us in [arb_u(), arb_u(), arb_u()], g in arb_u(), q in 0usize..3) {
        let s0 = prepared_state(&us);
        let mut s = s0.clone();
        s.apply_1q(&g, q).unwrap();
        s.apply_1q(&g.adjoint(), q).unwrap();
        prop_assert!(s.fidelity(&s0).unwrap() > 1.0 - TOL);
    }

    #[test]
    fn pauli_twice_is_identity(us in [arb_u(), arb_u(), arb_u()], p in arb_pauli(), q in 0usize..3) {
        let s0 = prepared_state(&us);
        let mut s = s0.clone();
        s.apply_pauli(p, q).unwrap();
        s.apply_pauli(p, q).unwrap();
        for (a, b) in s.amplitudes().iter().zip(s0.amplitudes()) {
            prop_assert!((a - b).norm() < TOL);
        }
    }

    #[test]
    fn pauli_fast_path_equals_matrix(us in [arb_u(), arb_u(), arb_u()], p in arb_pauli(), q in 0usize..3) {
        let mut a = prepared_state(&us);
        let mut b = a.clone();
        a.apply_pauli(p, q).unwrap();
        b.apply_1q(&p.matrix(), q).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((x - y).norm() < TOL);
        }
    }

    #[test]
    fn commuting_1q_gates_on_distinct_qubits(
        us in [arb_u(), arb_u(), arb_u()],
        g1 in arb_u(),
        g2 in arb_u(),
    ) {
        let mut a = prepared_state(&us);
        let mut b = a.clone();
        a.apply_1q(&g1, 0).unwrap();
        a.apply_1q(&g2, 2).unwrap();
        b.apply_1q(&g2, 2).unwrap();
        b.apply_1q(&g1, 0).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((x - y).norm() < TOL);
        }
    }

    #[test]
    fn two_qubit_kernel_matches_kron(us in [arb_u(), arb_u(), arb_u()], g1 in arb_u(), g2 in arb_u()) {
        let mut a = prepared_state(&us);
        let mut b = a.clone();
        a.apply_2q(&Matrix4::kron(&g2, &g1), 0, 1).unwrap();
        b.apply_1q(&g1, 0).unwrap();
        b.apply_1q(&g2, 1).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((x - y).norm() < TOL);
        }
    }

    #[test]
    fn swapped_operands_identity(us in [arb_u(), arb_u(), arb_u()], g1 in arb_u(), g2 in arb_u()) {
        let m = Matrix4::kron(&g2, &g1);
        let mut a = prepared_state(&us);
        let mut b = a.clone();
        a.apply_2q(&m, 0, 2).unwrap();
        b.apply_2q(&m.swapped_operands(), 2, 0).unwrap();
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((x - y).norm() < TOL);
        }
    }

    #[test]
    fn zyz_angles_reconstruct_any_u(u in arb_u()) {
        let (t, p, l) = u.zyz_angles();
        let rebuilt = Matrix2::u(t, p, l);
        prop_assert!(rebuilt.approx_eq_up_to_phase(&u, 1e-8));
    }

    #[test]
    fn probabilities_sum_to_one(us in [arb_u(), arb_u(), arb_u()]) {
        let s = prepared_state(&us);
        let total: f64 = s.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_is_symmetric(us in [arb_u(), arb_u(), arb_u()], vs in [arb_u(), arb_u(), arb_u()]) {
        let a = prepared_state(&us);
        let b = prepared_state(&vs);
        let f_ab = a.fidelity(&b).unwrap();
        let f_ba = b.fidelity(&a).unwrap();
        prop_assert!((f_ab - f_ba).abs() < TOL);
        prop_assert!((-TOL..=1.0 + TOL).contains(&f_ab));
    }
}
