//! Kernel classes for fused operators.
//!
//! Gate fusion (performed upstream, in `qsim-circuit`) collapses runs of
//! gates into single operators; this module is the execution side: each
//! [`FusedOp`] names the cheapest kernel that applies the operator in **one
//! pass** over the amplitude array. Classification inspects exact zero
//! entries (`re == 0.0 && im == 0.0`) — fused products of exactly-entered
//! matrices (CX, CZ, S, Z, …) keep their structural zeros exact, while
//! anything touched by rounding safely falls back to the dense kernel.
//!
//! Kernel classes, cheapest first:
//!
//! * **Phase / controlled phase** ([`StateVector::apply_phase1`] /
//!   `apply_cphase2`) — multiply only the active half (quarter) of the
//!   amplitudes.
//! * **Diagonal / controlled diagonal** ([`StateVector::apply_diag1`] /
//!   `apply_diag2` / `apply_cdiag1`) — one linear multiply sweep, no
//!   gather.
//! * **Permutation** ([`StateVector::apply_perm1`] / `apply_cx` /
//!   `apply_perm2`) — moves amplitudes without arithmetic beyond a phase
//!   factor.
//! * **Controlled dense** ([`StateVector::apply_ctrl1`]) — a 2×2 update on
//!   the half of the pairs where the control bit is set.
//! * **Dense** ([`StateVector::apply_1q`] / `apply_2q`) — full
//!   matrix-vector update.

use crate::{Matrix2, Matrix4, StateVecError, StateVector, C64};

/// A fused operator bound to its qubits, tagged with its kernel class.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedOp {
    /// One-qubit phase `diag(1, d1)` — multiplies only the bit-set half.
    Phase1 {
        /// Phase applied where the qubit bit is set.
        d1: C64,
        /// Operand qubit.
        qubit: usize,
    },
    /// Diagonal one-qubit operator `diag(d[0], d[1])`.
    Diag1 {
        /// Diagonal entries.
        d: [C64; 2],
        /// Operand qubit.
        qubit: usize,
    },
    /// Phased one-qubit permutation (anti-diagonal 2×2): `new0 =
    /// phase[0]·old1`, `new1 = phase[1]·old0`. Covers X, Y, and fused
    /// phase·X products.
    Perm1 {
        /// Phase per destination row.
        phase: [C64; 2],
        /// Operand qubit.
        qubit: usize,
    },
    /// Dense one-qubit operator.
    Dense1 {
        /// The 2×2 matrix.
        m: Matrix2,
        /// Operand qubit.
        qubit: usize,
    },
    /// Controlled phase `diag(1, 1, 1, p)` — multiplies only the
    /// both-bits-set quarter. Symmetric in its operands.
    CPhase2 {
        /// Phase applied where both bits are set.
        p: C64,
        /// Low local bit.
        low: usize,
        /// High local bit.
        high: usize,
    },
    /// Controlled diagonal `diag(1, 1, d[0], d[1])` — `diag(d)` on
    /// `target` where the `control` bit is set; touches half the array.
    CDiag1 {
        /// Diagonal entries of the active block.
        d: [C64; 2],
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Diagonal two-qubit operator over local index `2·bit(high)+bit(low)`.
    Diag2 {
        /// Diagonal entries.
        d: [C64; 4],
        /// Low local bit.
        low: usize,
        /// High local bit.
        high: usize,
    },
    /// Controlled dense one-qubit operator: `u` on `target` where the
    /// `control` bit is set — a 2×2 update on half the pairs, skipping the
    /// identity block a dense 4×4 kernel would multiply through.
    Ctrl1 {
        /// The controlled 2×2 block.
        u: Matrix2,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// An exact CNOT (the permutation special case with unit phases and the
    /// cheapest two-qubit kernel: a strided swap).
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Phased two-qubit permutation: `new[r] = phase[r] · old[src[r]]`.
    Perm2 {
        /// Source local index per destination row.
        src: [u8; 4],
        /// Phase per destination row.
        phase: [C64; 4],
        /// Low local bit.
        low: usize,
        /// High local bit.
        high: usize,
    },
    /// Dense two-qubit operator.
    Dense2 {
        /// The 4×4 matrix.
        m: Matrix4,
        /// Low local bit.
        low: usize,
        /// High local bit.
        high: usize,
    },
    /// Toffoli fallback (no 8×8 dense form is kept; it stays a strided
    /// permutation and absorbs nothing).
    Ccx {
        /// First control.
        control_a: usize,
        /// Second control.
        control_b: usize,
        /// Target qubit.
        target: usize,
    },
}

fn is_zero(c: C64) -> bool {
    c.re == 0.0 && c.im == 0.0
}

const ONE: C64 = C64 { re: 1.0, im: 0.0 };

impl FusedOp {
    /// Classify a one-qubit operator into its cheapest kernel class.
    pub fn classify_1q(m: &Matrix2, qubit: usize) -> FusedOp {
        if is_zero(m.0[0][1]) && is_zero(m.0[1][0]) {
            if m.0[0][0] == ONE {
                FusedOp::Phase1 { d1: m.0[1][1], qubit }
            } else {
                FusedOp::Diag1 { d: [m.0[0][0], m.0[1][1]], qubit }
            }
        } else if is_zero(m.0[0][0]) && is_zero(m.0[1][1]) {
            FusedOp::Perm1 { phase: [m.0[0][1], m.0[1][0]], qubit }
        } else {
            FusedOp::Dense1 { m: *m, qubit }
        }
    }

    /// Classify a two-qubit operator (in the `(low, high)` convention of
    /// [`Matrix4`]) into its cheapest kernel class. Controlled structure —
    /// an exact identity on the block where one operand bit is clear — is
    /// detected on either operand, so CX/CZ/CY/CRz-shaped products reach
    /// kernels that skip the inactive half entirely.
    pub fn classify_2q(m: &Matrix4, low: usize, high: usize) -> FusedOp {
        // Permutation structure: exactly one nonzero per row and column.
        let mut src = [0u8; 4];
        let mut phase = [ONE; 4];
        let mut col_used = [false; 4];
        let mut is_perm = true;
        'rows: for r in 0..4 {
            let mut found = None;
            for (c, used) in col_used.iter_mut().enumerate() {
                if !is_zero(m.0[r][c]) {
                    if found.is_some() || *used {
                        is_perm = false;
                        break 'rows;
                    }
                    found = Some(c);
                    *used = true;
                }
            }
            match found {
                Some(c) => {
                    src[r] = c as u8;
                    phase[r] = m.0[r][c];
                }
                None => {
                    is_perm = false;
                    break 'rows;
                }
            }
        }
        if is_perm {
            if src == [0, 1, 2, 3] {
                // Diagonal; strip controlled structure before giving up and
                // sweeping the whole array.
                let [d0, d1, d2, d3] = phase;
                if d0 == ONE && d1 == ONE && d2 == ONE {
                    return FusedOp::CPhase2 { p: d3, low, high };
                }
                if d0 == ONE && d1 == ONE {
                    return FusedOp::CDiag1 { d: [d2, d3], control: high, target: low };
                }
                if d0 == ONE && d2 == ONE {
                    return FusedOp::CDiag1 { d: [d1, d3], control: low, target: high };
                }
                return FusedOp::Diag2 { d: phase, low, high };
            }
            if src == [0, 1, 3, 2] && phase.iter().all(|&p| p == ONE) {
                // CX with control on the high local bit.
                return FusedOp::Cx { control: high, target: low };
            }
            if src == [0, 3, 2, 1] && phase.iter().all(|&p| p == ONE) {
                // CX with control on the low local bit: locals 1 and 3
                // (low bit set) swap the high bit.
                return FusedOp::Cx { control: low, target: high };
            }
        }
        // Controlled dense structure, control on the high local bit:
        // identity on locals {0, 1} and no coupling into {2, 3}.
        if m.0[0][0] == ONE
            && m.0[1][1] == ONE
            && is_zero(m.0[0][1])
            && is_zero(m.0[1][0])
            && [0, 1].iter().all(|&r| [2, 3].iter().all(|&c| is_zero(m.0[r][c])))
            && [2, 3].iter().all(|&r| [0, 1].iter().all(|&c| is_zero(m.0[r][c])))
        {
            let u = Matrix2([[m.0[2][2], m.0[2][3]], [m.0[3][2], m.0[3][3]]]);
            return FusedOp::Ctrl1 { u, control: high, target: low };
        }
        // Control on the low local bit: identity on locals {0, 2} and no
        // coupling into {1, 3}.
        if m.0[0][0] == ONE
            && m.0[2][2] == ONE
            && is_zero(m.0[0][2])
            && is_zero(m.0[2][0])
            && [0, 2].iter().all(|&r| [1, 3].iter().all(|&c| is_zero(m.0[r][c])))
            && [1, 3].iter().all(|&r| [0, 2].iter().all(|&c| is_zero(m.0[r][c])))
        {
            let u = Matrix2([[m.0[1][1], m.0[1][3]], [m.0[3][1], m.0[3][3]]]);
            return FusedOp::Ctrl1 { u, control: low, target: high };
        }
        if is_perm {
            return FusedOp::Perm2 { src, phase, low, high };
        }
        FusedOp::Dense2 { m: *m, low, high }
    }

    /// The qubits this operator touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            FusedOp::Phase1 { qubit, .. }
            | FusedOp::Diag1 { qubit, .. }
            | FusedOp::Perm1 { qubit, .. }
            | FusedOp::Dense1 { qubit, .. } => vec![qubit],
            FusedOp::CPhase2 { low, high, .. }
            | FusedOp::Diag2 { low, high, .. }
            | FusedOp::Perm2 { low, high, .. }
            | FusedOp::Dense2 { low, high, .. } => vec![low, high],
            FusedOp::CDiag1 { control, target, .. }
            | FusedOp::Ctrl1 { control, target, .. }
            | FusedOp::Cx { control, target } => vec![control, target],
            FusedOp::Ccx { control_a, control_b, target } => vec![control_a, control_b, target],
        }
    }

    /// Short kernel-class name (for diagnostics and reports).
    pub fn kernel_name(&self) -> &'static str {
        match self {
            FusedOp::Phase1 { .. } => "phase1",
            FusedOp::Diag1 { .. } => "diag1",
            FusedOp::Perm1 { .. } => "perm1",
            FusedOp::Dense1 { .. } => "dense1",
            FusedOp::CPhase2 { .. } => "cphase2",
            FusedOp::CDiag1 { .. } => "cdiag1",
            FusedOp::Diag2 { .. } => "diag2",
            FusedOp::Cx { .. } => "cx",
            FusedOp::Ctrl1 { .. } => "ctrl1",
            FusedOp::Perm2 { .. } => "perm2",
            FusedOp::Dense2 { .. } => "dense2",
            FusedOp::Ccx { .. } => "ccx",
        }
    }
}

impl StateVector {
    /// Apply one fused operator — exactly one pass over the amplitudes,
    /// dispatched to the kernel its class names.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVecError`] for invalid operands.
    pub fn apply_fused(&mut self, op: &FusedOp) -> Result<(), StateVecError> {
        match op {
            FusedOp::Phase1 { d1, qubit } => self.apply_phase1(*d1, *qubit),
            FusedOp::Diag1 { d, qubit } => self.apply_diag1(d, *qubit),
            FusedOp::Perm1 { phase, qubit } => self.apply_perm1(phase, *qubit),
            FusedOp::Dense1 { m, qubit } => self.apply_1q(m, *qubit),
            FusedOp::CPhase2 { p, low, high } => self.apply_cphase2(*p, *low, *high),
            FusedOp::CDiag1 { d, control, target } => self.apply_cdiag1(d, *control, *target),
            FusedOp::Diag2 { d, low, high } => self.apply_diag2(d, *low, *high),
            FusedOp::Cx { control, target } => self.apply_cx(*control, *target),
            FusedOp::Ctrl1 { u, control, target } => self.apply_ctrl1(u, *control, *target),
            FusedOp::Perm2 { src, phase, low, high } => self.apply_perm2(src, phase, *low, *high),
            FusedOp::Dense2 { m, low, high } => self.apply_2q(m, *low, *high),
            FusedOp::Ccx { control_a, control_b, target } => {
                self.apply_ccx(*control_a, *control_b, *target)
            }
        }
    }
}

impl FusedOp {
    /// Apply this operator to a whole batch of sibling states in one
    /// sweep, via the cross-state kernels of `crate::batch`: the operator
    /// is matched and validated **once**, the operand indices are
    /// enumerated **once**, and each per-state update runs back-to-back
    /// over the batch — amortizing dispatch, mask/stride setup, and the
    /// strided enumeration over every state while the per-state float
    /// sequence stays bitwise-identical to [`StateVector::apply_fused`]
    /// (the batched kernels repeat the scalar kernels' arithmetic
    /// expressions verbatim).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError`] for invalid operands (validated against
    /// the first state) or mixed register widths, before touching any
    /// amplitudes. Empty batches are a no-op.
    pub fn apply_batch(&self, states: &mut [StateVector]) -> Result<(), StateVecError> {
        match self {
            FusedOp::Phase1 { d1, qubit } => crate::batch::phase1(states, *d1, *qubit),
            FusedOp::Diag1 { d, qubit } => crate::batch::diag1(states, d, *qubit),
            FusedOp::Perm1 { phase, qubit } => crate::batch::perm1(states, phase, *qubit),
            FusedOp::Dense1 { m, qubit } => crate::batch::dense1(states, m, *qubit),
            FusedOp::CPhase2 { p, low, high } => crate::batch::cphase2(states, *p, *low, *high),
            FusedOp::CDiag1 { d, control, target } => {
                crate::batch::cdiag1(states, d, *control, *target)
            }
            FusedOp::Diag2 { d, low, high } => crate::batch::diag2(states, d, *low, *high),
            FusedOp::Cx { control, target } => crate::batch::cx(states, *control, *target),
            FusedOp::Ctrl1 { u, control, target } => {
                crate::batch::ctrl1(states, u, *control, *target)
            }
            FusedOp::Perm2 { src, phase, low, high } => {
                crate::batch::perm2(states, src, phase, *low, *high)
            }
            FusedOp::Dense2 { m, low, high } => crate::batch::dense2(states, m, *low, *high),
            FusedOp::Ccx { control_a, control_b, target } => {
                crate::batch::ccx(states, *control_a, *control_b, *target)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOL;

    fn random_state(n: usize, seed: u64) -> StateVector {
        // Deterministic non-trivial state: rotate every qubit by
        // seed-dependent angles.
        let mut s = StateVector::zero_state(n);
        for q in 0..n {
            let t = 0.37 * (seed as f64 + 1.0) + 0.91 * q as f64;
            s.apply_1q(&Matrix2::u(t, t / 2.0, t / 3.0), q).unwrap();
        }
        for q in 0..n - 1 {
            s.apply_cx(q, q + 1).unwrap();
        }
        s
    }

    #[test]
    fn classification_picks_the_expected_class() {
        // Unit top-left diagonal → phase kernel; general diagonal → diag1.
        assert!(matches!(FusedOp::classify_1q(&Matrix2::z(), 0), FusedOp::Phase1 { .. }));
        assert!(matches!(FusedOp::classify_1q(&Matrix2::t(), 0), FusedOp::Phase1 { .. }));
        assert!(matches!(FusedOp::classify_1q(&Matrix2::rz(0.4), 0), FusedOp::Diag1 { .. }));
        assert!(matches!(FusedOp::classify_1q(&Matrix2::x(), 0), FusedOp::Perm1 { .. }));
        assert!(matches!(FusedOp::classify_1q(&Matrix2::y(), 0), FusedOp::Perm1 { .. }));
        assert!(matches!(FusedOp::classify_1q(&Matrix2::h(), 0), FusedOp::Dense1 { .. }));
        // Controlled structure strips to the active-half kernels.
        assert!(matches!(FusedOp::classify_2q(&Matrix4::cz(), 0, 1), FusedOp::CPhase2 { .. }));
        assert!(matches!(
            FusedOp::classify_2q(&Matrix4::cphase(0.3), 0, 1),
            FusedOp::CPhase2 { .. }
        ));
        let crz = Matrix4::controlled(&Matrix2::rz(0.7));
        assert!(matches!(
            FusedOp::classify_2q(&crz, 0, 1),
            FusedOp::CDiag1 { control: 1, target: 0, .. }
        ));
        let cy = Matrix4::controlled(&Matrix2::y());
        assert!(matches!(
            FusedOp::classify_2q(&cy, 0, 1),
            FusedOp::Ctrl1 { control: 1, target: 0, .. }
        ));
        let ch = Matrix4::controlled(&Matrix2::h());
        assert!(matches!(
            FusedOp::classify_2q(&ch, 0, 1),
            FusedOp::Ctrl1 { control: 1, target: 0, .. }
        ));
        // Control lands on the right operand regardless of orientation.
        assert!(matches!(
            FusedOp::classify_2q(&Matrix4::cx(), 2, 1),
            FusedOp::Cx { control: 1, target: 2 }
        ));
        assert!(matches!(
            FusedOp::classify_2q(&Matrix4::cx().swapped_operands(), 2, 1),
            FusedOp::Cx { control: 2, target: 1 }
        ));
        assert!(matches!(FusedOp::classify_2q(&Matrix4::swap(), 0, 1), FusedOp::Perm2 { .. }));
        let dense = Matrix4::kron(&Matrix2::h(), &Matrix2::identity());
        assert!(matches!(FusedOp::classify_2q(&dense, 0, 1), FusedOp::Dense2 { .. }));
        let general_diag = Matrix4::kron(&Matrix2::rz(0.3), &Matrix2::rz(0.9));
        assert!(matches!(FusedOp::classify_2q(&general_diag, 0, 1), FusedOp::Diag2 { .. }));
    }

    #[test]
    fn every_kernel_class_matches_the_dense_kernel() {
        let cases: Vec<(Matrix4, &str)> = vec![
            (Matrix4::cz(), "cz"),
            (Matrix4::cx(), "cx"),
            (Matrix4::cx().swapped_operands(), "cx-low-control"),
            (Matrix4::swap(), "swap"),
            (Matrix4::cphase(1.1), "cphase"),
            (Matrix4::controlled(&Matrix2::rz(0.8)), "crz"),
            (Matrix4::controlled(&Matrix2::y()), "cy"),
            (Matrix4::controlled(&Matrix2::h()), "ch"),
            (Matrix4::controlled(&Matrix2::h()).swapped_operands(), "ch-low-control"),
            (Matrix4::kron(&Matrix2::x(), &Matrix2::s()), "x⊗s"),
            (Matrix4::kron(&Matrix2::h(), &Matrix2::t()), "h⊗t"),
            (Matrix4::kron(&Matrix2::rz(0.2), &Matrix2::rz(1.3)), "rz⊗rz"),
        ];
        for (low, high) in [(0usize, 2usize), (2, 0), (1, 2)] {
            for (m, name) in &cases {
                let mut fused = random_state(3, 5);
                let mut dense = fused.clone();
                fused.apply_fused(&FusedOp::classify_2q(m, low, high)).unwrap();
                dense.apply_2q(m, low, high).unwrap();
                assert!(fused.approx_eq(&dense, TOL), "{name} on ({low},{high})");
            }
        }
        for q in 0..3 {
            for m in [Matrix2::s(), Matrix2::rz(0.4), Matrix2::h(), Matrix2::x(), Matrix2::y()] {
                let mut fused = random_state(3, 7);
                let mut dense = fused.clone();
                fused.apply_fused(&FusedOp::classify_1q(&m, q)).unwrap();
                dense.apply_1q(&m, q).unwrap();
                assert!(fused.approx_eq(&dense, TOL));
            }
        }
    }

    #[test]
    fn diag_kernels_are_bitwise_equal_to_dense_on_exact_matrices() {
        // Diagonal sweeps perform the same single multiply per amplitude as
        // the dense kernel only up to reassociation; for *exact* diagonal
        // matrices the dense kernel computes d·a + 0·b, which need not be
        // bitwise identical. The contract is approximate equality (covered
        // above) plus determinism: same op, same result.
        let op = FusedOp::classify_2q(&Matrix4::cphase(0.77), 1, 3);
        let mut a = random_state(4, 1);
        let mut b = a.clone();
        a.apply_fused(&op).unwrap();
        b.apply_fused(&op).unwrap();
        assert!(a.approx_eq(&b, 0.0), "same kernel must be deterministic");
    }

    #[test]
    fn fused_ccx_matches_pairwise_construction() {
        let mut s = StateVector::basis_state(3, 0b011).unwrap();
        s.apply_fused(&FusedOp::Ccx { control_a: 0, control_b: 1, target: 2 }).unwrap();
        assert!((s.probability(0b111) - 1.0).abs() < TOL);
    }

    #[test]
    fn fused_ops_propagate_operand_errors() {
        let mut s = StateVector::zero_state(2);
        assert!(s.apply_fused(&FusedOp::Cx { control: 5, target: 0 }).is_err());
        assert!(s.apply_fused(&FusedOp::Diag2 { d: [ONE; 4], low: 1, high: 1 }).is_err());
    }

    #[test]
    fn apply_batch_is_bitwise_identical_to_sequential_apply_fused() {
        // Every kernel class, applied to a batch of distinct states, must
        // produce bit-for-bit the same amplitudes as applying the same op
        // to each state individually — the batch path reuses the exact
        // per-state kernels, so any divergence is a dispatch bug.
        let ops = vec![
            FusedOp::classify_1q(&Matrix2::s(), 0),
            FusedOp::classify_1q(&Matrix2::rz(0.3), 1),
            FusedOp::classify_1q(&Matrix2::x(), 2),
            FusedOp::classify_1q(&Matrix2::h(), 3),
            FusedOp::classify_2q(&Matrix4::cphase(0.9), 0, 2),
            FusedOp::classify_2q(&Matrix4::controlled(&Matrix2::rz(0.7)), 1, 2),
            FusedOp::classify_2q(&Matrix4::kron(&Matrix2::rz(0.2), &Matrix2::rz(1.3)), 3, 1),
            FusedOp::classify_2q(&Matrix4::cx(), 1, 3),
            FusedOp::classify_2q(&Matrix4::controlled(&Matrix2::rx(0.5)), 0, 1),
            FusedOp::classify_2q(&Matrix4::swap(), 2, 0),
            FusedOp::classify_2q(&Matrix4::kron(&Matrix2::h(), &Matrix2::u(0.2, 0.4, 0.6)), 0, 3),
            FusedOp::Ccx { control_a: 0, control_b: 1, target: 2 },
        ];
        // All 12 kernel classes must be exercised — a class silently
        // falling back to a broader one would dodge its batched kernel.
        let classes: std::collections::BTreeSet<&str> =
            ops.iter().map(FusedOp::kernel_name).collect();
        assert_eq!(classes.len(), 12, "op list covers every kernel class: {classes:?}");
        for op in &ops {
            for width in [1usize, 5] {
                let mut batched: Vec<StateVector> =
                    (0..width as u64).map(|i| random_state(4, i)).collect();
                let mut sequential = batched.clone();
                op.apply_batch(&mut batched).unwrap();
                for s in &mut sequential {
                    s.apply_fused(op).unwrap();
                }
                for (b, s) in batched.iter().zip(&sequential) {
                    assert!(b.approx_eq(s, 0.0), "batch diverged for {}", op.kernel_name());
                }
            }
        }
    }

    #[test]
    fn apply_batch_rejects_bad_operands_before_touching_amplitudes() {
        let mut states = vec![StateVector::zero_state(2), StateVector::zero_state(2)];
        assert!(FusedOp::Cx { control: 5, target: 0 }.apply_batch(&mut states).is_err());
        assert!(FusedOp::Ccx { control_a: 0, control_b: 1, target: 1 }
            .apply_batch(&mut states)
            .is_err());
        let pristine = StateVector::zero_state(2);
        assert!(states.iter().all(|s| s.approx_eq(&pristine, 0.0)));
        // Mixed register widths are rejected up front.
        let mut mixed = vec![StateVector::zero_state(2), StateVector::zero_state(3)];
        assert!(FusedOp::Cx { control: 1, target: 0 }.apply_batch(&mut mixed).is_err());
        // An empty batch is a no-op even for an invalid op.
        assert!(FusedOp::Cx { control: 5, target: 0 }.apply_batch(&mut []).is_ok());
    }
}
