use std::error::Error;
use std::fmt;

/// Errors produced by state-vector and density-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateVecError {
    /// A qubit index was at least the register width.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Number of qubits in the register.
        n_qubits: usize,
    },
    /// The same qubit was passed twice to a two-qubit operation.
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// An amplitude buffer had the wrong length for the register size.
    DimensionMismatch {
        /// Expected amplitude count (`2^n`).
        expected: usize,
        /// Actual amplitude count.
        actual: usize,
    },
    /// Two registers that must match in width did not.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// A register of this many qubits cannot be represented.
    TooManyQubits {
        /// Requested qubit count.
        n_qubits: usize,
        /// Maximum supported by this type.
        max: usize,
    },
}

impl fmt::Display for StateVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StateVecError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit index {qubit} out of range for {n_qubits}-qubit register")
            }
            StateVecError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit operation received duplicate qubit {qubit}")
            }
            StateVecError::DimensionMismatch { expected, actual } => {
                write!(f, "amplitude buffer has {actual} entries, expected {expected}")
            }
            StateVecError::WidthMismatch { left, right } => {
                write!(f, "register widths differ: {left} vs {right} qubits")
            }
            StateVecError::TooManyQubits { n_qubits, max } => {
                write!(f, "{n_qubits} qubits exceeds the supported maximum of {max}")
            }
        }
    }
}

impl Error for StateVecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StateVecError::QubitOutOfRange { qubit: 5, n_qubits: 3 };
        assert_eq!(e.to_string(), "qubit index 5 out of range for 3-qubit register");
        let e = StateVecError::DimensionMismatch { expected: 8, actual: 4 };
        assert!(e.to_string().contains("expected 8"));
        let e = StateVecError::DuplicateQubit { qubit: 2 };
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StateVecError>();
    }
}
