use std::fmt;
use std::str::FromStr;

use crate::Matrix2;

/// One of the three non-identity Pauli operators used as error operators in
/// the noisy simulation (paper §III.B, Equation 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pauli {
    /// Bit flip.
    X,
    /// Bit-and-phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All three operators in canonical (sort) order.
    pub const ALL: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// The dense matrix of this operator.
    pub fn matrix(self) -> Matrix2 {
        match self {
            Pauli::X => Matrix2::x(),
            Pauli::Y => Matrix2::y(),
            Pauli::Z => Matrix2::z(),
        }
    }

    /// Stable small integer code used for canonical trial ordering.
    pub fn code(self) -> u8 {
        match self {
            Pauli::X => 0,
            Pauli::Y => 1,
            Pauli::Z => 2,
        }
    }

    /// Inverse of [`Pauli::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code > 2`.
    pub fn from_code(code: u8) -> Pauli {
        match code {
            0 => Pauli::X,
            1 => Pauli::Y,
            2 => Pauli::Z,
            _ => panic!("invalid Pauli code {code}"),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pauli::X => write!(f, "X"),
            Pauli::Y => write!(f, "Y"),
            Pauli::Z => write!(f, "Z"),
        }
    }
}

/// Error returned when parsing a [`Pauli`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError(pub(crate) String);

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Pauli operator {:?}, expected X, Y, or Z", self.0)
    }
}

impl std::error::Error for ParsePauliError {}

impl FromStr for Pauli {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "X" | "x" => Ok(Pauli::X),
            "Y" | "y" => Ok(Pauli::Y),
            "Z" | "z" => Ok(Pauli::Z),
            other => Err(ParsePauliError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOL;

    #[test]
    fn codes_roundtrip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_code(p.code()), p);
        }
    }

    #[test]
    #[should_panic(expected = "invalid Pauli code")]
    fn from_code_rejects_out_of_range() {
        let _ = Pauli::from_code(3);
    }

    #[test]
    fn parse_roundtrip_and_rejects_garbage() {
        for p in Pauli::ALL {
            assert_eq!(p.to_string().parse::<Pauli>().unwrap(), p);
        }
        assert!("W".parse::<Pauli>().is_err());
        let err = "I".parse::<Pauli>().unwrap_err();
        assert!(err.to_string().contains("expected X, Y, or Z"));
    }

    #[test]
    fn matrices_are_involutive() {
        for p in Pauli::ALL {
            let m = p.matrix();
            assert!((m * m).approx_eq(&Matrix2::identity(), TOL));
        }
    }

    #[test]
    fn ordering_is_x_y_z() {
        assert!(Pauli::X < Pauli::Y && Pauli::Y < Pauli::Z);
    }
}
