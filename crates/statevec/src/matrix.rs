use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;
use std::ops::Mul;

use crate::C64;

fn c(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}

/// A dense 2×2 complex matrix (one-qubit operator), row major.
///
/// ```
/// use qsim_statevec::Matrix2;
/// let h = Matrix2::h();
/// assert!((h * h).approx_eq(&Matrix2::identity(), 1e-12));
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Matrix2(pub [[C64; 2]; 2]);

impl Matrix2 {
    /// Identity operator.
    pub fn identity() -> Self {
        Matrix2([[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(1.0, 0.0)]])
    }

    /// Pauli X.
    pub fn x() -> Self {
        Matrix2([[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]])
    }

    /// Pauli Y.
    pub fn y() -> Self {
        Matrix2([[c(0.0, 0.0), c(0.0, -1.0)], [c(0.0, 1.0), c(0.0, 0.0)]])
    }

    /// Pauli Z.
    pub fn z() -> Self {
        Matrix2([[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(-1.0, 0.0)]])
    }

    /// Hadamard.
    pub fn h() -> Self {
        let s = FRAC_1_SQRT_2;
        Matrix2([[c(s, 0.0), c(s, 0.0)], [c(s, 0.0), c(-s, 0.0)]])
    }

    /// Phase gate S = diag(1, i).
    pub fn s() -> Self {
        Matrix2([[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, 1.0)]])
    }

    /// S† = diag(1, −i).
    pub fn sdg() -> Self {
        Matrix2([[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), c(0.0, -1.0)]])
    }

    /// T = diag(1, e^{iπ/4}).
    pub fn t() -> Self {
        Matrix2::phase(std::f64::consts::FRAC_PI_4)
    }

    /// T† = diag(1, e^{−iπ/4}).
    pub fn tdg() -> Self {
        Matrix2::phase(-std::f64::consts::FRAC_PI_4)
    }

    /// Phase gate diag(1, e^{iλ}).
    pub fn phase(lambda: f64) -> Self {
        Matrix2([[c(1.0, 0.0), c(0.0, 0.0)], [c(0.0, 0.0), C64::from_polar(1.0, lambda)]])
    }

    /// Rotation about X: e^{−iθX/2}.
    pub fn rx(theta: f64) -> Self {
        let (s, co) = (theta / 2.0).sin_cos();
        Matrix2([[c(co, 0.0), c(0.0, -s)], [c(0.0, -s), c(co, 0.0)]])
    }

    /// Rotation about Y: e^{−iθY/2}.
    pub fn ry(theta: f64) -> Self {
        let (s, co) = (theta / 2.0).sin_cos();
        Matrix2([[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]])
    }

    /// Rotation about Z: e^{−iθZ/2} = diag(e^{−iθ/2}, e^{iθ/2}).
    pub fn rz(theta: f64) -> Self {
        Matrix2([
            [C64::from_polar(1.0, -theta / 2.0), c(0.0, 0.0)],
            [c(0.0, 0.0), C64::from_polar(1.0, theta / 2.0)],
        ])
    }

    /// The general single-qubit gate `U(θ, φ, λ)` in the OpenQASM convention:
    ///
    /// ```text
    /// U = [[cos(θ/2),            −e^{iλ} sin(θ/2)],
    ///      [e^{iφ} sin(θ/2),  e^{i(φ+λ)} cos(θ/2)]]
    /// ```
    pub fn u(theta: f64, phi: f64, lambda: f64) -> Self {
        let (s, co) = (theta / 2.0).sin_cos();
        Matrix2([
            [c(co, 0.0), -C64::from_polar(s, lambda)],
            [C64::from_polar(s, phi), C64::from_polar(co, phi + lambda)],
        ])
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        let m = &self.0;
        Matrix2([[m[0][0].conj(), m[1][0].conj()], [m[0][1].conj(), m[1][1].conj()]])
    }

    /// `true` if `self · self† ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Matrix2::identity(), tol)
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix2, tol: f64) -> bool {
        self.0.iter().flatten().zip(other.0.iter().flatten()).all(|(a, b)| (a - b).norm() <= tol)
    }

    /// Approximate equality up to a global phase factor.
    ///
    /// Two unitaries that differ only by `e^{iγ}` act identically on quantum
    /// states, so circuit-identity tests use this comparison.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix2, tol: f64) -> bool {
        // Find the largest-magnitude entry of `other` to fix the phase.
        let mut best = (0usize, 0usize);
        let mut best_norm = 0.0;
        for (i, row) in other.0.iter().enumerate() {
            for (j, e) in row.iter().enumerate() {
                if e.norm() > best_norm {
                    best_norm = e.norm();
                    best = (i, j);
                }
            }
        }
        if best_norm <= tol {
            return self.approx_eq(other, tol);
        }
        let ratio = self.0[best.0][best.1] / other.0[best.0][best.1];
        if (ratio.norm() - 1.0).abs() > tol {
            return false;
        }
        let scaled = Matrix2([
            [other.0[0][0] * ratio, other.0[0][1] * ratio],
            [other.0[1][0] * ratio, other.0[1][1] * ratio],
        ]);
        self.approx_eq(&scaled, tol)
    }

    /// Decompose this unitary as `e^{iα} Rz(φ) Ry(θ) Rz(λ)` and return
    /// `(θ, φ, λ)` such that [`Matrix2::u`]`(θ, φ, λ)` equals `self` up to a
    /// global phase.
    ///
    /// Used by the transpiler's single-qubit fusion pass to re-synthesise a
    /// run of merged rotations as one hardware `U` gate.
    pub fn zyz_angles(&self) -> (f64, f64, f64) {
        let m = &self.0;
        // Strip global phase: make det = 1 (SU(2)).
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        let phase = det.arg() / 2.0;
        let inv = C64::from_polar(1.0, -phase);
        let a = m[0][0] * inv;
        let b = m[0][1] * inv;
        let cc = m[1][0] * inv;
        let d = m[1][1] * inv;
        // SU(2): [[cos(θ/2) e^{−i(φ+λ)/2}, −sin(θ/2) e^{−i(φ−λ)/2}],
        //         [sin(θ/2) e^{ i(φ−λ)/2},  cos(θ/2) e^{ i(φ+λ)/2}]]
        // atan2(|sin|, |cos|) is well-conditioned at θ ≈ 0 and θ ≈ π, where
        // acos(|cos|) would amplify round-off by ~1/√ε (enough to perturb
        // measured distributions above test tolerances).
        let theta = 2.0 * cc.norm().atan2(a.norm());
        let (phi, lambda) = if a.norm() > 1e-12 && cc.norm() > 1e-12 {
            let sum = 2.0 * d.arg(); // φ + λ
            let diff = 2.0 * cc.arg(); // φ − λ
            ((sum + diff) / 2.0, (sum - diff) / 2.0)
        } else if a.norm() <= 1e-12 {
            // θ = π: only φ − λ matters.
            (2.0 * cc.arg(), 0.0)
        } else {
            // θ = 0: only φ + λ matters.
            (2.0 * d.arg(), 0.0)
        };
        let _ = b;
        (theta, phi, lambda)
    }
}

impl Default for Matrix2 {
    fn default() -> Self {
        Matrix2::identity()
    }
}

impl Mul for Matrix2 {
    type Output = Matrix2;

    fn mul(self, rhs: Matrix2) -> Matrix2 {
        let mut out = [[c(0.0, 0.0); 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = self.0[i][0] * rhs.0[0][j] + self.0[i][1] * rhs.0[1][j];
            }
        }
        Matrix2(out)
    }
}

impl fmt::Display for Matrix2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.0 {
            writeln!(
                f,
                "[{:.4}{:+.4}i, {:.4}{:+.4}i]",
                row[0].re, row[0].im, row[1].re, row[1].im
            )?;
        }
        Ok(())
    }
}

/// A dense 4×4 complex matrix (two-qubit operator), row major.
///
/// Local basis ordering: index `2·bit(high) + bit(low)` where `(low, high)`
/// are the qubit operands of [`crate::StateVector::apply_2q`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Matrix4(pub [[C64; 4]; 4]);

impl Matrix4 {
    /// Identity operator.
    pub fn identity() -> Self {
        let mut m = [[c(0.0, 0.0); 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = c(1.0, 0.0);
        }
        Matrix4(m)
    }

    /// CNOT with the control on the **high** local bit and target on the low
    /// local bit: `|c t⟩ → |c, t⊕c⟩`.
    pub fn cx() -> Self {
        Matrix4::controlled(&Matrix2::x())
    }

    /// Controlled-Z (symmetric in its operands).
    pub fn cz() -> Self {
        Matrix4::controlled(&Matrix2::z())
    }

    /// SWAP.
    pub fn swap() -> Self {
        let mut m = [[c(0.0, 0.0); 4]; 4];
        m[0][0] = c(1.0, 0.0);
        m[1][2] = c(1.0, 0.0);
        m[2][1] = c(1.0, 0.0);
        m[3][3] = c(1.0, 0.0);
        Matrix4(m)
    }

    /// Controlled-phase `diag(1, 1, 1, e^{iλ})` (symmetric in its operands).
    pub fn cphase(lambda: f64) -> Self {
        let mut m = Matrix4::identity();
        m.0[3][3] = C64::from_polar(1.0, lambda);
        m
    }

    /// Build the controlled version of a one-qubit gate, control on the
    /// **high** local bit.
    pub fn controlled(u: &Matrix2) -> Self {
        let mut m = Matrix4::identity().0;
        m[2][2] = u.0[0][0];
        m[2][3] = u.0[0][1];
        m[3][2] = u.0[1][0];
        m[3][3] = u.0[1][1];
        Matrix4(m)
    }

    /// Kronecker product `high ⊗ low`, matching the local basis ordering.
    pub fn kron(high: &Matrix2, low: &Matrix2) -> Self {
        let mut m = [[c(0.0, 0.0); 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, entry) in row.iter_mut().enumerate() {
                *entry = high.0[i >> 1][j >> 1] * low.0[i & 1][j & 1];
            }
        }
        Matrix4(m)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        let mut m = [[c(0.0, 0.0); 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = self.0[j][i].conj();
            }
        }
        Matrix4(m)
    }

    /// `true` if `self · self† ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Matrix4::identity(), tol)
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix4, tol: f64) -> bool {
        self.0.iter().flatten().zip(other.0.iter().flatten()).all(|(a, b)| (a - b).norm() <= tol)
    }

    /// Exchange the roles of the low and high local bits (conjugation by
    /// SWAP). `apply_2q(m, a, b)` equals `apply_2q(m.swapped_operands(), b, a)`.
    pub fn swapped_operands(&self) -> Self {
        let perm = [0usize, 2, 1, 3];
        let mut m = [[c(0.0, 0.0); 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = self.0[perm[i]][perm[j]];
            }
        }
        Matrix4(m)
    }
}

impl Default for Matrix4 {
    fn default() -> Self {
        Matrix4::identity()
    }
}

impl Mul for Matrix4 {
    type Output = Matrix4;

    fn mul(self, rhs: Matrix4) -> Matrix4 {
        let mut out = [[c(0.0, 0.0); 4]; 4];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = (0..4).map(|k| self.0[i][k] * rhs.0[k][j]).sum();
            }
        }
        Matrix4(out)
    }
}

impl fmt::Display for Matrix4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.0 {
            write!(f, "[")?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}{:+.4}i", e.re, e.im)?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOL;
    use std::f64::consts::PI;

    #[test]
    fn standard_1q_gates_are_unitary() {
        for m in [
            Matrix2::identity(),
            Matrix2::x(),
            Matrix2::y(),
            Matrix2::z(),
            Matrix2::h(),
            Matrix2::s(),
            Matrix2::sdg(),
            Matrix2::t(),
            Matrix2::tdg(),
            Matrix2::phase(0.37),
            Matrix2::rx(1.1),
            Matrix2::ry(-2.3),
            Matrix2::rz(0.9),
            Matrix2::u(0.4, 1.2, -0.7),
        ] {
            assert!(m.is_unitary(TOL), "not unitary: {m}");
        }
    }

    #[test]
    fn standard_2q_gates_are_unitary() {
        for m in [
            Matrix4::identity(),
            Matrix4::cx(),
            Matrix4::cz(),
            Matrix4::swap(),
            Matrix4::cphase(0.7),
        ] {
            assert!(m.is_unitary(TOL), "not unitary: {m}");
        }
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (Matrix2::x(), Matrix2::y(), Matrix2::z());
        assert!((x * x).approx_eq(&Matrix2::identity(), TOL));
        assert!((y * y).approx_eq(&Matrix2::identity(), TOL));
        assert!((z * z).approx_eq(&Matrix2::identity(), TOL));
        // XY = iZ
        let xy = x * y;
        let iz = Matrix2([
            [z.0[0][0] * C64::i(), z.0[0][1] * C64::i()],
            [z.0[1][0] * C64::i(), z.0[1][1] * C64::i()],
        ]);
        assert!(xy.approx_eq(&iz, TOL));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let hxh = Matrix2::h() * Matrix2::x() * Matrix2::h();
        assert!(hxh.approx_eq(&Matrix2::z(), TOL));
    }

    #[test]
    fn u_gate_specialisations() {
        assert!(Matrix2::u(PI / 2.0, 0.0, PI).approx_eq(&Matrix2::h(), TOL));
        assert!(Matrix2::u(PI, 0.0, PI).approx_eq(&Matrix2::x(), TOL));
        assert!(Matrix2::u(0.0, 0.0, 0.73).approx_eq(&Matrix2::phase(0.73), TOL));
    }

    #[test]
    fn rz_is_phase_up_to_global_phase() {
        let rz = Matrix2::rz(0.81);
        let p = Matrix2::phase(0.81);
        assert!(rz.approx_eq_up_to_phase(&p, TOL));
        assert!(!rz.approx_eq(&p, TOL));
    }

    #[test]
    fn zyz_roundtrip_reconstructs_up_to_phase() {
        let cases = [
            Matrix2::h(),
            Matrix2::x(),
            Matrix2::t(),
            Matrix2::rx(0.7),
            Matrix2::ry(2.1),
            Matrix2::rz(-1.3),
            Matrix2::u(0.3, 1.9, -2.5),
            Matrix2::u(PI, 0.2, 0.4),
            Matrix2::identity(),
        ];
        for m in cases {
            let (theta, phi, lambda) = m.zyz_angles();
            let rebuilt = Matrix2::u(theta, phi, lambda);
            assert!(
                rebuilt.approx_eq_up_to_phase(&m, 1e-9),
                "roundtrip failed for {m}: got {rebuilt}"
            );
        }
    }

    #[test]
    fn controlled_places_control_on_high_bit() {
        let cx = Matrix4::cx();
        // |10⟩ (high=1 control set, low=0) → |11⟩
        assert_eq!(cx.0[3][2], C64::new(1.0, 0.0));
        assert_eq!(cx.0[2][3], C64::new(1.0, 0.0));
        // |01⟩ (control clear) unchanged
        assert_eq!(cx.0[1][1], C64::new(1.0, 0.0));
    }

    #[test]
    fn kron_matches_manual_entries() {
        let m = Matrix4::kron(&Matrix2::z(), &Matrix2::x());
        // (Z ⊗ X)|00⟩ = |01⟩
        assert_eq!(m.0[1][0], C64::new(1.0, 0.0));
        // (Z ⊗ X)|10⟩ = −|11⟩
        assert_eq!(m.0[3][2], C64::new(-1.0, 0.0));
    }

    #[test]
    fn swapped_operands_is_involutive_and_fixes_symmetric_gates() {
        assert!(Matrix4::cz().swapped_operands().approx_eq(&Matrix4::cz(), TOL));
        assert!(Matrix4::swap().swapped_operands().approx_eq(&Matrix4::swap(), TOL));
        let cx = Matrix4::cx();
        assert!(cx.swapped_operands().swapped_operands().approx_eq(&cx, TOL));
        assert!(!cx.swapped_operands().approx_eq(&cx, TOL));
    }

    #[test]
    fn cx_decomposes_cz_with_hadamards() {
        // CZ = (I ⊗ H) CX (I ⊗ H) with target on the low bit.
        let h_low = Matrix4::kron(&Matrix2::identity(), &Matrix2::h());
        let composed = h_low * Matrix4::cx() * h_low;
        assert!(composed.approx_eq(&Matrix4::cz(), TOL));
    }

    #[test]
    fn swap_is_three_cnots() {
        let ab = Matrix4::cx();
        let ba = Matrix4::cx().swapped_operands();
        let composed = ab * ba * ab;
        assert!(composed.approx_eq(&Matrix4::swap(), TOL));
    }
}
