//! Bit-exact binary serialization of amplitude buffers.
//!
//! The persistent MSV store snapshots prefix states to disk and must
//! restore them **bitwise identical** — a single flipped mantissa bit
//! breaks the executors' exactness contract. Amplitudes therefore travel
//! as raw IEEE-754 little-endian `f64` pairs `(re, im)`, never through a
//! decimal round-trip. Decoding allocates through [`AmpBuf`] so restored
//! states keep the 64-byte alignment the kernels rely on.

use crate::{AmpBuf, StateVecError, C64};

/// Bytes per encoded amplitude: two little-endian `f64`s.
pub const AMP_BYTES: usize = 16;

/// Encode amplitudes as little-endian `(re, im)` `f64` pairs.
pub fn amps_to_le_bytes(amps: &[C64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(amps.len() * AMP_BYTES);
    for a in amps {
        out.extend_from_slice(&a.re.to_le_bytes());
        out.extend_from_slice(&a.im.to_le_bytes());
    }
    out
}

/// Decode a buffer produced by [`amps_to_le_bytes`] into an aligned
/// [`AmpBuf`].
///
/// # Errors
///
/// Returns [`StateVecError::DimensionMismatch`] (in bytes) when `bytes` is
/// not a whole number of encoded amplitudes.
pub fn amps_from_le_bytes(bytes: &[u8]) -> Result<AmpBuf, StateVecError> {
    if !bytes.len().is_multiple_of(AMP_BYTES) {
        return Err(StateVecError::DimensionMismatch {
            expected: bytes.len() / AMP_BYTES * AMP_BYTES,
            actual: bytes.len(),
        });
    }
    let mut buf = AmpBuf::zeroed(bytes.len() / AMP_BYTES);
    for (chunk, amp) in bytes.chunks_exact(AMP_BYTES).zip(buf.iter_mut()) {
        let re = f64::from_le_bytes(chunk[0..8].try_into().expect("8-byte slice"));
        let im = f64::from_le_bytes(chunk[8..16].try_into().expect("8-byte slice"));
        *amp = C64::new(re, im);
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AMP_ALIGN;

    #[test]
    fn round_trips_bitwise_including_specials() {
        let amps = [
            C64::new(0.1 + 0.2, -0.3), // not exactly representable — bits matter
            C64::new(f64::MIN_POSITIVE, -0.0),
            C64::new(1.0, f64::EPSILON),
            C64::new(-1.5e308, 4.9e-324), // near-overflow and subnormal
        ];
        let bytes = amps_to_le_bytes(&amps);
        assert_eq!(bytes.len(), amps.len() * AMP_BYTES);
        let back = amps_from_le_bytes(&bytes).unwrap();
        assert_eq!(back.len(), amps.len());
        for (orig, got) in amps.iter().zip(back.iter()) {
            assert_eq!(orig.re.to_bits(), got.re.to_bits());
            assert_eq!(orig.im.to_bits(), got.im.to_bits());
        }
        assert_eq!(back.as_ptr() as usize % AMP_ALIGN, 0, "restored buffer is aligned");
    }

    #[test]
    fn rejects_ragged_payloads() {
        assert!(amps_from_le_bytes(&[0u8; 15]).is_err());
        assert!(amps_from_le_bytes(&[0u8; 17]).is_err());
        let empty = amps_from_le_bytes(&[]).unwrap();
        assert!(empty.is_empty());
    }
}
