use crate::{Matrix2, Pauli, StateVecError, StateVector, C64};

/// Maximum register width for the dense density-matrix simulator
/// (`4^n` entries grow twice as fast as a state vector — the very point the
/// paper makes against density-matrix noisy simulation in §II).
const MAX_DM_QUBITS: usize = 12;

/// An exact mixed-state simulator over the full `2^n × 2^n` density matrix.
///
/// This is the *alternative* noisy-simulation approach discussed in the
/// paper's Related Work: it captures a noise channel exactly in a single run,
/// at the price of squaring the memory requirement. We use it as ground
/// truth: the Monte-Carlo outcome distribution (baseline or
/// redundancy-eliminated — they are identical) must converge to the density
/// matrix's Born distribution.
///
/// ```
/// use qsim_statevec::{DensityMatrix, Matrix2};
///
/// # fn main() -> Result<(), qsim_statevec::StateVecError> {
/// let mut rho = DensityMatrix::zero_state(1)?;
/// rho.apply_1q(&Matrix2::h(), 0)?;
/// rho.depolarize_1q(0, 0.3)?; // fully symmetric Pauli channel
/// let p = rho.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12); // depolarizing preserves H|0⟩ populations
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    /// Row-major `dim × dim` matrix.
    elems: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::TooManyQubits`] beyond 12 qubits.
    pub fn zero_state(n_qubits: usize) -> Result<Self, StateVecError> {
        if n_qubits > MAX_DM_QUBITS {
            return Err(StateVecError::TooManyQubits { n_qubits, max: MAX_DM_QUBITS });
        }
        let dim = 1usize << n_qubits;
        let mut elems = vec![C64::new(0.0, 0.0); dim * dim];
        elems[0] = C64::new(1.0, 0.0);
        Ok(DensityMatrix { n_qubits, dim, elems })
    }

    /// The pure density matrix `|ψ⟩⟨ψ|` of a state vector.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::TooManyQubits`] beyond 12 qubits.
    pub fn from_statevector(psi: &StateVector) -> Result<Self, StateVecError> {
        let n_qubits = psi.n_qubits();
        if n_qubits > MAX_DM_QUBITS {
            return Err(StateVecError::TooManyQubits { n_qubits, max: MAX_DM_QUBITS });
        }
        let dim = psi.dim();
        let amps = psi.amplitudes();
        let mut elems = vec![C64::new(0.0, 0.0); dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                elems[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        Ok(DensityMatrix { n_qubits, dim, elems })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The raw row-major elements (`2ⁿ × 2ⁿ`).
    pub fn elements(&self) -> &[C64] {
        &self.elems
    }

    /// Trace of the matrix (1 for physical states).
    pub fn trace(&self) -> C64 {
        (0..self.dim).map(|i| self.elems[i * self.dim + i]).sum()
    }

    /// Born-rule probabilities (the diagonal, real parts).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.elems[i * self.dim + i].re).collect()
    }

    /// Unitary conjugation `ρ → U ρ U†` for a one-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_1q(&mut self, m: &Matrix2, qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        self.left_mul_1q(m, qubit);
        self.right_mul_adjoint_1q(m, qubit);
        Ok(())
    }

    /// Apply a CNOT by permuting rows and columns.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_cx(&mut self, control: usize, target: usize) -> Result<(), StateVecError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(StateVecError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let d = self.dim;
        // Row permutation.
        for i in 0..d {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                for k in 0..d {
                    self.elems.swap(i * d + k, j * d + k);
                }
            }
        }
        // Column permutation.
        for i in 0..d {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                for row in 0..d {
                    self.elems.swap(row * d + i, row * d + j);
                }
            }
        }
        Ok(())
    }

    /// The symmetric one-qubit depolarizing channel of the paper's Fig. 3:
    /// with total probability `p_total`, replace by X, Y, or Z conjugation
    /// (each `p_total/3`); keep the state otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn depolarize_1q(&mut self, qubit: usize, p_total: f64) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let p_each = p_total / 3.0;
        let mut acc = self.scaled(1.0 - p_total);
        for pauli in Pauli::ALL {
            let mut branch = self.clone();
            branch.apply_1q(&pauli.matrix(), qubit)?;
            acc.add_scaled(&branch, p_each);
        }
        *self = acc;
        Ok(())
    }

    /// A general one-qubit Pauli channel
    /// `ρ → (1−px−py−pz)ρ + px·XρX + py·YρY + pz·ZρZ` — the exact channel
    /// whose Monte-Carlo unravelling uses asymmetric `PauliWeights`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum above 1.
    pub fn pauli_channel_1q(
        &mut self,
        qubit: usize,
        px: f64,
        py: f64,
        pz: f64,
    ) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let total = px + py + pz;
        assert!(
            px >= 0.0 && py >= 0.0 && pz >= 0.0 && total <= 1.0 + 1e-12,
            "invalid Pauli channel probabilities ({px}, {py}, {pz})"
        );
        let mut acc = self.scaled(1.0 - total);
        for (pauli, p) in [(Pauli::X, px), (Pauli::Y, py), (Pauli::Z, pz)] {
            if p == 0.0 {
                continue;
            }
            let mut branch = self.clone();
            branch.apply_1q(&pauli.matrix(), qubit)?;
            acc.add_scaled(&branch, p);
        }
        *self = acc;
        Ok(())
    }

    /// The symmetric two-qubit depolarizing channel: with total probability
    /// `p_total`, apply one of the 15 non-identity two-qubit Pauli
    /// conjugations, uniformly.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn depolarize_2q(&mut self, a: usize, b: usize, p_total: f64) -> Result<(), StateVecError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(StateVecError::DuplicateQubit { qubit: a });
        }
        let p_each = p_total / 15.0;
        let mut acc = self.scaled(1.0 - p_total);
        for pa in 0..4u8 {
            for pb in 0..4u8 {
                if pa == 0 && pb == 0 {
                    continue;
                }
                let mut branch = self.clone();
                if pa > 0 {
                    branch.apply_1q(&Pauli::from_code(pa - 1).matrix(), a)?;
                }
                if pb > 0 {
                    branch.apply_1q(&Pauli::from_code(pb - 1).matrix(), b)?;
                }
                acc.add_scaled(&branch, p_each);
            }
        }
        *self = acc;
        Ok(())
    }

    /// Apply a classical readout-error confusion to a Born distribution:
    /// each qubit's bit flips independently with `flip_probs[qubit]`.
    ///
    /// This acts on measurement *results*, not the quantum state, mirroring
    /// the paper's measurement-error model (§III.B.1).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] if `flip_probs` has the wrong
    /// length.
    pub fn readout_distribution(&self, flip_probs: &[f64]) -> Result<Vec<f64>, StateVecError> {
        if flip_probs.len() != self.n_qubits {
            return Err(StateVecError::WidthMismatch {
                left: self.n_qubits,
                right: flip_probs.len(),
            });
        }
        let mut dist = self.probabilities();
        for (q, &p) in flip_probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mask = 1usize << q;
            let mut next = vec![0.0f64; dist.len()];
            for (i, &w) in dist.iter().enumerate() {
                next[i] += w * (1.0 - p);
                next[i ^ mask] += w * p;
            }
            dist = next;
        }
        Ok(dist)
    }

    /// Trace purity `Tr(ρ²)`: 1 for pure states, `1/2ᵏ` for the maximally
    /// mixed state on `k` qubits.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_{ij} ρ_ij ρ_ji = Σ_{ij} |ρ_ij|² for Hermitian ρ.
        self.elems.iter().map(|e| e.norm_sqr()).sum()
    }

    /// Linear entropy `1 − Tr(ρ²)`, a 0-to-(1−1/2ᵏ) mixedness measure. On
    /// the reduced state of a pure bipartite system it quantifies
    /// entanglement across the cut (0 = product state).
    pub fn linear_entropy(&self) -> f64 {
        1.0 - self.purity()
    }

    fn scaled(&self, s: f64) -> DensityMatrix {
        let mut out = self.clone();
        for e in &mut out.elems {
            *e *= s;
        }
        out
    }

    fn add_scaled(&mut self, other: &DensityMatrix, s: f64) {
        for (a, b) in self.elems.iter_mut().zip(&other.elems) {
            *a += b * s;
        }
    }

    fn left_mul_1q(&mut self, m: &Matrix2, qubit: usize) {
        let stride = 1usize << qubit;
        let d = self.dim;
        let [[m00, m01], [m10, m11]] = m.0;
        for col in 0..d {
            let mut base = 0;
            while base < d {
                for i in base..base + stride {
                    let a = self.elems[i * d + col];
                    let b = self.elems[(i + stride) * d + col];
                    self.elems[i * d + col] = m00 * a + m01 * b;
                    self.elems[(i + stride) * d + col] = m10 * a + m11 * b;
                }
                base += stride << 1;
            }
        }
    }

    fn right_mul_adjoint_1q(&mut self, m: &Matrix2, qubit: usize) {
        let stride = 1usize << qubit;
        let d = self.dim;
        let [[m00, m01], [m10, m11]] = m.0;
        // (ρ U†)_{rj} = Σ_k ρ_{rk} conj(U_{jk})
        for row in 0..d {
            let mut base = 0;
            while base < d {
                for j in base..base + stride {
                    let a = self.elems[row * d + j];
                    let b = self.elems[row * d + j + stride];
                    self.elems[row * d + j] = a * m00.conj() + b * m01.conj();
                    self.elems[row * d + j + stride] = a * m10.conj() + b * m11.conj();
                }
                base += stride << 1;
            }
        }
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), StateVecError> {
        if qubit >= self.n_qubits {
            Err(StateVecError::QubitOutOfRange { qubit, n_qubits: self.n_qubits })
        } else {
            Ok(())
        }
    }
}

impl StateVector {
    /// Trace out everything except `keep`, returning the reduced density
    /// matrix over the kept qubits (in the order given: `keep[0]` becomes
    /// the new qubit 0).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`],
    /// [`StateVecError::DuplicateQubit`], or
    /// [`StateVecError::TooManyQubits`] if more than 12 qubits are kept.
    pub fn reduced_density_matrix(&self, keep: &[usize]) -> Result<DensityMatrix, StateVecError> {
        let n = self.n_qubits();
        for (i, &q) in keep.iter().enumerate() {
            if q >= n {
                return Err(StateVecError::QubitOutOfRange { qubit: q, n_qubits: n });
            }
            if keep[..i].contains(&q) {
                return Err(StateVecError::DuplicateQubit { qubit: q });
            }
        }
        let k = keep.len();
        if k > MAX_DM_QUBITS {
            return Err(StateVecError::TooManyQubits { n_qubits: k, max: MAX_DM_QUBITS });
        }
        let rest: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
        let dim = 1usize << k;
        let scatter = |bits: usize, positions: &[usize]| -> usize {
            positions
                .iter()
                .enumerate()
                .fold(0usize, |acc, (pos, &q)| acc | ((bits >> pos & 1) << q))
        };
        let amps = self.amplitudes();
        let mut elems = vec![crate::C64::new(0.0, 0.0); dim * dim];
        for r in 0..1usize << rest.len() {
            let rest_bits = scatter(r, &rest);
            for i in 0..dim {
                let amp_i = amps[scatter(i, keep) | rest_bits];
                if amp_i.re == 0.0 && amp_i.im == 0.0 {
                    continue;
                }
                for j in 0..dim {
                    let amp_j = amps[scatter(j, keep) | rest_bits];
                    elems[i * dim + j] += amp_i * amp_j.conj();
                }
            }
        }
        let mut rho = DensityMatrix::zero_state(k)?;
        rho.elems = elems;
        Ok(rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix4;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zero_state_has_unit_trace() {
        let rho = DensityMatrix::zero_state(3).unwrap();
        assert!(close(rho.trace().re, 1.0));
        assert!(close(rho.probabilities()[0], 1.0));
    }

    #[test]
    fn pure_unitary_evolution_matches_statevector() {
        let mut psi = StateVector::zero_state(3);
        let mut rho = DensityMatrix::zero_state(3).unwrap();
        for q in 0..3 {
            let u = Matrix2::u(0.4 * (q + 1) as f64, 0.9, -0.3);
            psi.apply_1q(&u, q).unwrap();
            rho.apply_1q(&u, q).unwrap();
        }
        psi.apply_cx(0, 2).unwrap();
        rho.apply_cx(0, 2).unwrap();
        let p_sv = psi.probabilities();
        let p_dm = rho.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
    }

    #[test]
    fn from_statevector_matches_manual_outer_product() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_cx(0, 1).unwrap();
        let rho = DensityMatrix::from_statevector(&psi).unwrap();
        assert!(close(rho.trace().re, 1.0));
        let p = rho.probabilities();
        assert!(close(p[0], 0.5) && close(p[3], 0.5));
    }

    #[test]
    fn depolarize_preserves_trace_and_mixes() {
        let mut rho = DensityMatrix::zero_state(1).unwrap();
        rho.depolarize_1q(0, 0.75).unwrap(); // maximal symmetric channel
        assert!(close(rho.trace().re, 1.0));
        let p = rho.probabilities();
        // X and Y branches move |0⟩ to |1⟩: p1 = 2/3 · 0.75/… = 0.25·2 = 0.5
        assert!(close(p[0], 0.5) && close(p[1], 0.5));
    }

    #[test]
    fn pauli_channel_generalizes_depolarize() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_1q(&Matrix2::u(0.7, 0.2, -0.9), 0).unwrap();
        let rho0 = DensityMatrix::from_statevector(&psi).unwrap();
        // Symmetric special case agrees with depolarize_1q.
        let mut a = rho0.clone();
        a.pauli_channel_1q(0, 0.1, 0.1, 0.1).unwrap();
        let mut b = rho0.clone();
        b.depolarize_1q(0, 0.3).unwrap();
        for (x, y) in a.elems.iter().zip(&b.elems) {
            assert!((x - y).norm() < 1e-12);
        }
        // Pure dephasing kills off-diagonals proportionally: with pz the
        // coherence scales by (1 − 2pz).
        let mut c = rho0.clone();
        c.pauli_channel_1q(0, 0.0, 0.0, 0.25).unwrap();
        let d = 2;
        assert!((c.elems[1] - rho0.elems[1] * 0.5).norm() < 1e-12);
        assert!((c.elems[d] - rho0.elems[d] * 0.5).norm() < 1e-12);
        // Populations untouched by dephasing.
        assert!((c.elems[0] - rho0.elems[0]).norm() < 1e-12);
        assert!(close(c.trace().re, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid Pauli channel")]
    fn pauli_channel_rejects_bad_probabilities() {
        let mut rho = DensityMatrix::zero_state(1).unwrap();
        let _ = rho.pauli_channel_1q(0, 0.6, 0.6, 0.0);
    }

    #[test]
    fn depolarize_2q_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(2).unwrap();
        rho.apply_1q(&Matrix2::h(), 0).unwrap();
        rho.apply_cx(0, 1).unwrap();
        rho.depolarize_2q(0, 1, 0.2).unwrap();
        assert!(close(rho.trace().re, 1.0));
        let p = rho.probabilities();
        // Bell state partially depolarized: off-diagonal outcomes appear.
        assert!(p[1] > 0.0 && p[2] > 0.0);
        assert!(close(p.iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn depolarizing_channel_equals_monte_carlo_mixture() {
        // Deterministic check of the channel identity the Monte-Carlo
        // simulation realises statistically: ρ' = (1−p)ρ + p/3 Σ PρP.
        let mut psi = StateVector::zero_state(1);
        psi.apply_1q(&Matrix2::u(0.8, 0.2, 0.5), 0).unwrap();
        let rho0 = DensityMatrix::from_statevector(&psi).unwrap();
        let p_total = 0.3;
        let mut channel = rho0.clone();
        channel.depolarize_1q(0, p_total).unwrap();

        let mut mixture = rho0.scaled(1.0 - p_total);
        for pauli in Pauli::ALL {
            let mut psi_b = psi.clone();
            psi_b.apply_pauli(pauli, 0).unwrap();
            mixture.add_scaled(&DensityMatrix::from_statevector(&psi_b).unwrap(), p_total / 3.0);
        }
        for (a, b) in channel.elems.iter().zip(&mixture.elems) {
            assert!((a - b).norm() < 1e-10);
        }
    }

    #[test]
    fn readout_distribution_confuses_bits() {
        let rho = DensityMatrix::zero_state(2).unwrap();
        let dist = rho.readout_distribution(&[0.1, 0.0]).unwrap();
        assert!(close(dist[0], 0.9));
        assert!(close(dist[1], 0.1));
        assert!(close(dist[2], 0.0));
        assert!(rho.readout_distribution(&[0.1]).is_err());
    }

    #[test]
    fn rejects_oversized_registers() {
        assert!(DensityMatrix::zero_state(13).is_err());
    }

    #[test]
    fn cx_permutation_matches_statevector_convention() {
        // |10⟩ with control=1 → |11⟩
        let mut psi = StateVector::zero_state(2);
        psi.apply_1q(&Matrix2::x(), 1).unwrap();
        let mut rho = DensityMatrix::from_statevector(&psi).unwrap();
        rho.apply_cx(1, 0).unwrap();
        psi.apply_cx(1, 0).unwrap();
        let p_sv = psi.probabilities();
        let p_dm = rho.probabilities();
        for (a, b) in p_sv.iter().zip(&p_dm) {
            assert!(close(*a, *b));
        }
        assert!(close(p_dm[3], 1.0));
    }

    #[test]
    fn purity_distinguishes_pure_and_mixed() {
        let pure = DensityMatrix::zero_state(2).unwrap();
        assert!(close(pure.purity(), 1.0));
        assert!(close(pure.linear_entropy(), 0.0));
        let mut mixed = DensityMatrix::zero_state(1).unwrap();
        mixed.depolarize_1q(0, 0.75).unwrap(); // maximally mixed
        assert!(close(mixed.purity(), 0.5));
        assert!(close(mixed.linear_entropy(), 0.5));
    }

    #[test]
    fn reduced_density_matrix_of_product_state_is_pure() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_1q(&Matrix2::u(0.7, 0.1, -0.4), 2).unwrap();
        for keep in [vec![0usize], vec![1], vec![2], vec![0, 2]] {
            let rho = psi.reduced_density_matrix(&keep).unwrap();
            assert!(close(rho.purity(), 1.0), "keep {keep:?}: purity {}", rho.purity());
            assert!(close(rho.trace().re, 1.0));
        }
    }

    #[test]
    fn reduced_density_matrix_of_bell_half_is_maximally_mixed() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_cx(0, 1).unwrap();
        for keep in [0usize, 1] {
            let rho = psi.reduced_density_matrix(&[keep]).unwrap();
            assert!(close(rho.purity(), 0.5), "qubit {keep}");
            let p = rho.probabilities();
            assert!(close(p[0], 0.5) && close(p[1], 0.5));
        }
        // Keeping both qubits reproduces the pure state.
        let rho = psi.reduced_density_matrix(&[0, 1]).unwrap();
        assert!(close(rho.purity(), 1.0));
        assert!(close(rho.probabilities()[0], 0.5));
        assert!(close(rho.probabilities()[3], 0.5));
    }

    #[test]
    fn reduced_density_matrix_respects_keep_order() {
        // |01⟩ (qubit 0 = 1, qubit 1 = 0); keeping [1, 0] maps qubit 1 to
        // the new low bit.
        let psi = StateVector::basis_state(2, 0b01).unwrap();
        let rho = psi.reduced_density_matrix(&[1, 0]).unwrap();
        let p = rho.probabilities();
        // New index: bit0 = old qubit 1 (=0), bit1 = old qubit 0 (=1) → 10.
        assert!(close(p[0b10], 1.0));
    }

    #[test]
    fn reduced_density_matrix_validates_operands() {
        let psi = StateVector::zero_state(2);
        assert!(psi.reduced_density_matrix(&[5]).is_err());
        assert!(psi.reduced_density_matrix(&[0, 0]).is_err());
    }

    #[test]
    fn apply_matrix4_gate_equivalence_via_statevector() {
        // Cross-check 2q matrix semantics: evolve a pure state both ways.
        let mut psi = StateVector::zero_state(2);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_1q(&Matrix2::t(), 1).unwrap();
        let before = DensityMatrix::from_statevector(&psi).unwrap();
        let mut via_sv = psi.clone();
        via_sv.apply_2q(&Matrix4::cz(), 0, 1).unwrap();
        let after_sv = DensityMatrix::from_statevector(&via_sv).unwrap();
        // CZ = H(t)·CX·H(t) with target = qubit 0.
        let mut via_dm = before;
        via_dm.apply_1q(&Matrix2::h(), 0).unwrap();
        via_dm.apply_cx(1, 0).unwrap();
        via_dm.apply_1q(&Matrix2::h(), 0).unwrap();
        for (a, b) in after_sv.elems.iter().zip(&via_dm.elems) {
            assert!((a - b).norm() < 1e-10);
        }
    }
}
