//! Hermitian eigenvalues via the cyclic complex Jacobi method, powering von
//! Neumann entropy on reduced density matrices.

use crate::{DensityMatrix, StateVecError, StateVector, C64};

/// Convergence threshold on the squared off-diagonal Frobenius norm.
const OFF_DIAGONAL_TOL: f64 = 1e-24;
/// Sweep cap (quadratic convergence makes this generous).
const MAX_SWEEPS: usize = 64;

/// Eigenvalues of a Hermitian matrix given row-major, ascending order.
///
/// Uses cyclic Jacobi with complex rotations: each step diagonalizes one
/// 2×2 principal block with the unitary
/// `U = [[c, −e^{iφ}·s], [e^{−iφ}·s, c]]` (φ the phase of the pivot), which
/// converges quadratically for Hermitian input.
///
/// # Panics
///
/// Panics if `elems.len() != dim²` or the matrix is visibly non-Hermitian
/// (relative asymmetry above 1e-8).
pub fn hermitian_eigenvalues(elems: &[C64], dim: usize) -> Vec<f64> {
    assert_eq!(elems.len(), dim * dim, "matrix shape mismatch");
    let scale: f64 = elems.iter().map(|e| e.norm()).fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    for i in 0..dim {
        for j in 0..dim {
            let asym = (elems[i * dim + j] - elems[j * dim + i].conj()).norm();
            assert!(
                asym <= 1e-8 * scale.max(1.0),
                "matrix is not Hermitian at ({i},{j}): asymmetry {asym:e}"
            );
        }
    }
    let mut a = elems.to_vec();
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..dim)
            .flat_map(|i| (0..dim).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| a[i * dim + j].norm_sqr())
            .sum();
        if off < OFF_DIAGONAL_TOL * scale * scale {
            break;
        }
        for p in 0..dim {
            for q in p + 1..dim {
                jacobi_rotate(&mut a, dim, p, q);
            }
        }
    }
    let mut eigenvalues: Vec<f64> = (0..dim).map(|i| a[i * dim + i].re).collect();
    eigenvalues.sort_by(|x, y| x.partial_cmp(y).expect("finite eigenvalues"));
    eigenvalues
}

/// Zero out `a[p][q]` (and `a[q][p]`) with a complex Jacobi rotation.
fn jacobi_rotate(a: &mut [C64], dim: usize, p: usize, q: usize) {
    let apq = a[p * dim + q];
    if apq.norm_sqr() == 0.0 {
        return;
    }
    let app = a[p * dim + p].re;
    let aqq = a[q * dim + q].re;
    let phi = apq.arg();
    let theta = 0.5 * (2.0 * apq.norm()).atan2(app - aqq);
    let (sin_t, cos_t) = theta.sin_cos();
    let s = C64::from_polar(sin_t, phi); // U[q][p] = conj(s), U[p][q] = −s
                                         // Column update: A ← A·U.
    for k in 0..dim {
        let akp = a[k * dim + p];
        let akq = a[k * dim + q];
        a[k * dim + p] = akp * cos_t + akq * s.conj();
        a[k * dim + q] = -akp * s + akq * cos_t;
    }
    // Row update: A ← U†·A.
    for k in 0..dim {
        let apk = a[p * dim + k];
        let aqk = a[q * dim + k];
        a[p * dim + k] = apk * cos_t + aqk * s;
        a[q * dim + k] = -apk * s.conj() + aqk * cos_t;
    }
    // Clean the pivot against round-off.
    a[p * dim + q] = C64::new(0.0, 0.0);
    a[q * dim + p] = C64::new(0.0, 0.0);
}

impl DensityMatrix {
    /// Eigenvalues (the spectrum), ascending. For a physical state they are
    /// non-negative and sum to 1.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let dim = 1usize << self.n_qubits();
        hermitian_eigenvalues(self.elements(), dim)
    }

    /// Von Neumann entropy `−Σ λ log₂ λ` in bits.
    pub fn von_neumann_entropy(&self) -> f64 {
        self.eigenvalues()
            .into_iter()
            .filter(|&lambda| lambda > 1e-14)
            .map(|lambda| -lambda * lambda.log2())
            .sum()
    }
}

impl StateVector {
    /// Entanglement entropy (in bits) of the cut separating `keep` from the
    /// rest: the von Neumann entropy of the reduced state on `keep`. Zero
    /// for product states, 1 for a Bell pair's half.
    ///
    /// # Errors
    ///
    /// As [`StateVector::reduced_density_matrix`].
    pub fn entanglement_entropy(&self, keep: &[usize]) -> Result<f64, StateVecError> {
        Ok(self.reduced_density_matrix(keep)?.von_neumann_entropy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn diagonal_matrix_returns_its_diagonal() {
        let m = vec![c(3.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(-1.0, 0.0)];
        assert_eq!(hermitian_eigenvalues(&m, 2), vec![-1.0, 3.0]);
    }

    #[test]
    fn pauli_matrices_have_unit_spectrum() {
        for m in [Matrix2::x(), Matrix2::y(), Matrix2::z()] {
            let flat: Vec<C64> = m.0.iter().flatten().copied().collect();
            let eig = hermitian_eigenvalues(&flat, 2);
            assert!(close(eig[0], -1.0) && close(eig[1], 1.0), "{m}");
        }
    }

    #[test]
    fn known_two_by_two_with_complex_offdiagonal() {
        // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
        let m = vec![c(2.0, 0.0), c(0.0, 1.0), c(0.0, -1.0), c(2.0, 0.0)];
        let eig = hermitian_eigenvalues(&m, 2);
        assert!(close(eig[0], 1.0) && close(eig[1], 3.0), "{eig:?}");
    }

    #[test]
    fn random_hermitian_spectrum_matches_trace_invariants() {
        // Build A = B† B (positive semidefinite Hermitian) from a fixed B.
        let dim = 5usize;
        let mut b = vec![c(0.0, 0.0); dim * dim];
        let mut v = 0.37f64;
        for e in &mut b {
            v = (v * 97.0 + 13.0).rem_euclid(7.0) - 3.5;
            let w = (v * 31.0 + 5.0).rem_euclid(5.0) - 2.5;
            *e = c(v, w);
        }
        let mut a = vec![c(0.0, 0.0); dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                a[i * dim + j] = (0..dim).map(|k| b[k * dim + i].conj() * b[k * dim + j]).sum();
            }
        }
        let eig = hermitian_eigenvalues(&a, dim);
        // Non-negative, trace-preserving, Frobenius-norm-preserving.
        let trace: f64 = (0..dim).map(|i| a[i * dim + i].re).sum();
        let frob2: f64 = a.iter().map(|e| e.norm_sqr()).sum();
        assert!(eig.iter().all(|&l| l > -1e-9), "{eig:?}");
        assert!(close(eig.iter().sum::<f64>(), trace));
        assert!((eig.iter().map(|l| l * l).sum::<f64>() - frob2).abs() < 1e-6 * frob2);
    }

    #[test]
    #[should_panic(expected = "not Hermitian")]
    fn rejects_non_hermitian_input() {
        let m = vec![c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0), c(1.0, 0.0)];
        let _ = hermitian_eigenvalues(&m, 2);
    }

    #[test]
    fn bell_half_has_one_bit_of_entropy() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_cx(0, 1).unwrap();
        assert!(close(psi.entanglement_entropy(&[0]).unwrap(), 1.0));
        assert!(close(psi.entanglement_entropy(&[1]).unwrap(), 1.0));
        // The full state is pure: zero entropy.
        assert!(psi.entanglement_entropy(&[0, 1]).unwrap().abs() < 1e-9);
    }

    #[test]
    fn product_states_have_zero_entropy() {
        let mut psi = StateVector::zero_state(3);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        psi.apply_1q(&Matrix2::u(0.9, 0.1, 0.2), 2).unwrap();
        for keep in [vec![0usize], vec![1], vec![2], vec![0, 1]] {
            let s = psi.entanglement_entropy(&keep).unwrap();
            assert!(s.abs() < 1e-9, "keep {keep:?}: {s}");
        }
    }

    #[test]
    fn w_state_single_qubit_entropy_is_binary_entropy_of_one_third() {
        // Reduced single-qubit state of W₃ is diag(2/3, 1/3).
        let w = {
            let mut amps = vec![c(0.0, 0.0); 8];
            let a = 1.0 / 3.0f64.sqrt();
            amps[0b001] = c(a, 0.0);
            amps[0b010] = c(a, 0.0);
            amps[0b100] = c(a, 0.0);
            StateVector::from_amplitudes(&amps).unwrap()
        };
        let expected =
            -(1.0f64 / 3.0) * (1.0f64 / 3.0).log2() - (2.0f64 / 3.0) * (2.0f64 / 3.0).log2();
        for q in 0..3 {
            let s = w.entanglement_entropy(&[q]).unwrap();
            assert!((s - expected).abs() < 1e-9, "qubit {q}: {s} vs {expected}");
        }
    }

    #[test]
    fn ghz_cut_entropy_is_one_bit_everywhere() {
        let mut psi = StateVector::zero_state(4);
        psi.apply_1q(&Matrix2::h(), 0).unwrap();
        for q in 1..4 {
            psi.apply_cx(q - 1, q).unwrap();
        }
        for keep in [vec![0usize], vec![0, 1], vec![0, 1, 2], vec![2, 3]] {
            let s = psi.entanglement_entropy(&keep).unwrap();
            assert!(close(s, 1.0), "keep {keep:?}: {s}");
        }
    }
}
