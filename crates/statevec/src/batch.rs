//! Cross-state batched sweep kernels.
//!
//! The batched tree executor (`redsim::tree`) advances a whole frontier of
//! sibling trial states through one [`crate::FusedOp`] at a time. Calling
//! the scalar kernels per state repays the full setup — operand
//! validation, mask/stride computation, dispatch, and the strided
//! enumeration loops — once *per state*, which at small register widths
//! costs as much as the arithmetic itself. The kernels here hoist all of
//! that out of the state loop: the operand-index **blocks** are enumerated
//! once per sweep, and for each block the per-state update runs as a tight
//! loop over contiguous slices (or zipped slice pairs/quads), so the inner
//! loops carry no bounds checks and vectorize exactly like the scalar
//! kernels' inner loops.
//!
//! # Bitwise exactness
//!
//! Each kernel's per-amplitude update is the *verbatim arithmetic
//! expression* of the corresponding scalar kernel in `state.rs` — same
//! operands, same operation order (Rust does not reassociate or contract
//! floating-point expressions). Only the iteration order across
//! independent amplitude groups changes, and no update reads another
//! group's amplitudes, so every state leaves a batched sweep bit-for-bit
//! identical to a scalar [`StateVector::apply_fused`](crate::StateVector)
//! call. The conformance test in `fused.rs` asserts exactly this for
//! every kernel class, and the tree executor's differential harness
//! asserts it end-to-end against the sequential executors.
//!
//! All states in a batch must share one register width; operands are
//! validated once against the first state (empty batches are a no-op).

use crate::{Matrix2, Matrix4, StateVecError, StateVector, C64};

/// Every state in a batch must have the same register width as the first.
fn check_same_width(states: &[StateVector]) -> Result<(), StateVecError> {
    let width = states[0].n_qubits();
    for s in &states[1..] {
        if s.n_qubits() != width {
            return Err(StateVecError::WidthMismatch { left: width, right: s.n_qubits() });
        }
    }
    Ok(())
}

/// Batched [`StateVector::apply_phase1`].
pub(crate) fn phase1(
    states: &mut [StateVector],
    d1: C64,
    qubit: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(qubit)?;
    check_same_width(states)?;
    let stride = 1usize << qubit;
    let n = states[0].dim();
    let mut base = stride;
    while base < n {
        for s in &mut *states {
            for a in &mut s.amps_mut()[base..base + stride] {
                *a = d1 * *a;
            }
        }
        base += stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_diag1`].
pub(crate) fn diag1(
    states: &mut [StateVector],
    d: &[C64; 2],
    qubit: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(qubit)?;
    check_same_width(states)?;
    let stride = 1usize << qubit;
    let (d0, d1) = (d[0], d[1]);
    let n = states[0].dim();
    let mut base = 0;
    let mut block = 0usize;
    while base < n {
        let f = if block & 1 == 0 { d0 } else { d1 };
        for s in &mut *states {
            for a in &mut s.amps_mut()[base..base + stride] {
                *a = f * *a;
            }
        }
        base += stride;
        block += 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_perm1`].
pub(crate) fn perm1(
    states: &mut [StateVector],
    phase: &[C64; 2],
    qubit: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(qubit)?;
    check_same_width(states)?;
    let stride = 1usize << qubit;
    let (p0, p1) = (phase[0], phase[1]);
    let n = states[0].dim();
    let mut base = 0;
    while base < n {
        for s in &mut *states {
            let (lo, hi) = s.amps_mut()[base..base + (stride << 1)].split_at_mut(stride);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let x = *a;
                *a = p0 * *b;
                *b = p1 * x;
            }
        }
        base += stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_1q`].
pub(crate) fn dense1(
    states: &mut [StateVector],
    m: &Matrix2,
    qubit: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(qubit)?;
    check_same_width(states)?;
    let stride = 1usize << qubit;
    let [[m00, m01], [m10, m11]] = m.0;
    let n = states[0].dim();
    let mut base = 0;
    while base < n {
        for s in &mut *states {
            let (lo, hi) = s.amps_mut()[base..base + (stride << 1)].split_at_mut(stride);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = m00 * x + m01 * y;
                *b = m10 * x + m11 * y;
            }
        }
        base += stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_cphase2`].
pub(crate) fn cphase2(
    states: &mut [StateVector],
    p: C64,
    qubit_a: usize,
    qubit_b: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(qubit_a)?;
    first.check_qubit(qubit_b)?;
    if qubit_a == qubit_b {
        return Err(StateVecError::DuplicateQubit { qubit: qubit_a });
    }
    check_same_width(states)?;
    let offset = (1usize << qubit_a) | (1usize << qubit_b);
    let (small, large) = if qubit_a < qubit_b { (qubit_a, qubit_b) } else { (qubit_b, qubit_a) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let n = states[0].dim();
    // Every index in a `[mid, mid + small_stride)` run has both operand
    // bits clear, so OR-ing the offset is an addition and the active
    // quarter decomposes into contiguous runs.
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            let start = mid + offset;
            for s in &mut *states {
                for a in &mut s.amps_mut()[start..start + small_stride] {
                    *a = p * *a;
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_cdiag1`].
pub(crate) fn cdiag1(
    states: &mut [StateVector],
    d: &[C64; 2],
    control: usize,
    target: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(control)?;
    first.check_qubit(target)?;
    if control == target {
        return Err(StateVecError::DuplicateQubit { qubit: control });
    }
    check_same_width(states)?;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let (d0, d1) = (d[0], d[1]);
    let (small, large) = if control < target { (control, target) } else { (target, control) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let n = states[0].dim();
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            let ic = mid + cmask;
            let ict = ic + tmask;
            for s in &mut *states {
                let amps = s.amps_mut();
                for a in &mut amps[ic..ic + small_stride] {
                    *a = d0 * *a;
                }
                for a in &mut amps[ict..ict + small_stride] {
                    *a = d1 * *a;
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_diag2`].
pub(crate) fn diag2(
    states: &mut [StateVector],
    d: &[C64; 4],
    low: usize,
    high: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(low)?;
    first.check_qubit(high)?;
    if low == high {
        return Err(StateVecError::DuplicateQubit { qubit: low });
    }
    check_same_width(states)?;
    let mask_low = 1usize << low;
    let mask_high = 1usize << high;
    let (small, large) = if low < high { (low, high) } else { (high, low) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let n = states[0].dim();
    // Each local value (2·bit(high) + bit(low)) owns one contiguous run
    // per enumeration block; the diagonal factor is constant on the run.
    let runs = [(0usize, d[0]), (mask_low, d[1]), (mask_high, d[2]), (mask_low | mask_high, d[3])];
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            for s in &mut *states {
                let amps = s.amps_mut();
                for (off, f) in runs {
                    for a in &mut amps[mid + off..mid + off + small_stride] {
                        *a = f * *a;
                    }
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_cx`].
pub(crate) fn cx(
    states: &mut [StateVector],
    control: usize,
    target: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(control)?;
    first.check_qubit(target)?;
    if control == target {
        return Err(StateVecError::DuplicateQubit { qubit: control });
    }
    check_same_width(states)?;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let (small, large) = if control < target { (control, target) } else { (target, control) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let n = states[0].dim();
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            let start = mid + cmask;
            for s in &mut *states {
                let (left, right) =
                    s.amps_mut()[start..start + tmask + small_stride].split_at_mut(tmask);
                for (a, b) in left[..small_stride].iter_mut().zip(right.iter_mut()) {
                    std::mem::swap(a, b);
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_ctrl1`].
pub(crate) fn ctrl1(
    states: &mut [StateVector],
    u: &Matrix2,
    control: usize,
    target: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(control)?;
    first.check_qubit(target)?;
    if control == target {
        return Err(StateVecError::DuplicateQubit { qubit: control });
    }
    check_same_width(states)?;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let [[u00, u01], [u10, u11]] = u.0;
    let (small, large) = if control < target { (control, target) } else { (target, control) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let n = states[0].dim();
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            let start = mid + cmask;
            for s in &mut *states {
                let (left, right) =
                    s.amps_mut()[start..start + tmask + small_stride].split_at_mut(tmask);
                for (a, b) in left[..small_stride].iter_mut().zip(right.iter_mut()) {
                    let x = *a;
                    let y = *b;
                    *a = u00 * x + u01 * y;
                    *b = u10 * x + u11 * y;
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_perm2`].
pub(crate) fn perm2(
    states: &mut [StateVector],
    src: &[u8; 4],
    phase: &[C64; 4],
    low: usize,
    high: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(low)?;
    first.check_qubit(high)?;
    if low == high {
        return Err(StateVecError::DuplicateQubit { qubit: low });
    }
    check_same_width(states)?;
    debug_assert!(src.iter().all(|&s| s < 4));
    let (small, large) = if low < high { (low, high) } else { (high, low) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let low_is_small = low < high;
    let n = states[0].dim();
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            for s in &mut *states {
                let quad = &mut s.amps_mut()[mid..mid + large_stride + 2 * small_stride];
                let (head, tail) = quad.split_at_mut(large_stride);
                let (s_base, head_rest) = head.split_at_mut(small_stride);
                let s_small = &mut head_rest[..small_stride];
                let (s_large, s_both) = tail.split_at_mut(small_stride);
                let (s01, s10) = if low_is_small { (s_small, s_large) } else { (s_large, s_small) };
                for (((p00, p01), p10), p11) in
                    s_base.iter_mut().zip(s01).zip(s10).zip(s_both.iter_mut())
                {
                    let old = [*p00, *p01, *p10, *p11];
                    *p00 = phase[0] * old[src[0] as usize];
                    *p01 = phase[1] * old[src[1] as usize];
                    *p10 = phase[2] * old[src[2] as usize];
                    *p11 = phase[3] * old[src[3] as usize];
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_2q`].
pub(crate) fn dense2(
    states: &mut [StateVector],
    m: &Matrix4,
    low: usize,
    high: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(low)?;
    first.check_qubit(high)?;
    if low == high {
        return Err(StateVecError::DuplicateQubit { qubit: low });
    }
    check_same_width(states)?;
    let (small, large) = if low < high { (low, high) } else { (high, low) };
    let small_stride = 1usize << small;
    let large_stride = 1usize << large;
    let low_is_small = low < high;
    let n = states[0].dim();
    let r = &m.0;
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + large_stride {
            for s in &mut *states {
                let quad = &mut s.amps_mut()[mid..mid + large_stride + 2 * small_stride];
                let (head, tail) = quad.split_at_mut(large_stride);
                let (s_base, head_rest) = head.split_at_mut(small_stride);
                let s_small = &mut head_rest[..small_stride];
                let (s_large, s_both) = tail.split_at_mut(small_stride);
                let (s01, s10) = if low_is_small { (s_small, s_large) } else { (s_large, s_small) };
                for (((p00, p01), p10), p11) in
                    s_base.iter_mut().zip(s01).zip(s10).zip(s_both.iter_mut())
                {
                    let (a0, a1, a2, a3) = (*p00, *p01, *p10, *p11);
                    *p00 = r[0][0] * a0 + r[0][1] * a1 + r[0][2] * a2 + r[0][3] * a3;
                    *p01 = r[1][0] * a0 + r[1][1] * a1 + r[1][2] * a2 + r[1][3] * a3;
                    *p10 = r[2][0] * a0 + r[2][1] * a1 + r[2][2] * a2 + r[2][3] * a3;
                    *p11 = r[3][0] * a0 + r[3][1] * a1 + r[3][2] * a2 + r[3][3] * a3;
                }
            }
            mid += small_stride << 1;
        }
        outer += large_stride << 1;
    }
    Ok(())
}

/// Batched [`StateVector::apply_ccx`].
pub(crate) fn ccx(
    states: &mut [StateVector],
    control_a: usize,
    control_b: usize,
    target: usize,
) -> Result<(), StateVecError> {
    let Some(first) = states.first() else { return Ok(()) };
    first.check_qubit(control_a)?;
    first.check_qubit(control_b)?;
    first.check_qubit(target)?;
    if control_a == control_b {
        return Err(StateVecError::DuplicateQubit { qubit: control_a });
    }
    if control_a == target || control_b == target {
        return Err(StateVecError::DuplicateQubit { qubit: target });
    }
    check_same_width(states)?;
    let cmask = (1usize << control_a) | (1usize << control_b);
    let tmask = 1usize << target;
    let mut qs = [control_a, control_b, target];
    qs.sort_unstable();
    let [s0, s1, s2] = qs.map(|q| 1usize << q);
    let n = states[0].dim();
    let mut outer = 0;
    while outer < n {
        let mut mid = outer;
        while mid < outer + s2 {
            let mut inner = mid;
            while inner < mid + s1 {
                let start = inner + cmask;
                for s in &mut *states {
                    let (left, right) = s.amps_mut()[start..start + tmask + s0].split_at_mut(tmask);
                    for (a, b) in left[..s0].iter_mut().zip(right.iter_mut()) {
                        std::mem::swap(a, b);
                    }
                }
                inner += s0 << 1;
            }
            mid += s1 << 1;
        }
        outer += s2 << 1;
    }
    Ok(())
}
