use std::fmt;
use std::str::FromStr;

use crate::{Pauli, StateVecError, StateVector, C64};

/// A multi-qubit Pauli-string observable, e.g. `Z⊗I⊗X`.
///
/// Strings render and parse most-significant qubit first, matching ket
/// notation: `"ZIX"` puts Z on qubit 2, I on qubit 1, X on qubit 0.
///
/// ```
/// use qsim_statevec::{PauliString, StateVector, Matrix2};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // ⟨ZZ⟩ = +1 on a Bell pair, even though each ⟨Z⟩ alone is 0.
/// let mut bell = StateVector::zero_state(2);
/// bell.apply_1q(&Matrix2::h(), 0)?;
/// bell.apply_cx(0, 1)?;
/// let zz: PauliString = "ZZ".parse()?;
/// assert!((zz.expectation(&bell)? - 1.0).abs() < 1e-12);
/// let zi: PauliString = "ZI".parse()?;
/// assert!(zi.expectation(&bell)?.abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// `ops[q]` = operator on qubit `q` (`None` = identity).
    ops: Vec<Option<Pauli>>,
}

impl PauliString {
    /// The identity string on `n_qubits`.
    pub fn identity(n_qubits: usize) -> Self {
        PauliString { ops: vec![None; n_qubits] }
    }

    /// Set the operator on one qubit (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn with_op(mut self, qubit: usize, pauli: Pauli) -> Self {
        self.ops[qubit] = Some(pauli);
        self
    }

    /// Number of qubits the string spans.
    pub fn n_qubits(&self) -> usize {
        self.ops.len()
    }

    /// The operator on `qubit` (`None` = identity).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn op(&self, qubit: usize) -> Option<Pauli> {
        self.ops[qubit]
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|op| op.is_some()).count()
    }

    /// The expectation value `⟨ψ|P|ψ⟩` (real for Hermitian `P`).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] if the register widths
    /// differ.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, StateVecError> {
        if state.n_qubits() != self.n_qubits() {
            return Err(StateVecError::WidthMismatch {
                left: self.n_qubits(),
                right: state.n_qubits(),
            });
        }
        let mut transformed = state.clone();
        for (qubit, op) in self.ops.iter().enumerate() {
            if let Some(pauli) = op {
                transformed.apply_pauli(*pauli, qubit)?;
            }
        }
        let amp: C64 = state.inner(&transformed)?;
        Ok(amp.re)
    }

    /// The variance `⟨P²⟩ − ⟨P⟩² = 1 − ⟨P⟩²` (Pauli strings square to the
    /// identity).
    ///
    /// # Errors
    ///
    /// As [`PauliString::expectation`].
    pub fn variance(&self, state: &StateVector) -> Result<f64, StateVecError> {
        let e = self.expectation(state)?;
        Ok(1.0 - e * e)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in self.ops.iter().rev() {
            match op {
                None => write!(f, "I")?,
                Some(p) => write!(f, "{p}")?,
            }
        }
        Ok(())
    }
}

/// A Hermitian observable as a real-weighted sum of Pauli strings — the
/// form every qubit Hamiltonian takes (e.g. `H = 0.5·ZZ − 1.2·XI`).
///
/// ```
/// use qsim_statevec::{Observable, StateVector, Matrix2};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Ising pair H = −ZZ − 0.5(XI + IX) on a Bell state.
/// let h = Observable::new(2)
///     .with_term(-1.0, "ZZ".parse()?)
///     .with_term(-0.5, "XI".parse()?)
///     .with_term(-0.5, "IX".parse()?);
/// let mut bell = StateVector::zero_state(2);
/// bell.apply_1q(&Matrix2::h(), 0)?;
/// bell.apply_cx(0, 1)?;
/// // ⟨ZZ⟩ = 1, ⟨XI⟩ = ⟨IX⟩ = 0 ⇒ ⟨H⟩ = −1.
/// assert!((h.expectation(&bell)? + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Observable {
    n_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl Observable {
    /// An empty observable (the zero operator) on `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Observable { n_qubits, terms: Vec::new() }
    }

    /// Add a weighted Pauli-string term (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the term's width differs from the observable's.
    pub fn with_term(mut self, coefficient: f64, term: PauliString) -> Self {
        assert_eq!(
            term.n_qubits(),
            self.n_qubits,
            "term width {} does not match observable width {}",
            term.n_qubits(),
            self.n_qubits
        );
        self.terms.push((coefficient, term));
        self
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The weighted terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// `⟨ψ|H|ψ⟩ = Σ c_i ⟨ψ|P_i|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] on register mismatch.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, StateVecError> {
        let mut total = 0.0;
        for (coefficient, term) in &self.terms {
            total += coefficient * term.expectation(state)?;
        }
        Ok(total)
    }

    /// The variance `⟨H²⟩ − ⟨H⟩²`, computed exactly via `H|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] on register mismatch.
    pub fn variance(&self, state: &StateVector) -> Result<f64, StateVecError> {
        if state.n_qubits() != self.n_qubits {
            return Err(StateVecError::WidthMismatch {
                left: self.n_qubits,
                right: state.n_qubits(),
            });
        }
        // |φ⟩ = H|ψ⟩ accumulated term by term; ⟨H²⟩ = ⟨φ|φ⟩.
        let dim = 1usize << self.n_qubits;
        let mut phi = vec![C64::new(0.0, 0.0); dim];
        for (coefficient, term) in &self.terms {
            let mut transformed = state.clone();
            for q in 0..self.n_qubits {
                if let Some(pauli) = term.op(q) {
                    transformed.apply_pauli(pauli, q)?;
                }
            }
            for (acc, amp) in phi.iter_mut().zip(transformed.amplitudes()) {
                *acc += amp * *coefficient;
            }
        }
        let h_squared: f64 = phi.iter().map(|a| a.norm_sqr()).sum();
        let mean = self.expectation(state)?;
        Ok(h_squared - mean * mean)
    }
}

impl fmt::Display for Observable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (coefficient, term)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{coefficient}·{term}")?;
        }
        Ok(())
    }
}

/// Error from parsing a [`PauliString`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliStringError(String);

impl fmt::Display for ParsePauliStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Pauli string {:?}: only I, X, Y, Z allowed", self.0)
    }
}

impl std::error::Error for ParsePauliStringError {}

impl FromStr for PauliString {
    type Err = ParsePauliStringError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut ops = Vec::with_capacity(s.len());
        // Characters arrive MSB-first; qubit 0 is the last character.
        for c in s.chars().rev() {
            ops.push(match c {
                'I' | 'i' => None,
                'X' | 'x' => Some(Pauli::X),
                'Y' | 'y' => Some(Pauli::Y),
                'Z' | 'z' => Some(Pauli::Z),
                _ => return Err(ParsePauliStringError(s.to_owned())),
            });
        }
        if ops.is_empty() {
            return Err(ParsePauliStringError(s.to_owned()));
        }
        Ok(PauliString { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;

    fn bell() -> StateVector {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        s.apply_cx(0, 1).unwrap();
        s
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["ZZ", "XIZ", "IYXI", "I"] {
            let p: PauliString = text.parse().unwrap();
            assert_eq!(p.to_string(), text.to_uppercase());
        }
        assert!("".parse::<PauliString>().is_err());
        assert!("XQ".parse::<PauliString>().is_err());
    }

    #[test]
    fn string_layout_is_msb_first() {
        let p: PauliString = "ZIX".parse().unwrap();
        assert_eq!(p.n_qubits(), 3);
        assert_eq!(p.op(0), Some(Pauli::X));
        assert_eq!(p.op(1), None);
        assert_eq!(p.op(2), Some(Pauli::Z));
        assert_eq!(p.weight(), 2);
    }

    #[test]
    fn bell_stabilizers() {
        let bell = bell();
        for stabilizer in ["ZZ", "XX"] {
            let p: PauliString = stabilizer.parse().unwrap();
            assert!((p.expectation(&bell).unwrap() - 1.0).abs() < 1e-12, "{stabilizer}");
            assert!(p.variance(&bell).unwrap().abs() < 1e-12);
        }
        // YY anti-stabilizes the |Φ+⟩ Bell state.
        let yy: PauliString = "YY".parse().unwrap();
        assert!((yy.expectation(&bell).unwrap() + 1.0).abs() < 1e-12);
        // Single-qubit Zs are totally mixed.
        for single in ["ZI", "IZ", "XI"] {
            let p: PauliString = single.parse().unwrap();
            assert!(p.expectation(&bell).unwrap().abs() < 1e-12, "{single}");
            assert!((p.variance(&bell).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn computational_basis_z_values() {
        let s = StateVector::basis_state(3, 0b101).unwrap();
        let check = |text: &str, expected: f64| {
            let p: PauliString = text.parse().unwrap();
            assert!((p.expectation(&s).unwrap() - expected).abs() < 1e-12, "{text}");
        };
        check("IIZ", -1.0); // qubit 0 is 1
        check("IZI", 1.0); // qubit 1 is 0
        check("ZII", -1.0); // qubit 2 is 1
        check("ZIZ", 1.0); // product of the two −1s
        check("III", 1.0);
    }

    #[test]
    fn identity_builder_and_with_op() {
        let p = PauliString::identity(4).with_op(1, Pauli::Y).with_op(3, Pauli::Z);
        assert_eq!(p.to_string(), "ZIYI");
        let s = StateVector::zero_state(4);
        // Y on |0⟩ has zero Z-basis diagonal: ⟨Y⟩ = 0.
        assert!(p.expectation(&s).unwrap().abs() < 1e-12);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let p: PauliString = "ZZ".parse().unwrap();
        let s = StateVector::zero_state(3);
        assert!(matches!(p.expectation(&s), Err(StateVecError::WidthMismatch { .. })));
    }

    #[test]
    fn observable_expectation_and_eigenstate_variance() {
        // H = Z on one qubit: |0⟩ is the +1 eigenstate → variance 0.
        let h = Observable::new(1).with_term(1.0, "Z".parse().unwrap());
        let zero = StateVector::zero_state(1);
        assert!((h.expectation(&zero).unwrap() - 1.0).abs() < 1e-12);
        assert!(h.variance(&zero).unwrap().abs() < 1e-12);
        // |+⟩: ⟨Z⟩ = 0, variance 1.
        let mut plus = StateVector::zero_state(1);
        plus.apply_1q(&Matrix2::h(), 0).unwrap();
        assert!(h.expectation(&plus).unwrap().abs() < 1e-12);
        assert!((h.variance(&plus).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ising_pair_ground_state_energy() {
        // H = −ZZ: the Bell state has energy −1 with zero variance (it is
        // a ZZ eigenstate), and adding an X field shifts the expectation
        // without breaking linearity.
        let bell = bell();
        let h = Observable::new(2).with_term(-1.0, "ZZ".parse().unwrap());
        assert!((h.expectation(&bell).unwrap() + 1.0).abs() < 1e-12);
        assert!(h.variance(&bell).unwrap().abs() < 1e-12);
        let h2 = Observable::new(2)
            .with_term(-1.0, "ZZ".parse().unwrap())
            .with_term(0.7, "XX".parse().unwrap());
        // ⟨XX⟩ = 1 on |Φ+⟩ too.
        assert!((h2.expectation(&bell).unwrap() + 0.3).abs() < 1e-12);
        // Variance of (−ZZ + 0.7·XX) on a common eigenstate is still 0.
        assert!(h2.variance(&bell).unwrap().abs() < 1e-12);
    }

    #[test]
    fn observable_variance_of_non_commuting_sum() {
        // H = Z + X on |0⟩: ⟨H⟩ = 1, ⟨H²⟩ = ⟨Z² + X² + {Z,X}⟩ = 2 → var 1.
        let h = Observable::new(1)
            .with_term(1.0, "Z".parse().unwrap())
            .with_term(1.0, "X".parse().unwrap());
        let zero = StateVector::zero_state(1);
        assert!((h.expectation(&zero).unwrap() - 1.0).abs() < 1e-12);
        assert!((h.variance(&zero).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not match observable width")]
    fn observable_rejects_mismatched_terms() {
        let _ = Observable::new(2).with_term(1.0, "Z".parse().unwrap());
    }

    #[test]
    fn observable_display_and_empty() {
        let h = Observable::new(2).with_term(0.5, "ZI".parse().unwrap());
        assert_eq!(h.to_string(), "0.5·ZI");
        assert_eq!(Observable::new(2).to_string(), "0");
        let zero = StateVector::zero_state(2);
        assert_eq!(Observable::new(2).expectation(&zero).unwrap(), 0.0);
    }
}
