//! Amplitude-buffer recycling for executors that clone and drop frontier
//! states at high frequency.
//!
//! The reuse executor's trie traversal clones a `2ⁿ`-amplitude state on
//! every branch and drops one on every eager pop; at thousands of trials
//! that is thousands of large allocations whose cost (page faults, zeroing)
//! rivals the arithmetic on small registers. A [`StatePool`] keeps dropped
//! buffers and services clones by `memcpy` into a recycled allocation.

use crate::buffer::AmpBuf;
use crate::StateVector;

/// A free list of amplitude buffers, all of one register width.
///
/// Buffers enter and leave the pool as [`AmpBuf`]s, so every clone the
/// pool hands out — recycled or fresh — carries the substrate's 64-byte
/// alignment guarantee and the vectorized kernels never see a degraded
/// buffer after reuse.
#[derive(Debug, Default)]
pub struct StatePool {
    free: Vec<AmpBuf>,
    reused: u64,
    allocated: u64,
}

impl StatePool {
    /// An empty pool.
    pub fn new() -> Self {
        StatePool::default()
    }

    /// Clone `src`, reusing a recycled buffer when one of the right length
    /// is available. The returned state is amplitude-for-amplitude identical
    /// to `src.clone()`.
    pub fn clone_state(&mut self, src: &StateVector) -> StateVector {
        let amps = src.amplitudes();
        while let Some(mut buf) = self.free.pop() {
            if buf.len() == amps.len() {
                buf.copy_from_slice(amps);
                self.reused += 1;
                return StateVector::from_amps_unchecked(src.n_qubits(), buf);
            }
            // Foreign width (pool misuse across register sizes): drop it.
        }
        self.allocated += 1;
        src.clone()
    }

    /// Return a state's buffer to the free list.
    pub fn recycle(&mut self, state: StateVector) {
        self.free.push(state.into_amps());
    }

    /// Buffers currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Clones served from recycled buffers.
    pub fn reuse_count(&self) -> u64 {
        self.reused
    }

    /// Clones that had to allocate fresh.
    pub fn alloc_count(&self) -> u64 {
        self.allocated
    }

    /// Snapshot of the pool's reuse accounting.
    pub fn stats(&self) -> PoolStats {
        PoolStats { reused: self.reused, allocated: self.allocated, idle: self.free.len() }
    }
}

/// Point-in-time reuse accounting for a [`StatePool`]: how many clones were
/// served from recycled buffers versus fresh allocations, and how many
/// buffers sit parked in the free list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Clones served from recycled buffers.
    pub reused: u64,
    /// Clones that had to allocate fresh.
    pub allocated: u64,
    /// Buffers currently parked in the free list.
    pub idle: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;

    #[test]
    fn cloned_states_are_identical_and_buffers_recycle() {
        let mut pool = StatePool::new();
        let mut s = StateVector::zero_state(4);
        s.apply_1q(&Matrix2::h(), 2).unwrap();
        let a = pool.clone_state(&s);
        assert!(a.approx_eq(&s, 0.0));
        assert_eq!(pool.alloc_count(), 1);
        pool.recycle(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.clone_state(&s);
        assert!(b.approx_eq(&s, 0.0));
        assert_eq!(pool.reuse_count(), 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pooled_clone_is_bitwise_identical_to_plain_clone() {
        let mut pool = StatePool::new();
        let mut s = StateVector::zero_state(5);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        s.apply_1q(&Matrix2::t(), 3).unwrap();
        s.apply_cx(0, 4).unwrap();
        pool.recycle(StateVector::zero_state(5)); // force the reuse path
        let pooled = pool.clone_state(&s);
        assert_eq!(pool.reuse_count(), 1);
        let plain = s.clone();
        assert_eq!(pooled.amplitudes(), plain.amplitudes(), "reused buffer must match bitwise");
        assert_eq!(pool.stats(), PoolStats { reused: 1, allocated: 0, idle: 0 });
    }

    #[test]
    fn pooled_buffers_stay_cache_line_aligned() {
        // Regression: recycled buffers must come back with the same
        // alignment a fresh allocation has, or the vectorized kernels lose
        // their aligned-load guarantee after the first reuse.
        let align = crate::buffer::AMP_ALIGN;
        let mut pool = StatePool::new();
        let mut s = StateVector::zero_state(6);
        s.apply_1q(&Matrix2::h(), 1).unwrap();
        assert_eq!(s.amplitudes().as_ptr() as usize % align, 0, "fresh state");
        let fresh = pool.clone_state(&s);
        assert_eq!(fresh.amplitudes().as_ptr() as usize % align, 0, "fresh clone");
        pool.recycle(fresh);
        let recycled = pool.clone_state(&s);
        assert_eq!(recycled.amplitudes().as_ptr() as usize % align, 0, "recycled clone");
        assert_eq!(pool.reuse_count(), 1, "second clone must exercise the reuse path");
        assert_eq!(recycled.amplitudes(), s.amplitudes(), "recycled clone must match bitwise");
    }

    #[test]
    fn mismatched_widths_fall_back_to_allocation() {
        let mut pool = StatePool::new();
        pool.recycle(StateVector::zero_state(2));
        let s = StateVector::zero_state(5);
        let c = pool.clone_state(&s);
        assert_eq!(c.n_qubits(), 5);
        assert_eq!(pool.alloc_count(), 1);
        assert_eq!(pool.idle(), 0, "foreign-width buffer was discarded");
    }
}
