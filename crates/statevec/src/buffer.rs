//! 64-byte-aligned amplitude storage.
//!
//! The apply kernels stream pairs of `Complex64` through fused
//! multiply-adds; when the buffer start is aligned to a cache line the
//! compiler can emit aligned vector loads for every stride the strided
//! sweeps produce (strides are powers of two times 16 bytes). `Vec<C64>`
//! only guarantees 16-byte alignment, so the state vector owns its storage
//! through [`AmpBuf`], a fixed-length boxed slice allocated at
//! [`AMP_ALIGN`]. Deallocation must use the same alignment the allocation
//! did, which is why this cannot be retrofitted onto `Vec`.

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::C64;

/// Alignment (bytes) of every amplitude buffer: one x86-64 cache line,
/// and enough for 512-bit vector loads.
pub const AMP_ALIGN: usize = 64;

/// A fixed-length, 64-byte-aligned buffer of complex amplitudes.
///
/// Semantically a `Box<[C64]>` with a stronger alignment guarantee; it
/// derefs to a slice, so all kernel code works on plain `[C64]`.
pub struct AmpBuf {
    ptr: NonNull<C64>,
    len: usize,
}

// SAFETY: the buffer uniquely owns a heap allocation of plain `Copy` data
// with no interior mutability or thread affinity.
unsafe impl Send for AmpBuf {}
// SAFETY: shared access is read-only (`&AmpBuf` only derefs to `&[C64]`).
unsafe impl Sync for AmpBuf {}

impl AmpBuf {
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<C64>(), AMP_ALIGN)
            .expect("amplitude buffer layout overflows")
    }

    /// An all-zero buffer of `len` amplitudes.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AmpBuf { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: `layout` has non-zero size (len > 0) and a valid
        // power-of-two alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<C64>()) else { handle_alloc_error(layout) };
        AmpBuf { ptr, len }
    }

    /// A buffer holding a copy of `src`.
    pub fn from_slice(src: &[C64]) -> Self {
        if src.is_empty() {
            return AmpBuf { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(src.len());
        // SAFETY: non-zero size, valid alignment.
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<C64>()) else { handle_alloc_error(layout) };
        // SAFETY: freshly allocated region of exactly `src.len()` elements,
        // disjoint from `src`.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), ptr.as_ptr(), src.len()) };
        AmpBuf { ptr, len: src.len() }
    }

    /// Number of amplitudes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no amplitudes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for AmpBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `zeroed`/`from_slice` with this exact
            // layout (same length, same alignment).
            unsafe { dealloc(self.ptr.as_ptr().cast::<u8>(), Self::layout(self.len)) };
        }
    }
}

impl Deref for AmpBuf {
    type Target = [C64];

    fn deref(&self) -> &[C64] {
        // SAFETY: `ptr` is valid for `len` initialized elements.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AmpBuf {
    fn deref_mut(&mut self) -> &mut [C64] {
        // SAFETY: `ptr` is valid for `len` initialized elements and
        // uniquely owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Clone for AmpBuf {
    fn clone(&self) -> Self {
        AmpBuf::from_slice(self)
    }
}

impl PartialEq for AmpBuf {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for AmpBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmpBuf").field("len", &self.len).finish_non_exhaustive()
    }
}

impl FromIterator<C64> for AmpBuf {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        let collected: Vec<C64> = iter.into_iter().collect();
        AmpBuf::from_slice(&collected)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for AmpBuf {
    fn to_value(&self) -> serde::value::Value {
        self[..].to_value()
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for AmpBuf {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::de::DeError> {
        let amps = Vec::<C64>::from_value(value)?;
        Ok(AmpBuf::from_slice(&amps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_cache_line_aligned() {
        for len in [1usize, 2, 8, 1024] {
            let zeroed = AmpBuf::zeroed(len);
            assert_eq!(zeroed.as_ptr() as usize % AMP_ALIGN, 0, "zeroed({len})");
            assert!(zeroed.iter().all(|a| a.re == 0.0 && a.im == 0.0));
            let copied = AmpBuf::from_slice(&zeroed);
            assert_eq!(copied.as_ptr() as usize % AMP_ALIGN, 0, "from_slice({len})");
            let cloned = copied.clone();
            assert_eq!(cloned.as_ptr() as usize % AMP_ALIGN, 0, "clone({len})");
        }
    }

    #[test]
    fn copies_round_trip_bitwise() {
        let mut buf = AmpBuf::zeroed(8);
        for (i, a) in buf.iter_mut().enumerate() {
            *a = C64::new(i as f64 + 0.25, -(i as f64));
        }
        let copy = buf.clone();
        assert_eq!(buf, copy);
        assert_eq!(&buf[..], &copy[..]);
        assert_eq!(buf.len(), 8);
        assert!(!buf.is_empty());
    }

    #[test]
    fn empty_buffer_is_inert() {
        let empty = AmpBuf::zeroed(0);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        let clone = empty.clone();
        assert_eq!(empty, clone);
        assert!(!format!("{empty:?}").is_empty());
    }

    #[test]
    fn clones_are_independent_allocations() {
        let mut a = AmpBuf::zeroed(16);
        a[0] = C64::new(1.0, 2.0);
        let mut b = a.clone();
        assert_ne!(a.as_ptr(), b.as_ptr());
        b[0] = C64::new(-3.0, 0.5);
        assert_eq!(a[0], C64::new(1.0, 2.0));
        assert_eq!(b[0], C64::new(-3.0, 0.5));
    }

    #[test]
    fn repeated_alloc_copy_free_cycles_are_clean() {
        // Walks every unsafe path (alloc, alloc_zeroed, copy, dealloc)
        // across many sizes — the core loop Miri and ASan interpret.
        for round in 0..64usize {
            let len = 1usize << (round % 7);
            let mut buf = AmpBuf::zeroed(len);
            for (i, a) in buf.iter_mut().enumerate() {
                *a = C64::new(i as f64, round as f64);
            }
            let copy = AmpBuf::from_slice(&buf);
            drop(buf);
            assert_eq!(copy.len(), len);
            assert_eq!(copy[len - 1], C64::new((len - 1) as f64, round as f64));
        }
    }

    #[test]
    fn collects_from_iterator() {
        let buf: AmpBuf = (0..4).map(|i| C64::new(i as f64, 0.0)).collect();
        assert_eq!(buf.len(), 4);
        assert_eq!(buf[3], C64::new(3.0, 0.0));
        assert_eq!(buf.as_ptr() as usize % AMP_ALIGN, 0);
    }
}
