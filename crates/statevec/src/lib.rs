#![warn(missing_docs)]
//! Full state-vector quantum simulation substrate.
//!
//! This crate provides the linear-algebra core used by the redundancy-
//! eliminating noisy simulator: dense state vectors over [`C64`], strided
//! application kernels for one- and two-qubit unitaries, Pauli fast paths,
//! measurement sampling, and a small exact density-matrix simulator used to
//! cross-validate Monte-Carlo noise semantics.
//!
//! # Conventions
//!
//! * Qubit 0 is the **least significant bit** of a basis index
//!   (little-endian, as in Qiskit). Basis state `|q_{n-1} … q_1 q_0⟩` has
//!   index `Σ q_k 2^k`.
//! * A two-qubit matrix acting on `(low, high)` uses the local index
//!   `2·bit(high) + bit(low)`; [`Matrix4::controlled`] places the control on
//!   the **high** bit.
//!
//! # Example
//!
//! ```
//! use qsim_statevec::{StateVector, Matrix2};
//!
//! # fn main() -> Result<(), qsim_statevec::StateVecError> {
//! let mut psi = StateVector::zero_state(2);
//! psi.apply_1q(&Matrix2::h(), 0)?;
//! psi.apply_2q(&qsim_statevec::Matrix4::cx(), 1, 0)?; // control = qubit 0
//! // Bell state: |00⟩ and |11⟩ each with probability 1/2.
//! assert!((psi.probability(0) - 0.5).abs() < 1e-12);
//! assert!((psi.probability(3) - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod batch;
mod buffer;
mod density;
mod eigen;
mod error;
mod fused;
mod matrix;
mod measure;
mod observable;
mod pauli;
mod pool;
pub mod snapshot;
mod state;
mod stored;

pub use buffer::{AmpBuf, AMP_ALIGN};
pub use density::DensityMatrix;
pub use eigen::hermitian_eigenvalues;
pub use error::StateVecError;
pub use fused::FusedOp;
pub use matrix::{Matrix2, Matrix4};
pub use measure::{sample_index, MeasureOutcome};
pub use observable::{Observable, ParsePauliStringError, PauliString};
pub use pauli::Pauli;
pub use pool::{PoolStats, StatePool};
pub use state::StateVector;
pub use stored::StoredState;

/// Complex amplitude type used throughout the workspace.
pub type C64 = num_complex::Complex64;

/// Numerical tolerance used by approximate comparisons in this crate.
pub const TOL: f64 = 1e-10;
