use std::fmt;

use crate::buffer::AmpBuf;
use crate::{Matrix2, Matrix4, Pauli, StateVecError, C64};

/// Maximum register width supported by the dense simulator (2^30 amplitudes
/// is 16 GiB of `Complex64`; anything larger is rejected up front).
pub(crate) const MAX_QUBITS: usize = 30;

/// Pairs per tile in the cache-blocked dense sweeps: 8 KiB per stream, so
/// a tile of each stream stays L1-resident even when the pair stride spans
/// megabytes on high-qubit registers.
const DENSE_TILE: usize = 512;

/// A dense `2^n`-amplitude pure quantum state.
///
/// Qubit 0 is the least significant bit of a basis index. The type owns its
/// amplitude buffer; cloning a `StateVector` is the "store an intermediate
/// state" operation whose count the paper's MSV metric tracks.
///
/// ```
/// use qsim_statevec::{StateVector, Matrix2};
///
/// # fn main() -> Result<(), qsim_statevec::StateVecError> {
/// let mut psi = StateVector::zero_state(1);
/// psi.apply_1q(&Matrix2::x(), 0)?;
/// assert_eq!(psi.probability(1), 1.0);
/// # Ok(())
/// # }
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: AmpBuf,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds the supported maximum (30).
    pub fn zero_state(n_qubits: usize) -> Self {
        assert!(
            n_qubits <= MAX_QUBITS,
            "{n_qubits} qubits exceeds the dense simulator maximum of {MAX_QUBITS}"
        );
        let mut amps = AmpBuf::zeroed(1 << n_qubits);
        amps[0] = C64::new(1.0, 0.0);
        StateVector { n_qubits, amps }
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::DimensionMismatch`] if `index >= 2^n_qubits`,
    /// or [`StateVecError::TooManyQubits`] for oversized registers.
    pub fn basis_state(n_qubits: usize, index: usize) -> Result<Self, StateVecError> {
        if n_qubits > MAX_QUBITS {
            return Err(StateVecError::TooManyQubits { n_qubits, max: MAX_QUBITS });
        }
        let dim = 1usize << n_qubits;
        if index >= dim {
            return Err(StateVecError::DimensionMismatch { expected: dim, actual: index });
        }
        let mut amps = AmpBuf::zeroed(dim);
        amps[index] = C64::new(1.0, 0.0);
        Ok(StateVector { n_qubits, amps })
    }

    /// Build a state from raw amplitudes (not renormalized).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::DimensionMismatch`] if `amps.len()` is not a
    /// power of two matching some register width.
    pub fn from_amplitudes(amps: &[C64]) -> Result<Self, StateVecError> {
        let len = amps.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(StateVecError::DimensionMismatch {
                expected: len.next_power_of_two().max(1),
                actual: len,
            });
        }
        let n_qubits = len.trailing_zeros() as usize;
        Ok(StateVector { n_qubits, amps: AmpBuf::from_slice(amps) })
    }

    /// Number of qubits in the register.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n`).
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The raw amplitude slice, basis index order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// `|⟨index|ψ⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The full Born-rule probability vector.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `⟨ψ|ψ⟩` (should be 1 for physical states).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescale to unit norm. No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            for a in self.amps.iter_mut() {
                *a /= n;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] if the registers differ.
    pub fn inner(&self, other: &StateVector) -> Result<C64, StateVecError> {
        if self.n_qubits != other.n_qubits {
            return Err(StateVecError::WidthMismatch {
                left: self.n_qubits,
                right: other.n_qubits,
            });
        }
        Ok(self.amps.iter().zip(other.amps.iter()).map(|(a, b)| a.conj() * b).sum())
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::WidthMismatch`] if the registers differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, StateVecError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// `⟨Z_q⟩ = P(q = 0) − P(q = 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn expectation_z(&self, qubit: usize) -> Result<f64, StateVecError> {
        self.check_qubit(qubit)?;
        let mask = 1usize << qubit;
        let mut e = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            e += if i & mask == 0 { p } else { -p };
        }
        Ok(e)
    }

    /// Amplitude-wise approximate equality within `tol` (stricter than
    /// fidelity: sensitive to global phase, which matters when asserting
    /// bitwise-style reproducibility).
    pub fn approx_eq(&self, other: &StateVector, tol: f64) -> bool {
        self.n_qubits == other.n_qubits
            && self.amps.iter().zip(other.amps.iter()).all(|(a, b)| (a - b).norm() <= tol)
    }

    /// Apply a one-qubit unitary to `qubit`. One "basic operation"
    /// (matrix-vector multiplication) in the paper's cost metric.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_1q(&mut self, m: &Matrix2, qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let [[m00, m01], [m10, m11]] = m.0;
        // Cache-blocked sweep: each pair block is two disjoint contiguous
        // streams, walked tile-by-tile so one tile of each stream stays
        // L1-resident even when `stride` spans megabytes; the disjoint
        // slices drop the bounds checks the indexed loop would pay.
        let n = self.amps.len();
        let mut base = 0;
        while base < n {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            for (lo_tile, hi_tile) in lo.chunks_mut(DENSE_TILE).zip(hi.chunks_mut(DENSE_TILE)) {
                for (a, b) in lo_tile.iter_mut().zip(hi_tile.iter_mut()) {
                    let (x, y) = (*a, *b);
                    *a = m00 * x + m01 * y;
                    *b = m10 * x + m11 * y;
                }
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Apply a two-qubit unitary; `low` indexes the low local bit and `high`
    /// the high local bit of the 4×4 matrix (see [`Matrix4`]). For
    /// [`Matrix4::cx`] the control is `high` and the target is `low`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_2q(&mut self, m: &Matrix4, low: usize, high: usize) -> Result<(), StateVecError> {
        self.check_qubit(low)?;
        self.check_qubit(high)?;
        if low == high {
            return Err(StateVecError::DuplicateQubit { qubit: low });
        }
        let (small, large) = if low < high { (low, high) } else { (high, low) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        // Which of the four contiguous streams carries the low local bit:
        // when `low < high` the small stride is the low bit, so stream
        // order (00, 01, 10, 11) matches (base, +small, +large, +both);
        // otherwise streams 01 and 10 swap places.
        let low_is_small = low < high;
        let n = self.amps.len();
        let r = &m.0;

        // Enumerate every index with both operand bits clear, processing
        // each run of `small_stride` groups as four parallel contiguous
        // streams (cache-blocked: all four legs advance linearly, and the
        // disjoint slices let the compiler drop bounds checks).
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                let quad = &mut self.amps[mid..mid + large_stride + 2 * small_stride];
                let (head, tail) = quad.split_at_mut(large_stride);
                let (s_base, head_rest) = head.split_at_mut(small_stride);
                let s_small = &mut head_rest[..small_stride];
                let (s_large, s_both) = tail.split_at_mut(small_stride);
                let (s01, s10) = if low_is_small { (s_small, s_large) } else { (s_large, s_small) };
                for (((p00, p01), p10), p11) in
                    s_base.iter_mut().zip(s01).zip(s10).zip(s_both.iter_mut())
                {
                    let (a0, a1, a2, a3) = (*p00, *p01, *p10, *p11);
                    *p00 = r[0][0] * a0 + r[0][1] * a1 + r[0][2] * a2 + r[0][3] * a3;
                    *p01 = r[1][0] * a0 + r[1][1] * a1 + r[1][2] * a2 + r[1][3] * a3;
                    *p10 = r[2][0] * a0 + r[2][1] * a1 + r[2][2] * a2 + r[2][3] * a3;
                    *p11 = r[3][0] * a0 + r[3][1] * a1 + r[3][2] * a2 + r[3][3] * a3;
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Multiply each amplitude by the matching entry of a diagonal one-qubit
    /// operator `diag(d[0], d[1])` on `qubit` — a single linear sweep with
    /// no gather/scatter, the cheapest kernel class.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_diag1(&mut self, d: &[C64; 2], qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let (d0, d1) = (d[0], d[1]);
        for (block, chunk) in self.amps.chunks_exact_mut(stride).enumerate() {
            let f = if block & 1 == 0 { d0 } else { d1 };
            for a in chunk {
                *a = f * *a;
            }
        }
        Ok(())
    }

    /// Multiply each amplitude by the matching entry of a diagonal two-qubit
    /// operator on `(low, high)` (local index `2·bit(high) + bit(low)`, as
    /// in [`Matrix4`]). A single linear sweep.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_diag2(
        &mut self,
        d: &[C64; 4],
        low: usize,
        high: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(low)?;
        self.check_qubit(high)?;
        if low == high {
            return Err(StateVecError::DuplicateQubit { qubit: low });
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            let local = (((i >> high) & 1) << 1) | ((i >> low) & 1);
            *a = d[local] * *a;
        }
        Ok(())
    }

    /// Multiply the amplitudes whose `qubit` bit is **set** by `d1` — the
    /// one-qubit phase kernel `diag(1, d1)` (S, T, Rz up to global phase,
    /// and any fused product of them). Touches half the array and performs
    /// half the multiplies of [`StateVector::apply_diag1`].
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_phase1(&mut self, d1: C64, qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let n = self.amps.len();
        let mut base = stride;
        while base < n {
            for a in self.amps[base..base + stride].iter_mut() {
                *a = d1 * *a;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Apply a phased one-qubit permutation (an anti-diagonal 2×2): for
    /// every pair, `new0 = phase[0] · old1` and `new1 = phase[1] · old0`.
    /// Covers X (`[1, 1]`), Y (`[-i, i]`), and any fused phase·X product
    /// with one multiply per amplitude and no additions.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_perm1(&mut self, phase: &[C64; 2], qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let (p0, p1) = (phase[0], phase[1]);
        let n = self.amps.len();
        let mut base = 0;
        while base < n {
            let (lo, hi) = self.amps[base..base + (stride << 1)].split_at_mut(stride);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let x = *a;
                *a = p0 * *b;
                *b = p1 * x;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Apply a controlled phase `diag(1, 1, 1, p)` on the (symmetric) pair
    /// `(qubit_a, qubit_b)`: multiply only the quarter of the amplitudes
    /// with **both** bits set. CZ is `p = −1`, CPhase(θ) is `p = e^{iθ}`.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_cphase2(
        &mut self,
        p: C64,
        qubit_a: usize,
        qubit_b: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(qubit_a)?;
        self.check_qubit(qubit_b)?;
        if qubit_a == qubit_b {
            return Err(StateVecError::DuplicateQubit { qubit: qubit_a });
        }
        let offset = (1usize << qubit_a) | (1usize << qubit_b);
        let (small, large) =
            if qubit_a < qubit_b { (qubit_a, qubit_b) } else { (qubit_b, qubit_a) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        let n = self.amps.len();
        // Strided enumeration of the indices with both bits clear; the
        // offset lands exactly on the both-bits-set quarter.
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                for i in mid..mid + small_stride {
                    let idx = i | offset;
                    self.amps[idx] = p * self.amps[idx];
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Apply a controlled diagonal `diag(d[0], d[1])` on `target`, active
    /// only where the `control` bit is set — the kernel for fused CZ/CS/CRz
    /// products `diag(1, 1, d0, d1)`. Touches half the array, one multiply
    /// per touched amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_cdiag1(
        &mut self,
        d: &[C64; 2],
        control: usize,
        target: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(StateVecError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let (d0, d1) = (d[0], d[1]);
        let (small, large) = if control < target { (control, target) } else { (target, control) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        let n = self.amps.len();
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                for i in mid..mid + small_stride {
                    let ic = i | cmask;
                    self.amps[ic] = d0 * self.amps[ic];
                    let ict = ic | tmask;
                    self.amps[ict] = d1 * self.amps[ict];
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Apply a controlled one-qubit unitary `u` on `target`, active only
    /// where the `control` bit is set: a dense 2×2 update on **half** the
    /// amplitude pairs (the other half is the identity block the dense 4×4
    /// kernel would multiply through).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_ctrl1(
        &mut self,
        u: &Matrix2,
        control: usize,
        target: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(StateVecError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let [[u00, u01], [u10, u11]] = u.0;
        let (small, large) = if control < target { (control, target) } else { (target, control) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        let n = self.amps.len();
        // Same enumeration as the CX fast path, with a 2×2 multiply in
        // place of the swap.
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                for i in mid..mid + small_stride {
                    let ia = i | cmask;
                    let ib = ia | tmask;
                    let x = self.amps[ia];
                    let y = self.amps[ib];
                    self.amps[ia] = u00 * x + u01 * y;
                    self.amps[ib] = u10 * x + u11 * y;
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Apply a two-qubit phased permutation on `(low, high)`: for each group
    /// of four amplitudes, `new[r] = phase[r] · old[src[r]]` over local
    /// indices `2·bit(high) + bit(low)`. Covers CX/CZ/SWAP-like operators
    /// and their products with Paulis without a dense 4×4 multiply.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_perm2(
        &mut self,
        src: &[u8; 4],
        phase: &[C64; 4],
        low: usize,
        high: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(low)?;
        self.check_qubit(high)?;
        if low == high {
            return Err(StateVecError::DuplicateQubit { qubit: low });
        }
        debug_assert!(src.iter().all(|&s| s < 4));
        let mask_low = 1usize << low;
        let mask_high = 1usize << high;
        let (small, large) = if low < high { (low, high) } else { (high, low) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        let n = self.amps.len();
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                for i in mid..mid + small_stride {
                    let idx = [i, i | mask_low, i | mask_high, i | mask_low | mask_high];
                    let old = [
                        self.amps[idx[0]],
                        self.amps[idx[1]],
                        self.amps[idx[2]],
                        self.amps[idx[3]],
                    ];
                    for r in 0..4 {
                        self.amps[idx[r]] = phase[r] * old[src[r] as usize];
                    }
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Apply a Pauli error operator via a permutation/sign fast path. Counted
    /// as one basic operation, exactly like [`StateVector::apply_1q`].
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] for an invalid qubit.
    pub fn apply_pauli(&mut self, p: Pauli, qubit: usize) -> Result<(), StateVecError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let n = self.amps.len();
        match p {
            Pauli::X => {
                let mut base = 0;
                while base < n {
                    for i in base..base + stride {
                        self.amps.swap(i, i + stride);
                    }
                    base += stride << 1;
                }
            }
            Pauli::Y => {
                let i_pos = C64::new(0.0, 1.0);
                let i_neg = C64::new(0.0, -1.0);
                let mut base = 0;
                while base < n {
                    for i in base..base + stride {
                        let a = self.amps[i];
                        let b = self.amps[i + stride];
                        self.amps[i] = i_neg * b;
                        self.amps[i + stride] = i_pos * a;
                    }
                    base += stride << 1;
                }
            }
            Pauli::Z => {
                let mut base = stride;
                while base < n {
                    for i in base..base + stride {
                        self.amps[i] = -self.amps[i];
                    }
                    base += stride << 1;
                }
            }
        }
        Ok(())
    }

    /// Apply a CNOT with `control` and `target` qubits (permutation fast
    /// path; equivalent to `apply_2q(&Matrix4::cx(), target, control)`).
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_cx(&mut self, control: usize, target: usize) -> Result<(), StateVecError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(StateVecError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let (small, large) = if control < target { (control, target) } else { (target, control) };
        let small_stride = 1usize << small;
        let large_stride = 1usize << large;
        let n = self.amps.len();
        // Strided enumeration of the 2^(n−2) indices with both operand bits
        // clear; offsetting by the control mask yields exactly the swapped
        // pairs, with no per-index branch.
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + large_stride {
                for i in mid..mid + small_stride {
                    self.amps.swap(i | cmask, i | cmask | tmask);
                }
                mid += small_stride << 1;
            }
            outer += large_stride << 1;
        }
        Ok(())
    }

    /// Apply a Toffoli (CCX) gate via the permutation fast path.
    ///
    /// # Errors
    ///
    /// Returns [`StateVecError::QubitOutOfRange`] or
    /// [`StateVecError::DuplicateQubit`].
    pub fn apply_ccx(
        &mut self,
        control_a: usize,
        control_b: usize,
        target: usize,
    ) -> Result<(), StateVecError> {
        self.check_qubit(control_a)?;
        self.check_qubit(control_b)?;
        self.check_qubit(target)?;
        if control_a == control_b {
            return Err(StateVecError::DuplicateQubit { qubit: control_a });
        }
        if control_a == target || control_b == target {
            return Err(StateVecError::DuplicateQubit { qubit: target });
        }
        let cmask = (1usize << control_a) | (1usize << control_b);
        let tmask = 1usize << target;
        let mut qs = [control_a, control_b, target];
        qs.sort_unstable();
        let [s0, s1, s2] = qs.map(|q| 1usize << q);
        let n = self.amps.len();
        // Strided enumeration of the 2^(n−3) indices with all three operand
        // bits clear; offsetting by the control masks yields the swapped
        // pairs, with no per-index branch.
        let mut outer = 0;
        while outer < n {
            let mut mid = outer;
            while mid < outer + s2 {
                let mut inner = mid;
                while inner < mid + s1 {
                    for i in inner..inner + s0 {
                        self.amps.swap(i | cmask, i | cmask | tmask);
                    }
                    inner += s0 << 1;
                }
                mid += s1 << 1;
            }
            outer += s2 << 1;
        }
        Ok(())
    }

    /// Tear down into the raw amplitude buffer (for [`crate::StatePool`]).
    pub(crate) fn into_amps(self) -> AmpBuf {
        self.amps
    }

    /// Rebuild from a buffer already known to have length `2^n_qubits`
    /// (for [`crate::StatePool`]).
    pub(crate) fn from_amps_unchecked(n_qubits: usize, amps: AmpBuf) -> Self {
        debug_assert_eq!(amps.len(), 1usize << n_qubits);
        StateVector { n_qubits, amps }
    }

    /// Mutable amplitude slice for the crate-internal batched kernels
    /// (`crate::batch`), which stream one operator across many sibling
    /// states and need direct index access into each buffer.
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    pub(crate) fn check_qubit(&self, qubit: usize) -> Result<(), StateVecError> {
        if qubit >= self.n_qubits {
            Err(StateVecError::QubitOutOfRange { qubit, n_qubits: self.n_qubits })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateVector({} qubits", self.n_qubits)?;
        if self.n_qubits <= 4 {
            write!(f, "; [")?;
            for (i, a) in self.amps.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.3}{:+.3}i", a.re, a.im)?;
            }
            write!(f, "]")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > 1e-12 {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "({:.4}{:+.4}i)|{:0width$b}⟩", a.re, a.im, i, width = self.n_qubits)?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOL;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn zero_state_is_normalized_basis_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.n_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert_close(s.probability(0), 1.0);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn basis_state_sets_requested_index() {
        let s = StateVector::basis_state(3, 5).unwrap();
        assert_close(s.probability(5), 1.0);
        assert!(StateVector::basis_state(2, 4).is_err());
    }

    #[test]
    fn from_amplitudes_validates_length() {
        assert!(StateVector::from_amplitudes(&[]).is_err());
        assert!(StateVector::from_amplitudes(&[C64::new(1.0, 0.0); 3]).is_err());
        let s = StateVector::from_amplitudes(&[C64::new(0.6, 0.0), C64::new(0.8, 0.0)]).unwrap();
        assert_eq!(s.n_qubits(), 1);
    }

    #[test]
    fn x_flips_each_qubit_position() {
        for q in 0..3 {
            let mut s = StateVector::zero_state(3);
            s.apply_1q(&Matrix2::x(), q).unwrap();
            assert_close(s.probability(1 << q), 1.0);
        }
    }

    #[test]
    fn hadamard_then_hadamard_is_identity() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::h(), 1).unwrap();
        s.apply_1q(&Matrix2::h(), 1).unwrap();
        assert_close(s.probability(0), 1.0);
    }

    #[test]
    fn bell_state_via_h_and_cx() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        s.apply_cx(0, 1).unwrap();
        assert_close(s.probability(0), 0.5);
        assert_close(s.probability(3), 0.5);
        assert_close(s.probability(1), 0.0);
        assert_close(s.probability(2), 0.0);
    }

    #[test]
    fn cx_fast_path_matches_matrix_kernel() {
        for (c, t) in [(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)] {
            let mut a = StateVector::zero_state(3);
            let mut b = StateVector::zero_state(3);
            // Prepare an arbitrary state first.
            for q in 0..3 {
                a.apply_1q(&Matrix2::u(0.3 + q as f64, 0.7, -0.2), q).unwrap();
                b.apply_1q(&Matrix2::u(0.3 + q as f64, 0.7, -0.2), q).unwrap();
            }
            a.apply_cx(c, t).unwrap();
            b.apply_2q(&Matrix4::cx(), t, c).unwrap();
            assert!(a.fidelity(&b).unwrap() > 1.0 - 1e-12);
            assert!(a.amplitudes().iter().zip(b.amplitudes()).all(|(x, y)| (x - y).norm() < TOL));
        }
    }

    #[test]
    fn pauli_fast_paths_match_matrix_kernels() {
        for p in Pauli::ALL {
            for q in 0..3 {
                let mut a = StateVector::zero_state(3);
                let mut b = StateVector::zero_state(3);
                for k in 0..3 {
                    let u = Matrix2::u(1.1 * (k + 1) as f64, -0.4, 0.9);
                    a.apply_1q(&u, k).unwrap();
                    b.apply_1q(&u, k).unwrap();
                }
                a.apply_pauli(p, q).unwrap();
                b.apply_1q(&p.matrix(), q).unwrap();
                assert!(
                    a.amplitudes().iter().zip(b.amplitudes()).all(|(x, y)| (x - y).norm() < TOL),
                    "fast path mismatch for {p} on qubit {q}"
                );
            }
        }
    }

    #[test]
    fn apply_2q_matches_kron_of_1q() {
        let u = Matrix2::u(0.9, 0.3, -1.4);
        let v = Matrix2::u(2.0, -0.8, 0.5);
        let mut a = StateVector::zero_state(3);
        let mut b = StateVector::zero_state(3);
        for k in 0..3 {
            let w = Matrix2::u(0.6 * (k + 1) as f64, 0.2, -0.1);
            a.apply_1q(&w, k).unwrap();
            b.apply_1q(&w, k).unwrap();
        }
        // kron(high=v on qubit 2, low=u on qubit 0)
        a.apply_2q(&Matrix4::kron(&v, &u), 0, 2).unwrap();
        b.apply_1q(&u, 0).unwrap();
        b.apply_1q(&v, 2).unwrap();
        assert!(a.amplitudes().iter().zip(b.amplitudes()).all(|(x, y)| (x - y).norm() < TOL));
    }

    #[test]
    fn apply_2q_operand_order_convention() {
        // CX with control=qubit 1 (high), target=qubit 0 (low), from |10⟩.
        let mut s = StateVector::basis_state(2, 0b10).unwrap();
        s.apply_2q(&Matrix4::cx(), 0, 1).unwrap();
        assert_close(s.probability(0b11), 1.0);
        // Swapping operands: control=qubit 0. |10⟩ unchanged.
        let mut s = StateVector::basis_state(2, 0b10).unwrap();
        s.apply_2q(&Matrix4::cx(), 1, 0).unwrap();
        assert_close(s.probability(0b10), 1.0);
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut s = StateVector::zero_state(4);
        for q in 0..4 {
            s.apply_1q(&Matrix2::u(1.0 + q as f64, 0.5, -0.5), q).unwrap();
        }
        s.apply_2q(&Matrix4::cphase(0.7), 1, 3).unwrap();
        s.apply_cx(0, 2).unwrap();
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn errors_on_bad_operands() {
        let mut s = StateVector::zero_state(2);
        assert_eq!(
            s.apply_1q(&Matrix2::x(), 2),
            Err(StateVecError::QubitOutOfRange { qubit: 2, n_qubits: 2 })
        );
        assert_eq!(
            s.apply_2q(&Matrix4::cx(), 1, 1),
            Err(StateVecError::DuplicateQubit { qubit: 1 })
        );
        assert!(s.apply_cx(0, 0).is_err());
        assert!(s.expectation_z(5).is_err());
        let other = StateVector::zero_state(3);
        assert!(s.inner(&other).is_err());
    }

    #[test]
    fn ccx_flips_target_only_when_both_controls_set() {
        for idx in 0..8usize {
            let mut s = StateVector::basis_state(3, idx).unwrap();
            s.apply_ccx(0, 1, 2).unwrap();
            let expected = if idx & 0b011 == 0b011 { idx ^ 0b100 } else { idx };
            assert_close(s.probability(expected), 1.0);
        }
        let mut s = StateVector::zero_state(3);
        assert!(s.apply_ccx(0, 0, 2).is_err());
        assert!(s.apply_ccx(0, 1, 1).is_err());
        assert!(s.apply_ccx(0, 1, 3).is_err());
    }

    #[test]
    fn expectation_z_signs() {
        let s = StateVector::zero_state(2);
        assert_close(s.expectation_z(0).unwrap(), 1.0);
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::x(), 1).unwrap();
        assert_close(s.expectation_z(1).unwrap(), -1.0);
        let mut s = StateVector::zero_state(1);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        assert_close(s.expectation_z(0).unwrap(), 0.0);
    }

    #[test]
    fn approx_eq_is_phase_sensitive() {
        let mut a = StateVector::zero_state(1);
        a.apply_1q(&Matrix2::h(), 0).unwrap();
        let mut b = a.clone();
        assert!(a.approx_eq(&b, 1e-12));
        b.apply_1q(&Matrix2::rz(0.5), 0).unwrap();
        assert!(!a.approx_eq(&b, 1e-6));
        let wide = StateVector::zero_state(2);
        assert!(!a.approx_eq(&wide, 1.0));
    }

    #[test]
    fn normalize_rescales() {
        let mut s =
            StateVector::from_amplitudes(&[C64::new(3.0, 0.0), C64::new(4.0, 0.0)]).unwrap();
        s.normalize();
        assert_close(s.norm_sqr(), 1.0);
        assert_close(s.probability(0), 9.0 / 25.0);
    }

    #[test]
    fn display_shows_nonzero_terms() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        let shown = s.to_string();
        assert!(shown.contains("|00⟩"));
        assert!(shown.contains("|01⟩"));
        assert!(!shown.contains("|10⟩"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = StateVector::zero_state(1);
        assert!(!format!("{s:?}").is_empty());
    }
}
