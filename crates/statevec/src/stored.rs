use crate::{StateVector, C64};

/// Lossless, adaptive storage for a state vector at rest.
///
/// The paper's MSV metric exists because every cached frontier costs `2ⁿ`
/// amplitudes; its related work points to compressed state representations
/// as the complementary lever. `StoredState` implements the simplest exact
/// variant: states whose amplitude vector is mostly **bitwise zero** (as in
/// structured circuits — basis-state segments of BV, adders, modular
/// arithmetic) are kept as `(index, amplitude)` pairs; dense states are
/// kept verbatim. Reconstruction is exact up to the sign of zero (`-0.0`
/// entries come back as `+0.0`, which is `==` and cannot change any
/// probability, amplitude product, or sampled outcome), so executors built
/// on it keep the outcome-equivalence guarantee.
///
/// ```
/// use qsim_statevec::{StateVector, StoredState};
///
/// let psi = StateVector::basis_state(10, 37)?;
/// let stored = StoredState::compress(&psi);
/// assert!(stored.is_sparse());
/// assert!(stored.stored_bytes() < StoredState::dense_bytes(10));
/// assert_eq!(stored.to_state().amplitudes(), psi.amplitudes());
/// # Ok::<(), qsim_statevec::StateVecError>(())
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq)]
pub enum StoredState {
    /// Kept as a full amplitude vector.
    Dense(StateVector),
    /// Kept as nonzero `(basis index, amplitude)` pairs, index-sorted.
    Sparse {
        /// Register width.
        n_qubits: usize,
        /// Nonzero entries in increasing index order.
        entries: Vec<(usize, C64)>,
    },
}

impl StoredState {
    /// Sparse entries cost an index plus an amplitude; go sparse only when
    /// that beats the dense layout.
    const SPARSE_ENTRY_BYTES: usize = std::mem::size_of::<usize>() + std::mem::size_of::<C64>();

    /// Compress by exact-zero elision when it saves memory, by value
    /// otherwise.
    pub fn compress(state: &StateVector) -> StoredState {
        let dim = state.dim();
        let nnz = state.amplitudes().iter().filter(|a| a.re != 0.0 || a.im != 0.0).count();
        if nnz * Self::SPARSE_ENTRY_BYTES < dim * std::mem::size_of::<C64>() {
            StoredState::Sparse {
                n_qubits: state.n_qubits(),
                entries: state
                    .amplitudes()
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.re != 0.0 || a.im != 0.0)
                    .map(|(i, &a)| (i, a))
                    .collect(),
            }
        } else {
            StoredState::Dense(state.clone())
        }
    }

    /// Take ownership of a state, compressing if profitable (avoids one
    /// clone relative to [`StoredState::compress`] in the dense case).
    pub fn compress_owned(state: StateVector) -> StoredState {
        match StoredState::compress(&state) {
            StoredState::Dense(_) => StoredState::Dense(state),
            sparse => sparse,
        }
    }

    /// Reconstruct the dense state (exact up to the sign of zero).
    pub fn to_state(&self) -> StateVector {
        match self {
            StoredState::Dense(state) => state.clone(),
            StoredState::Sparse { n_qubits, entries } => {
                let mut amps = vec![C64::new(0.0, 0.0); 1 << n_qubits];
                for &(index, amp) in entries {
                    amps[index] = amp;
                }
                StateVector::from_amplitudes(&amps).expect("power-of-two length by construction")
            }
        }
    }

    /// Consume into a dense state (free for the dense variant).
    pub fn into_state(self) -> StateVector {
        match self {
            StoredState::Dense(state) => state,
            sparse => sparse.to_state(),
        }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        match self {
            StoredState::Dense(state) => state.n_qubits(),
            StoredState::Sparse { n_qubits, .. } => *n_qubits,
        }
    }

    /// Whether the sparse representation was chosen.
    pub fn is_sparse(&self) -> bool {
        matches!(self, StoredState::Sparse { .. })
    }

    /// Approximate heap bytes held by this stored form.
    pub fn stored_bytes(&self) -> usize {
        match self {
            StoredState::Dense(state) => state.dim() * std::mem::size_of::<C64>(),
            StoredState::Sparse { entries, .. } => entries.len() * Self::SPARSE_ENTRY_BYTES,
        }
    }

    /// Bytes a dense `n_qubits` state costs — the MSV unit price.
    pub fn dense_bytes(n_qubits: usize) -> usize {
        (1usize << n_qubits) * std::mem::size_of::<C64>()
    }
}

impl From<StateVector> for StoredState {
    fn from(state: StateVector) -> Self {
        StoredState::compress_owned(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;

    #[test]
    fn basis_states_compress_sparse_and_roundtrip_exactly() {
        for idx in [0usize, 1, 100, 511] {
            let psi = StateVector::basis_state(9, idx).unwrap();
            let stored = StoredState::compress(&psi);
            assert!(stored.is_sparse());
            assert_eq!(stored.n_qubits(), 9);
            assert_eq!(stored.to_state().amplitudes(), psi.amplitudes());
            assert!(stored.stored_bytes() < StoredState::dense_bytes(9) / 8);
        }
    }

    #[test]
    fn dense_states_stay_dense() {
        let mut psi = StateVector::zero_state(6);
        for q in 0..6 {
            psi.apply_1q(&Matrix2::h(), q).unwrap();
        }
        let stored = StoredState::compress(&psi);
        assert!(!stored.is_sparse());
        assert_eq!(stored.stored_bytes(), StoredState::dense_bytes(6));
        assert_eq!(stored.to_state().amplitudes(), psi.amplitudes());
    }

    #[test]
    fn partial_superpositions_compress_when_profitable() {
        // 2 nonzero amplitudes in a 2^8 space.
        let mut psi = StateVector::zero_state(8);
        psi.apply_1q(&Matrix2::h(), 3).unwrap();
        let stored = StoredState::compress(&psi);
        assert!(stored.is_sparse());
        let rebuilt = stored.to_state();
        assert_eq!(rebuilt.amplitudes(), psi.amplitudes());
    }

    #[test]
    fn compress_owned_avoids_data_change() {
        let psi = StateVector::basis_state(4, 9).unwrap();
        let stored = StoredState::compress_owned(psi.clone());
        assert_eq!(stored.to_state(), psi);
        let stored: StoredState = psi.clone().into();
        assert_eq!(stored.into_state(), psi);
    }

    #[test]
    fn breakeven_prefers_dense_at_high_occupancy() {
        // Fill ~3/4 of a 4-qubit register with nonzeros: sparse would cost
        // 12 × 24 bytes > 16 × 16 bytes dense.
        let mut amps = vec![C64::new(0.0, 0.0); 16];
        for (i, amp) in amps.iter_mut().enumerate().take(12) {
            *amp = C64::new(1.0 + i as f64, 0.0);
        }
        let psi = StateVector::from_amplitudes(&amps).unwrap();
        let stored = StoredState::compress(&psi);
        assert!(!stored.is_sparse());
    }

    #[test]
    fn negative_zero_is_preserved_bitwise() {
        // -0.0 has re == 0.0 under IEEE comparison, so it is elided; the
        // reconstruction gives +0.0, which is == and produces identical
        // downstream arithmetic for our kernels (0.0 * x == -0.0 * x).
        let mut amps = vec![C64::new(0.0, 0.0); 4];
        amps[2] = C64::new(1.0, 0.0);
        amps[1] = C64::new(-0.0, 0.0);
        let psi = StateVector::from_amplitudes(&amps).unwrap();
        let stored = StoredState::compress(&psi);
        assert!(stored.is_sparse());
        let rebuilt = stored.to_state();
        assert_eq!(rebuilt.probability(2), 1.0);
        assert_eq!(rebuilt.probability(1), 0.0);
    }
}
