use rand::{Rng, RngExt};

use crate::StateVector;

/// The classical result of measuring every qubit of a register once.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MeasureOutcome {
    bits: Vec<bool>,
}

impl MeasureOutcome {
    /// Construct from a basis index, least-significant bit = qubit 0.
    pub fn from_index(index: usize, n_qubits: usize) -> Self {
        MeasureOutcome { bits: (0..n_qubits).map(|q| index >> q & 1 == 1).collect() }
    }

    /// The measured bit for `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn bit(&self, qubit: usize) -> bool {
        self.bits[qubit]
    }

    /// Flip the recorded bit for `qubit` (models a classical readout error).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn flip(&mut self, qubit: usize) {
        self.bits[qubit] = !self.bits[qubit];
    }

    /// Number of measured qubits.
    pub fn n_qubits(&self) -> usize {
        self.bits.len()
    }

    /// Re-pack into a basis index.
    pub fn to_index(&self) -> usize {
        self.bits.iter().enumerate().fold(0usize, |acc, (q, &b)| acc | (usize::from(b) << q))
    }

    /// Bits as a vector, index = qubit.
    pub fn to_bits(&self) -> Vec<bool> {
        self.bits.clone()
    }
}

impl std::fmt::Display for MeasureOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Most-significant qubit first, ket style.
        for &b in self.bits.iter().rev() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// Sample one basis index from the Born distribution of `state` using a
/// single uniform draw over the cumulative distribution.
///
/// The state need not be exactly normalized; the draw is scaled by the total
/// norm, which makes sampling robust to accumulated floating-point drift.
pub fn sample_index<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> usize {
    let total: f64 = state.norm_sqr();
    let mut u: f64 = rng.random::<f64>() * total;
    let amps = state.amplitudes();
    for (i, a) in amps.iter().enumerate() {
        let p = a.norm_sqr();
        if u < p {
            return i;
        }
        u -= p;
    }
    // Floating-point tail: return the last basis state with nonzero weight.
    amps.iter().rposition(|a| a.norm_sqr() > 0.0).unwrap_or(amps.len() - 1)
}

impl StateVector {
    /// Sample a full-register measurement outcome (one "shot").
    ///
    /// ```
    /// use qsim_statevec::StateVector;
    /// use rand::SeedableRng;
    ///
    /// let psi = StateVector::zero_state(3);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let outcome = psi.sample(&mut rng);
    /// assert_eq!(outcome.to_index(), 0);
    /// ```
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MeasureOutcome {
        MeasureOutcome::from_index(sample_index(self, rng), self.n_qubits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outcome_index_roundtrip() {
        for idx in 0..16 {
            let o = MeasureOutcome::from_index(idx, 4);
            assert_eq!(o.to_index(), idx);
            assert_eq!(o.n_qubits(), 4);
        }
    }

    #[test]
    fn outcome_bit_and_flip() {
        let mut o = MeasureOutcome::from_index(0b0101, 4);
        assert!(o.bit(0));
        assert!(!o.bit(1));
        o.flip(1);
        assert_eq!(o.to_index(), 0b0111);
        o.flip(1);
        assert_eq!(o.to_index(), 0b0101);
    }

    #[test]
    fn outcome_display_is_msb_first() {
        let o = MeasureOutcome::from_index(0b001, 3);
        assert_eq!(o.to_string(), "001");
        let o = MeasureOutcome::from_index(0b100, 3);
        assert_eq!(o.to_string(), "100");
    }

    #[test]
    fn deterministic_state_always_samples_same_index() {
        let s = StateVector::basis_state(3, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(sample_index(&s, &mut rng), 6);
        }
    }

    #[test]
    fn uniform_state_sampling_is_roughly_uniform() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(&Matrix2::h(), 0).unwrap();
        s.apply_1q(&Matrix2::h(), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let shots = 40_000;
        for _ in 0..shots {
            counts[sample_index(&s, &mut rng)] += 1;
        }
        for &count in &counts {
            let freq = count as f64 / shots as f64;
            assert!((freq - 0.25).abs() < 0.02, "frequency {freq} too far from 0.25");
        }
    }

    #[test]
    fn sampling_matches_biased_distribution() {
        // |ψ⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩ with P(1) = sin²(θ/2) ≈ 0.2.
        let theta = 2.0 * 0.2_f64.sqrt().asin();
        let mut s = StateVector::zero_state(1);
        s.apply_1q(&Matrix2::ry(theta), 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let shots = 50_000;
        let ones = (0..shots).filter(|_| sample_index(&s, &mut rng) == 1).count();
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.2).abs() < 0.02, "frequency {freq} too far from 0.2");
    }

    #[test]
    fn same_seed_gives_identical_shot_streams() {
        let mut s = StateVector::zero_state(3);
        for q in 0..3 {
            s.apply_1q(&Matrix2::h(), q).unwrap();
        }
        let shots_a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| sample_index(&s, &mut rng)).collect()
        };
        let shots_b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| sample_index(&s, &mut rng)).collect()
        };
        assert_eq!(shots_a, shots_b);
    }
}
