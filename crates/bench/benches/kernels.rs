//! Microbenchmarks of the state-vector substrate: the basic operations the
//! paper's cost metric counts, plus the state-clone cost behind each MSV.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim_statevec::{Matrix2, Matrix4, Pauli, StateVector};

fn prepared(n: usize) -> StateVector {
    let mut s = StateVector::zero_state(n);
    for q in 0..n {
        s.apply_1q(&Matrix2::u(0.3 + q as f64 * 0.1, 0.2, -0.4), q).expect("valid qubit");
    }
    s
}

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for n in [10usize, 16, 20] {
        let state = prepared(n);
        group.bench_with_input(BenchmarkId::new("apply_1q", n), &state, |b, s| {
            let h = Matrix2::h();
            let mut s = s.clone();
            b.iter(|| s.apply_1q(&h, n / 2).expect("valid qubit"));
        });
        group.bench_with_input(BenchmarkId::new("apply_2q", n), &state, |b, s| {
            let cx = Matrix4::cx();
            let mut s = s.clone();
            b.iter(|| s.apply_2q(&cx, 0, n - 1).expect("valid qubits"));
        });
        group.bench_with_input(BenchmarkId::new("apply_cx_fast", n), &state, |b, s| {
            let mut s = s.clone();
            b.iter(|| s.apply_cx(n - 1, 0).expect("valid qubits"));
        });
        group.bench_with_input(BenchmarkId::new("apply_pauli_x", n), &state, |b, s| {
            let mut s = s.clone();
            b.iter(|| s.apply_pauli(Pauli::X, n / 2).expect("valid qubit"));
        });
        group.bench_with_input(BenchmarkId::new("clone_msv_cost", n), &state, |b, s| {
            b.iter(|| s.clone());
        });
    }
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
