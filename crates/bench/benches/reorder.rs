//! Throughput of the static pipeline: trial generation (direct vs binomial
//! fast path), reordering, and the LCP cost analyzer.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qsim_circuit::catalog;
use qsim_noise::{NoiseModel, TrialGenerator};
use redsim::analysis::analyze_sorted;
use redsim::order::reorder;

fn pipeline(c: &mut Criterion) {
    let layered = catalog::quantum_volume(10, 10, 1).layered().expect("qv layers");
    let model = NoiseModel::artificial(10, 1e-3);
    let generator = TrialGenerator::new(&layered, &model).expect("native circuit");

    let mut group = c.benchmark_group("static_pipeline");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("generate_direct", n), &n, |b, &n| {
            b.iter(|| generator.generate(n, 3));
        });
        group.bench_with_input(BenchmarkId::new("generate_fast", n), &n, |b, &n| {
            b.iter(|| generator.generate_fast(n, 3));
        });
        let set = generator.generate_fast(n, 3);
        group.bench_with_input(BenchmarkId::new("reorder", n), &set, |b, set| {
            b.iter(|| {
                let mut trials = set.trials().to_vec();
                reorder(&mut trials);
                trials
            });
        });
        let mut sorted = set.trials().to_vec();
        reorder(&mut sorted);
        group.bench_with_input(BenchmarkId::new("analyze", n), &sorted, |b, sorted| {
            b.iter(|| analyze_sorted(&layered, sorted).expect("trials fit"));
        });
        group.bench_with_input(BenchmarkId::new("estimate", n), &n, |b, &n| {
            b.iter(|| redsim::estimate::estimate_first_order(&layered, &generator, n));
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
