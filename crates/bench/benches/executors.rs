//! Wall-clock comparison of the baseline and redundancy-eliminated
//! executors — the op-count savings of Figs. 5/7 translated into time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redsim::exec::{BaselineExecutor, ReuseExecutor};
use redsim::parallel::{run_baseline_parallel, run_reordered_parallel};
use redsim_bench::suite::{yorktown_model, yorktown_suite};

fn executors(c: &mut Criterion) {
    let suite = yorktown_suite();
    let model = yorktown_model();
    let mut group = c.benchmark_group("executors");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for name in ["bv4", "qft4", "grover", "qv_n5d3"] {
        let bench = suite.iter().find(|b| b.name == name).expect("suite member");
        let trials = qsim_noise::TrialGenerator::new(&bench.layered, &model)
            .expect("valid model")
            .generate(512, 7);
        group.bench_with_input(BenchmarkId::new("baseline", name), &trials, |b, trials| {
            let exec = BaselineExecutor::new(&bench.layered);
            b.iter(|| exec.run(trials.trials()).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("reuse", name), &trials, |b, trials| {
            let exec = ReuseExecutor::new(&bench.layered);
            b.iter(|| exec.run(trials.trials()).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("reuse_budget_2", name), &trials, |b, trials| {
            let exec = ReuseExecutor::new(&bench.layered);
            b.iter(|| exec.run_with_budget(trials.trials(), 2).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("reuse_compressed", name), &trials, |b, trials| {
            b.iter(|| {
                redsim::compressed::run_reordered_compressed(&bench.layered, trials.trials())
                    .expect("execution succeeds")
            });
        });
    }
    group.finish();

    // Parallel scaling on one heavier workload.
    let mut group = c.benchmark_group("parallel");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let bench = suite.iter().find(|b| b.name == "qv_n5d5").expect("suite member");
    let trials = qsim_noise::TrialGenerator::new(&bench.layered, &model)
        .expect("valid model")
        .generate(4096, 9);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("baseline", threads), &trials, |b, trials| {
            b.iter(|| {
                run_baseline_parallel(&bench.layered, trials.trials(), threads)
                    .expect("execution succeeds")
            });
        });
        group.bench_with_input(BenchmarkId::new("reuse", threads), &trials, |b, trials| {
            b.iter(|| {
                run_reordered_parallel(&bench.layered, trials.trials(), threads)
                    .expect("execution succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, executors);
criterion_main!(benches);
