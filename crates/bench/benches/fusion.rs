//! Wall-clock comparison of fused vs unfused execution — the gate-fusion
//! layer's speedup on the heavier Yorktown benchmarks.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redsim::exec::{BaselineExecutor, ReuseExecutor};
use redsim_bench::suite::{yorktown_model, yorktown_suite};

fn fusion(c: &mut Criterion) {
    let suite = yorktown_suite();
    let model = yorktown_model();
    let mut group = c.benchmark_group("fusion");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for name in ["qft5", "qv_n5d5"] {
        let bench = suite.iter().find(|b| b.name == name).expect("suite member");
        let trials = qsim_noise::TrialGenerator::new(&bench.layered, &model)
            .expect("valid model")
            .generate(256, 2020);
        group.bench_with_input(BenchmarkId::new("baseline_unfused", name), &trials, |b, t| {
            let exec = BaselineExecutor::new(&bench.layered);
            b.iter(|| exec.run_unfused(t.trials()).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("baseline_fused", name), &trials, |b, t| {
            let exec = BaselineExecutor::new(&bench.layered);
            b.iter(|| exec.run(t.trials()).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("reuse_unfused", name), &trials, |b, t| {
            let exec = ReuseExecutor::new(&bench.layered);
            b.iter(|| exec.run_unfused(t.trials()).expect("execution succeeds"));
        });
        group.bench_with_input(BenchmarkId::new("reuse_fused", name), &trials, |b, t| {
            let exec = ReuseExecutor::new(&bench.layered);
            b.iter(|| exec.run(t.trials()).expect("execution succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, fusion);
criterion_main!(benches);
