//! Minimal fixed-width text table rendering for experiment binaries.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (padded or truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(n_cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      10000");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }
}
