//! The compiled benchmark suites of the paper's two experiment groups.

use qsim_circuit::transpile::{transpile, TranspileOptions};
use qsim_circuit::{catalog, Circuit, CouplingMap, GateCounts, LayeredCircuit};
use qsim_noise::NoiseModel;

/// One benchmark ready for noisy simulation: the logical program, its
/// Yorktown-compiled form, and the layered view the simulator consumes.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Table-I name.
    pub name: String,
    /// Pre-compilation circuit.
    pub logical: Circuit,
    /// Post-compilation circuit (device basis, routed, fused).
    pub compiled: Circuit,
    /// Layered view of the compiled circuit.
    pub layered: LayeredCircuit,
}

impl Benchmark {
    /// Post-compilation gate counts (the numbers Table I reports).
    pub fn counts(&self) -> GateCounts {
        self.compiled.counts()
    }
}

/// The paper's Table-I characteristics for each benchmark, for side-by-side
/// reporting: `(name, qubits, single, cnot, measure)`.
pub const PAPER_TABLE1: [(&str, usize, usize, usize, usize); 12] = [
    ("rb", 2, 9, 2, 2),
    ("grover", 3, 87, 25, 3),
    ("wstate", 3, 21, 9, 3),
    ("7x1mod15", 4, 17, 9, 4),
    ("bv4", 4, 8, 3, 3),
    ("bv5", 5, 10, 4, 4),
    ("qft4", 4, 42, 15, 4),
    ("qft5", 5, 83, 26, 5),
    ("qv_n5d2", 5, 44, 12, 5),
    ("qv_n5d3", 5, 74, 21, 5),
    ("qv_n5d4", 5, 100, 30, 5),
    ("qv_n5d5", 5, 130, 36, 5),
];

/// Compile the 12 Table-I benchmarks to the IBM Yorktown device — the
/// workload of the paper's realistic experiments (§V.A).
///
/// # Panics
///
/// Panics if any catalog circuit fails to compile (a programming error
/// covered by tests, not a runtime condition).
pub fn yorktown_suite() -> Vec<Benchmark> {
    let options = TranspileOptions::for_device(CouplingMap::yorktown());
    catalog::realistic_suite()
        .into_iter()
        .map(|logical| {
            let out = transpile(&logical, &options)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", logical.name()));
            let layered = out
                .circuit
                .layered()
                .unwrap_or_else(|e| panic!("{} failed to layer: {e}", logical.name()));
            Benchmark { name: logical.name().to_owned(), logical, compiled: out.circuit, layered }
        })
        .collect()
}

/// The realistic error model of §V.A (Fig. 4 calibration).
pub fn yorktown_model() -> NoiseModel {
    NoiseModel::ibm_yorktown()
}

/// The QV scalability workload of §V.B: `(n_qubits, depth)` pairs.
pub const SCALABILITY_SHAPES: [(usize, usize); 7] =
    [(10, 5), (10, 10), (10, 15), (10, 20), (20, 20), (30, 20), (40, 20)];

/// The four error settings of §V.B, as single-qubit rates (two-qubit and
/// measurement rates are 10×): `10⁻³, 5·10⁻⁴, 2·10⁻⁴, 10⁻⁴`.
pub const SCALABILITY_RATES: [f64; 4] = [1e-3, 5e-4, 2e-4, 1e-4];

/// Build one scalability benchmark: a QV circuit of the given shape, layered
/// directly (the artificial future device is fully connected and its native
/// set already matches the generator's output, so no routing is needed).
///
/// # Panics
///
/// Panics on layering failure (covered by tests).
pub fn scalability_circuit(n_qubits: usize, depth: usize) -> LayeredCircuit {
    let seed = (n_qubits * 1000 + depth) as u64;
    catalog::quantum_volume(n_qubits, depth, seed).layered().expect("QV circuits always layer")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_roster_and_is_native() {
        let suite = yorktown_suite();
        assert_eq!(suite.len(), 12);
        for (bench, &(paper_name, paper_qubits, ..)) in suite.iter().zip(&PAPER_TABLE1) {
            assert_eq!(bench.name, paper_name);
            assert_eq!(bench.logical.n_qubits(), paper_qubits, "{}", bench.name);
            assert_eq!(bench.compiled.counts().other_multi, 0, "{}", bench.name);
            assert_eq!(
                bench.compiled.counts().measure,
                bench.logical.counts().measure,
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn compiled_cnots_respect_the_coupling_map() {
        let map = CouplingMap::yorktown();
        for bench in yorktown_suite() {
            for op in bench.compiled.gate_ops() {
                if op.qubits.len() == 2 {
                    assert!(
                        map.are_adjacent(op.qubits[0], op.qubits[1]),
                        "{}: cx {:?} off the coupling map",
                        bench.name,
                        op.qubits
                    );
                }
            }
        }
    }

    #[test]
    fn yorktown_model_covers_the_suite() {
        let model = yorktown_model();
        for bench in yorktown_suite() {
            assert!(
                qsim_noise::TrialGenerator::new(&bench.layered, &model).is_ok(),
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn scalability_shapes_layer_at_expected_width() {
        for &(n, d) in &SCALABILITY_SHAPES[..4] {
            let layered = scalability_circuit(n, d);
            assert_eq!(layered.n_qubits(), n);
            assert!(layered.n_layers() >= d, "depth {d} produced {} layers", layered.n_layers());
            assert!(layered.total_gates() > 0);
        }
    }

    #[test]
    fn scalability_model_is_ten_x() {
        for &rate in &SCALABILITY_RATES {
            let model = NoiseModel::artificial(10, rate);
            assert_eq!(model.two_rate(0, 1), rate * 10.0);
            assert_eq!(model.readout_rate(0), rate * 10.0);
        }
    }
}
