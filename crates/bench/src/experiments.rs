//! The experiment sweeps behind each figure, shared by binaries and tests.

use qsim_circuit::LayeredCircuit;
use qsim_noise::{NoiseModel, TrialGenerator};
use redsim::analysis::{analyze_generation_order, analyze_sorted};
use redsim::order::reorder;
use redsim::CostReport;

use crate::suite::{
    scalability_circuit, yorktown_model, yorktown_suite, SCALABILITY_RATES, SCALABILITY_SHAPES,
};

/// One benchmark's results across a trial-count sweep (Figs. 5 & 6).
#[derive(Clone, Debug)]
pub struct RealisticRow {
    /// Benchmark name.
    pub name: String,
    /// `(n_trials, report)` per sweep point.
    pub points: Vec<(usize, CostReport)>,
}

impl RealisticRow {
    /// Normalized computation at each sweep point.
    pub fn normalized(&self) -> Vec<f64> {
        self.points.iter().map(|(_, r)| r.normalized_computation()).collect()
    }

    /// MSVs at the first sweep point (Fig. 6 reports 1024 trials).
    pub fn msv_at_first(&self) -> usize {
        self.points.first().map_or(0, |(_, r)| r.msv_peak)
    }
}

/// Run the realistic-device experiment (§V.A): every Table-I benchmark under
/// the Yorktown model, across `trial_counts` Monte-Carlo sizes.
pub fn realistic_sweep(trial_counts: &[usize], seed: u64) -> Vec<RealisticRow> {
    let model = yorktown_model();
    yorktown_suite()
        .into_iter()
        .map(|bench| {
            let generator = TrialGenerator::new(&bench.layered, &model)
                .expect("suite validated against the model");
            let points = trial_counts
                .iter()
                .map(|&n| (n, analyze_trials(&bench.layered, &generator, n, seed)))
                .collect();
            RealisticRow { name: bench.name, points }
        })
        .collect()
}

/// One circuit-shape's results across error settings (Figs. 7 & 8).
#[derive(Clone, Debug)]
pub struct ScalabilityRow {
    /// `n{qubits},d{depth}` label as in the paper.
    pub label: String,
    /// Qubits.
    pub n_qubits: usize,
    /// Depth parameter.
    pub depth: usize,
    /// `(single_qubit_rate, report)` per error setting, descending rate.
    pub points: Vec<(f64, CostReport)>,
}

/// Run the scalability experiment (§V.B): QV circuits across
/// [`SCALABILITY_SHAPES`] × [`SCALABILITY_RATES`] with `n_trials` trials
/// each (the paper uses 10⁶). Metrics come from the static analyzer — they
/// are exact and amplitude-free, which is the only way 40-qubit circuits are
/// analyzable at all.
pub fn scalability_sweep(n_trials: usize, seed: u64) -> Vec<ScalabilityRow> {
    scalability_sweep_shapes(&SCALABILITY_SHAPES, n_trials, seed)
}

/// [`scalability_sweep`] over custom shapes (used by tests with smaller
/// workloads).
pub fn scalability_sweep_shapes(
    shapes: &[(usize, usize)],
    n_trials: usize,
    seed: u64,
) -> Vec<ScalabilityRow> {
    shapes
        .iter()
        .map(|&(n, d)| {
            let layered = scalability_circuit(n, d);
            let points = SCALABILITY_RATES
                .iter()
                .map(|&rate| {
                    let model = NoiseModel::artificial(n, rate);
                    let generator =
                        TrialGenerator::new(&layered, &model).expect("QV circuits are native");
                    let report = analyze_trials_fast(&layered, &generator, n_trials, seed);
                    (rate, report)
                })
                .collect();
            ScalabilityRow { label: format!("n{n},d{d}"), n_qubits: n, depth: d, points }
        })
        .collect()
}

/// One benchmark's results across noise-scale factors applied to the
/// Yorktown calibration.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Benchmark name.
    pub name: String,
    /// `(scale factor, report)` per point, ascending factor.
    pub points: Vec<(f64, CostReport)>,
}

/// The "future devices" claim on the *realistic* workload: scale the
/// Yorktown calibration by each factor (< 1 = better hardware) and measure
/// the savings. Complements Fig. 7, which uses artificial uniform models.
pub fn noise_scale_sweep(factors: &[f64], n_trials: usize, seed: u64) -> Vec<ScaleRow> {
    yorktown_suite()
        .into_iter()
        .map(|bench| {
            let points = factors
                .iter()
                .map(|&factor| {
                    let model =
                        yorktown_model().scaled(factor).expect("factors keep rates in range");
                    let generator = TrialGenerator::new(&bench.layered, &model)
                        .expect("suite validated against the model");
                    (factor, analyze_trials(&bench.layered, &generator, n_trials, seed))
                })
                .collect();
            ScaleRow { name: bench.name, points }
        })
        .collect()
}

/// The §IV.B ablation: how much of the saving comes from the reorder itself.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Full scheme: reorder + caching.
    pub reordered: CostReport,
    /// Caching with trials left in generation order.
    pub generation_order: CostReport,
}

/// Compare reordered vs generation-order caching on the realistic suite.
pub fn ablation_sweep(n_trials: usize, seed: u64) -> Vec<AblationRow> {
    let model = yorktown_model();
    yorktown_suite()
        .into_iter()
        .map(|bench| {
            let generator = TrialGenerator::new(&bench.layered, &model)
                .expect("suite validated against the model");
            let set = generator.generate(n_trials, seed);
            let naive = analyze_generation_order(&bench.layered, set.trials())
                .expect("trials fit the circuit");
            let mut trials = set.into_trials();
            reorder(&mut trials);
            let reordered =
                analyze_sorted(&bench.layered, &trials).expect("trials fit the circuit");
            AblationRow { name: bench.name, reordered, generation_order: naive }
        })
        .collect()
}

fn analyze_trials(
    layered: &LayeredCircuit,
    generator: &TrialGenerator,
    n: usize,
    seed: u64,
) -> CostReport {
    let mut trials = generator.generate(n, seed).into_trials();
    reorder(&mut trials);
    analyze_sorted(layered, &trials).expect("generated trials fit their circuit")
}

fn analyze_trials_fast(
    layered: &LayeredCircuit,
    generator: &TrialGenerator,
    n: usize,
    seed: u64,
) -> CostReport {
    let mut trials = generator.generate_fast(n, seed).into_trials();
    reorder(&mut trials);
    analyze_sorted(layered, &trials).expect("generated trials fit their circuit")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realistic_sweep_shape_holds() {
        // Small trial counts to keep the test quick; the shape (more trials
        // → more saving; substantial average saving) must already show.
        let rows = realistic_sweep(&[256, 1024], 7);
        assert_eq!(rows.len(), 12);
        let mut avg_saving = 0.0;
        for row in &rows {
            let norms = row.normalized();
            assert_eq!(norms.len(), 2);
            // More trials never hurts (allowing sampling jitter).
            assert!(norms[1] <= norms[0] + 0.03, "{}: {:?}", row.name, norms);
            avg_saving += 1.0 - norms[1];
        }
        avg_saving /= rows.len() as f64;
        assert!(avg_saving > 0.6, "average saving {avg_saving} too small");
    }

    #[test]
    fn realistic_msvs_are_small() {
        let rows = realistic_sweep(&[1024], 3);
        for row in &rows {
            let msv = row.msv_at_first();
            assert!((1..=10).contains(&msv), "{}: {msv} MSVs", row.name);
        }
    }

    #[test]
    fn scalability_savings_increase_as_error_rate_drops() {
        let rows = scalability_sweep_shapes(&[(10, 5), (10, 10)], 20_000, 5);
        for row in &rows {
            let norms: Vec<f64> =
                row.points.iter().map(|(_, r)| r.normalized_computation()).collect();
            // Rates are descending, so normalized computation must descend.
            for pair in norms.windows(2) {
                assert!(pair[1] <= pair[0] + 0.02, "{}: {:?}", row.label, norms);
            }
        }
    }

    #[test]
    fn msvs_shrink_with_more_qubits() {
        // Paper Fig. 8: "When the number of qubits increases, the number of
        // MSVs decreases" (more positions → fewer shared prefixes).
        let rows = scalability_sweep_shapes(&[(10, 20), (20, 20)], 20_000, 9);
        let msv_at = |row: &ScalabilityRow| row.points[0].1.msv_peak;
        assert!(
            msv_at(&rows[1]) <= msv_at(&rows[0]) + 1,
            "{} vs {}",
            msv_at(&rows[0]),
            msv_at(&rows[1])
        );
    }

    #[test]
    fn lower_noise_scales_save_more_on_the_realistic_suite() {
        let rows = noise_scale_sweep(&[0.25, 1.0, 4.0], 1024, 3);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            let norms: Vec<f64> =
                row.points.iter().map(|(_, r)| r.normalized_computation()).collect();
            // Ascending factors ⇒ ascending normalized computation.
            for pair in norms.windows(2) {
                assert!(pair[0] <= pair[1] + 0.03, "{}: {:?}", row.name, norms);
            }
        }
    }

    #[test]
    fn ablation_shows_reordering_matters() {
        let rows = ablation_sweep(512, 11);
        // On every benchmark the reordered scheme does at least as well, and
        // across the suite it is strictly better in aggregate.
        let mut total_reordered = 0u64;
        let mut total_naive = 0u64;
        for row in &rows {
            assert!(row.reordered.optimized_ops <= row.generation_order.optimized_ops);
            total_reordered += row.reordered.optimized_ops;
            total_naive += row.generation_order.optimized_ops;
        }
        assert!(total_reordered < total_naive);
    }
}
