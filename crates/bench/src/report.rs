//! Shared results writer for the bench bins.
//!
//! Every binary that emits a results document — `BENCH_*.json` files or
//! `--json` stdout — builds it through [`ResultsDoc`], so the rendering,
//! the file write, and the optional `--record` append into the benchmark
//! history all live in one place. Recording goes through the *same*
//! conversion `qsim history record` uses, so a document recorded at bench
//! time and one recorded later from its file are identical.

use crate::json;

/// A bench results document under construction. Fields render in
/// insertion order, which keeps the emitted bytes identical to the bins'
/// historical hand-rolled output.
pub struct ResultsDoc {
    fields: Vec<(String, String)>,
}

impl ResultsDoc {
    /// Start a benchmark-style document (leading `"benchmark"` field, as
    /// the `BENCH_*.json` artifacts use).
    pub fn new(benchmark: &str) -> Self {
        ResultsDoc { fields: vec![("benchmark".to_owned(), json::string(benchmark))] }
    }

    /// Start a figure-style document (leading `"figure"` field, as the
    /// `--json` figure reproductions use).
    pub fn figure(name: &str) -> Self {
        ResultsDoc { fields: vec![("figure".to_owned(), json::string(name))] }
    }

    /// Append an already-rendered JSON value.
    #[must_use]
    pub fn field(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Append an integer-like field (rendered via `Display`, no quotes).
    #[must_use]
    pub fn int(self, key: &str, value: impl std::fmt::Display) -> Self {
        self.field(key, format!("{value}"))
    }

    /// Render the document as one JSON object.
    pub fn render(&self) -> String {
        let fields: Vec<(&str, String)> =
            self.fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        json::object(&fields)
    }

    /// Write the rendered document (newline-terminated) to `path`.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure — bench bins have no recovery path.
    pub fn write_file(&self, path: &str) {
        std::fs::write(path, format!("{}\n", self.render()))
            .unwrap_or_else(|e| panic!("{path}: {e}"));
    }

    /// Print the rendered document to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Default benchmark history file, shared with `qsim history`.
pub const DEFAULT_HISTORY: &str = "results/history.jsonl";

/// Honor the shared `--record` flag: append this document to the
/// benchmark history (`--history PATH` overrides [`DEFAULT_HISTORY`]) as
/// one schema-versioned record. No-op without `--record`.
///
/// # Panics
///
/// Panics if the history file cannot be appended to.
pub fn maybe_record(args: &[String], doc: &ResultsDoc) {
    if !crate::arg_flag(args, "--record") {
        return;
    }
    let path = crate::arg_value(args, "--history", DEFAULT_HISTORY.to_owned());
    let parsed = qsim_observatory::Json::parse(&doc.render())
        .unwrap_or_else(|e| panic!("results doc is not valid JSON: {e}"));
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = qsim_observatory::record_from_bench(&parsed, "bench", timestamp);
    qsim_observatory::history::append(&path, &record)
        .unwrap_or_else(|e| panic!("history append: {e}"));
    eprintln!("recorded {} metrics from {} into {path}", record.metrics.len(), record.source);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_byte_compatible_bench_documents() {
        // The exact shape the hand-rolled fusion/telemetry emitters used.
        let doc = ResultsDoc::new("fusion").int("seed", 2020).int("reps", 5).field(
            "rows",
            json::array([json::object(&[
                ("name", json::string("rb")),
                ("trials", "64".to_owned()),
                ("reuse_speedup", json::number(1.25)),
            ])]),
        );
        assert_eq!(
            doc.render(),
            r#"{"benchmark": "fusion", "seed": 2020, "reps": 5, "rows": [{"name": "rb", "trials": 64, "reuse_speedup": 1.25}]}"#
        );
    }

    #[test]
    fn figure_documents_lead_with_the_figure_field() {
        let doc = ResultsDoc::figure("fig5").field("rows", json::array([]));
        assert_eq!(doc.render(), r#"{"figure": "fig5", "rows": []}"#);
    }

    #[test]
    fn rendered_documents_parse_and_record() {
        let doc = ResultsDoc::new("selftest").int("seed", 7).field(
            "rows",
            json::array([json::object(&[
                ("name", json::string("rb")),
                ("run_ms", json::number(12.5)),
            ])]),
        );
        let parsed = qsim_observatory::Json::parse(&doc.render()).unwrap();
        let record = qsim_observatory::record_from_bench(&parsed, "x", 1);
        assert_eq!(record.source, "selftest");
        assert_eq!(record.seed, 7);
        assert_eq!(record.metrics.get("rows.rb.run_ms"), Some(&12.5));
    }
}
