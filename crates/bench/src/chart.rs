//! Terminal bar charts for the figure binaries — the paper's Figs. 5–8 are
//! grouped bar charts, and `--chart` renders the same shape in ASCII.

/// A horizontal grouped bar chart.
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    /// Series names, one per bar within a group.
    series: Vec<String>,
    /// `(group label, values[series])`.
    groups: Vec<(String, Vec<f64>)>,
    /// Fixed maximum for the axis; `None` = auto from the data.
    max: Option<f64>,
}

/// Glyphs per series, cycled.
const GLYPHS: [char; 4] = ['█', '▓', '▒', '░'];
/// Bar body width in characters.
const WIDTH: usize = 40;

impl BarChart {
    /// Start a chart with a title and per-group series names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        title: impl Into<String>,
        series: I,
    ) -> Self {
        BarChart {
            title: title.into(),
            series: series.into_iter().map(Into::into).collect(),
            groups: Vec::new(),
            max: None,
        }
    }

    /// Fix the axis maximum (e.g. 1.0 for normalized computation).
    pub fn with_max(mut self, max: f64) -> Self {
        self.max = Some(max);
        self
    }

    /// Append one group of bars.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the series count.
    pub fn group(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        assert_eq!(values.len(), self.series.len(), "group width mismatch");
        self.groups.push((label.into(), values));
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let max = self.max.unwrap_or_else(|| {
            self.groups
                .iter()
                .flat_map(|(_, values)| values.iter().copied())
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE)
        });
        let label_width = self
            .groups
            .iter()
            .map(|(label, _)| label.chars().count())
            .max()
            .unwrap_or(0)
            .max(self.series.iter().map(|s| s.chars().count()).max().unwrap_or(0));
        // Legend.
        for (i, name) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {name}\n", GLYPHS[i % GLYPHS.len()]));
        }
        for (label, values) in &self.groups {
            for (i, &value) in values.iter().enumerate() {
                let bar_len = ((value / max).clamp(0.0, 1.0) * WIDTH as f64).round() as usize;
                let header = if i == 0 { label.as_str() } else { "" };
                out.push_str(&format!(
                    "{header:>label_width$} |{}{} {value:.3}\n",
                    std::iter::repeat_n(GLYPHS[i % GLYPHS.len()], bar_len).collect::<String>(),
                    std::iter::repeat_n(' ', WIDTH - bar_len).collect::<String>(),
                ));
            }
        }
        out
    }
}

impl std::fmt::Display for BarChart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut chart = BarChart::new("demo", ["a", "b"]).with_max(1.0);
        chart.group("g1", vec![1.0, 0.5]);
        chart.group("g2", vec![0.25, 0.0]);
        let text = chart.render();
        assert!(text.starts_with("demo\n"));
        // Full bar for 1.0, half for 0.5.
        let lines: Vec<&str> = text.lines().collect();
        let full: usize = lines[3].matches('█').count();
        let half: usize = lines[4].matches('▓').count();
        assert_eq!(full, WIDTH);
        assert_eq!(half, WIDTH / 2);
        assert!(lines[6].contains("0.000"));
    }

    #[test]
    fn auto_max_uses_the_largest_value() {
        let mut chart = BarChart::new("auto", ["x"]);
        chart.group("g", vec![2.0]);
        chart.group("h", vec![1.0]);
        let text = chart.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2].matches('█').count(), WIDTH);
        assert_eq!(lines[3].matches('█').count(), WIDTH / 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn group_width_is_enforced() {
        let mut chart = BarChart::new("bad", ["a", "b"]);
        chart.group("g", vec![1.0]);
    }

    #[test]
    fn values_above_max_are_clamped() {
        let mut chart = BarChart::new("clamp", ["a"]).with_max(1.0);
        chart.group("g", vec![5.0]);
        assert_eq!(chart.render().lines().nth(2).unwrap().matches('█').count(), WIDTH);
    }
}
