//! Ablation for the paper's §IV.B motivation: how much of the computation
//! saving and memory frugality comes from the trial *reordering* itself,
//! versus plain consecutive-trial prefix caching in generation order.
//!
//! Usage: `ablation [--trials N] [--seed N] [--json]`

use redsim_bench::experiments::ablation_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 1024usize);
    let seed = arg_value(&args, "--seed", 2020u64);

    let rows = ablation_sweep(trials, seed);
    if arg_flag(&args, "--json") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("name", json::string(&row.name)),
                ("reordered_normalized", json::number(row.reordered.normalized_computation())),
                (
                    "generation_normalized",
                    json::number(row.generation_order.normalized_computation()),
                ),
                ("reordered_msv", format!("{}", row.reordered.msv_peak)),
                ("generation_msv", format!("{}", row.generation_order.msv_peak)),
            ])
        }));
        ResultsDoc::new("ablation")
            .int("seed", seed)
            .int("trials", trials)
            .field("rows", rendered)
            .print();
        return;
    }
    let mut table = Table::new([
        "Benchmark",
        "norm (reordered)",
        "norm (gen order)",
        "MSV (reordered)",
        "MSV (gen order)",
    ]);
    for row in &rows {
        table.row([
            row.name.clone(),
            format!("{:.3}", row.reordered.normalized_computation()),
            format!("{:.3}", row.generation_order.normalized_computation()),
            row.reordered.msv_peak.to_string(),
            row.generation_order.msv_peak.to_string(),
        ]);
    }
    println!(
        "Ablation: reordered prefix caching vs generation-order prefix caching ({trials} trials)"
    );
    println!("{table}");
    println!(
        "reading: without reordering, consecutive trials rarely share a prefix, so caching saves almost nothing while holding more snapshots"
    );
}
