//! Ablation for the paper's §IV.B motivation: how much of the computation
//! saving and memory frugality comes from the trial *reordering* itself,
//! versus plain consecutive-trial prefix caching in generation order.
//!
//! Usage: `ablation [--trials N] [--seed N]`

use redsim_bench::arg_value;
use redsim_bench::experiments::ablation_sweep;
use redsim_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 1024usize);
    let seed = arg_value(&args, "--seed", 2020u64);

    let rows = ablation_sweep(trials, seed);
    let mut table = Table::new([
        "Benchmark",
        "norm (reordered)",
        "norm (gen order)",
        "MSV (reordered)",
        "MSV (gen order)",
    ]);
    for row in &rows {
        table.row([
            row.name.clone(),
            format!("{:.3}", row.reordered.normalized_computation()),
            format!("{:.3}", row.generation_order.normalized_computation()),
            row.reordered.msv_peak.to_string(),
            row.generation_order.msv_peak.to_string(),
        ]);
    }
    println!(
        "Ablation: reordered prefix caching vs generation-order prefix caching ({trials} trials)"
    );
    println!("{table}");
    println!(
        "reading: without reordering, consecutive trials rarely share a prefix, so caching saves almost nothing while holding more snapshots"
    );
}
