//! Specialized-kernel speedups: every fast apply path (phase, diagonal,
//! permutation, controlled) against the generic dense kernel applying an
//! equivalent matrix to the same state. Results are written to
//! `BENCH_kernels.json`.
//!
//! Each row times one kernel class swept across every valid target on an
//! `n`-qubit random state, best of `reps`. Pass `--check RATIO` (e.g.
//! `--check 1.5`) to exit non-zero when the mean speedup over the dense
//! path falls below `RATIO` — CI runs this as the "specialization pays for
//! itself" regression gate.
//!
//! Usage: `kernels [--qubits N] [--reps N] [--seed N] [--out PATH] [--check RATIO] [--record] [--quiet]`

use std::time::Instant;

use qsim_statevec::{Matrix2, Matrix4, StateVector, C64};
use redsim::testkit::random_state;
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_value, json, report};

/// Best-of-`reps` wall clock in milliseconds, with one warmup execution.
fn time_best<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    kernel: &'static str,
    specialized_ms: f64,
    dense_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.dense_ms / self.specialized_ms.max(1e-9)
    }
}

/// Time a one-qubit kernel swept over every qubit, against the dense
/// equivalent sweeping the same matrix.
fn row_1q(
    kernel: &'static str,
    state: &StateVector,
    reps: usize,
    m: &Matrix2,
    mut specialized: impl FnMut(&mut StateVector, usize),
) -> Row {
    let n = state.n_qubits();
    let mut s = state.clone();
    let specialized_ms = time_best(reps, || {
        for q in 0..n {
            specialized(&mut s, q);
        }
    });
    let mut d = state.clone();
    let dense_ms = time_best(reps, || {
        for q in 0..n {
            d.apply_1q(m, q).expect("valid qubit");
        }
    });
    Row { kernel, specialized_ms, dense_ms }
}

/// Time a two-qubit kernel swept over every adjacent pair, against the
/// dense equivalent sweeping the same matrix.
fn row_2q(
    kernel: &'static str,
    state: &StateVector,
    reps: usize,
    m: &Matrix4,
    mut specialized: impl FnMut(&mut StateVector, usize, usize),
) -> Row {
    let n = state.n_qubits();
    let mut s = state.clone();
    let specialized_ms = time_best(reps, || {
        for q in 0..n - 1 {
            specialized(&mut s, q, q + 1);
        }
    });
    let mut d = state.clone();
    let dense_ms = time_best(reps, || {
        for q in 0..n - 1 {
            d.apply_2q(m, q, q + 1).expect("valid pair");
        }
    });
    Row { kernel, specialized_ms, dense_ms }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_qubits = arg_value(&args, "--qubits", 16usize);
    let reps = arg_value(&args, "--reps", 25usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let out = arg_value(&args, "--out", "BENCH_kernels.json".to_owned());
    let check = arg_value(&args, "--check", f64::NEG_INFINITY);
    let quiet = redsim_bench::arg_flag(&args, "--quiet");

    let state = random_state(n_qubits, seed);
    let theta = 0.37f64;
    let phase = C64::new(theta.cos(), theta.sin());
    let d1 = [C64::new(0.0, 1.0), phase];
    let perm_phase = [phase, C64::new(1.0, 0.0)];
    let one = C64::new(1.0, 0.0);
    let zero = C64::new(0.0, 0.0);
    let h = Matrix2::h();

    let rows = vec![
        row_1q("phase1", &state, reps, &Matrix2([[one, zero], [zero, phase]]), |s, q| {
            s.apply_phase1(phase, q).expect("valid qubit");
        }),
        row_1q("diag1", &state, reps, &Matrix2([[d1[0], zero], [zero, d1[1]]]), |s, q| {
            s.apply_diag1(&d1, q).expect("valid qubit");
        }),
        row_1q(
            "perm1",
            &state,
            reps,
            &Matrix2([[zero, perm_phase[0]], [perm_phase[1], zero]]),
            |s, q| {
                s.apply_perm1(&perm_phase, q).expect("valid qubit");
            },
        ),
        row_2q("cphase2", &state, reps, &Matrix4::cphase(theta), |s, low, high| {
            s.apply_cphase2(phase, low, high).expect("valid pair");
        }),
        row_2q(
            "cdiag1",
            &state,
            reps,
            &Matrix4::controlled(&Matrix2([[d1[0], zero], [zero, d1[1]]])),
            |s, low, high| {
                s.apply_cdiag1(&d1, high, low).expect("valid pair");
            },
        ),
        row_2q("cx", &state, reps, &Matrix4::cx(), |s, low, high| {
            s.apply_cx(high, low).expect("valid pair");
        }),
        row_2q("ctrl1", &state, reps, &Matrix4::controlled(&h), |s, low, high| {
            s.apply_ctrl1(&h, high, low).expect("valid pair");
        }),
        row_2q("perm2", &state, reps, &Matrix4::swap(), |s, low, high| {
            s.apply_perm2(&[0, 2, 1, 3], &[one, one, one, one], low, high).expect("valid pair");
        }),
        row_2q(
            "diag2",
            &state,
            reps,
            &Matrix4::kron(&Matrix2::rz(0.3), &Matrix2::rz(theta)),
            |s, low, high| {
                let rz_a = Matrix2::rz(0.3).0;
                let rz_b = Matrix2::rz(theta).0;
                let d = [
                    rz_a[0][0] * rz_b[0][0],
                    rz_a[0][0] * rz_b[1][1],
                    rz_a[1][1] * rz_b[0][0],
                    rz_a[1][1] * rz_b[1][1],
                ];
                s.apply_diag2(&d, low, high).expect("valid pair");
            },
        ),
    ];

    let mean_speedup = rows.iter().map(Row::speedup).sum::<f64>() / rows.len() as f64;

    let doc = ResultsDoc::new("kernels")
        .int("qubits", n_qubits)
        .int("reps", reps)
        .int("seed", seed)
        .field(
            "rows",
            json::array(rows.iter().map(|row| {
                json::object(&[
                    ("kernel", json::string(row.kernel)),
                    ("specialized_ms", json::number(row.specialized_ms)),
                    ("dense_ms", json::number(row.dense_ms)),
                    ("speedup", json::number(row.speedup())),
                ])
            })),
        )
        .field("mean_speedup", json::number(mean_speedup));
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table = Table::new(["Kernel", "Specialized", "Dense", "Speedup"]);
        for row in &rows {
            table.row([
                row.kernel.to_owned(),
                format!("{:.3} ms", row.specialized_ms),
                format!("{:.3} ms", row.dense_ms),
                format!("{:.2}x", row.speedup()),
            ]);
        }
        println!("Specialized kernels vs generic dense apply: {n_qubits} qubits, best of {reps}");
        println!("{table}");
        println!("mean speedup {mean_speedup:.2}x");
        println!("results written to {out}");
    }

    if check.is_finite() {
        // Single-kernel timings jitter on shared CI runners, so the gate
        // applies to the mean speedup across all classes.
        if mean_speedup < check {
            eprintln!("FAIL: mean speedup {mean_speedup:.2}x below the {check}x floor");
            std::process::exit(1);
        }
        println!("mean speedup {mean_speedup:.2}x clears the {check}x floor");
    }
}
