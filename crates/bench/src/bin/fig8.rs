//! Regenerates the paper's Fig. 8: Maintained State Vectors for the QV
//! scalability sweep, default 10⁶ trials as in the paper.
//!
//! Usage: `fig8 [--trials N] [--seed N]`

use redsim_bench::experiments::scalability_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::SCALABILITY_RATES;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 1_000_000usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    eprintln!("running scalability sweep with {trials} trials per configuration...");

    let rows = scalability_sweep(trials, seed);

    if arg_flag(&args, "--json") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("circuit", json::string(&row.label)),
                (
                    "points",
                    json::array(row.points.iter().map(|(rate, report)| {
                        json::object(&[
                            ("single_qubit_rate", json::number(*rate)),
                            ("msv_eager", format!("{}", report.msv_peak)),
                            ("msv_path", format!("{}", report.msv_path_peak)),
                        ])
                    })),
                ),
            ])
        }));
        ResultsDoc::figure("fig8").int("trials", trials).field("rows", rendered).print();
        return;
    }
    let mut header = vec!["Circuit".to_owned()];
    header.extend(SCALABILITY_RATES.iter().map(|r| format!("1q rate {r:.0e}")));
    header.push("path policy @1e-3".to_owned());
    let mut table = Table::new(header);
    for row in &rows {
        let mut cells = vec![row.label.clone()];
        cells.extend(row.points.iter().map(|(_, report)| report.msv_peak.to_string()));
        cells.push(row.points[0].1.msv_path_peak.to_string());
        table.row(cells);
    }
    println!("Fig. 8: memory consumption (Maintained State Vectors), scalability models ({trials} trials)");
    println!("{table}");
    println!(
        "paper reference: ~6 MSVs on average, growing slowly with depth and shrinking as qubit count grows"
    );
}
