//! Batched tree executor vs sequential reuse across the Yorktown suite:
//! both strategies perform the *same* amplitude passes (the tree is the
//! reuse trie made explicit), so any wall-clock gap is pure batching —
//! each fused op is matched once and swept across the whole sibling
//! frontier, amortizing dispatch and operand setup over the batch.
//! Histograms are asserted bitwise identical on **every** timed pass.
//! Results are written to `BENCH_batched.json`; pass `--check RATIO`
//! (CI uses `--check 1.2`) to exit non-zero when the geomean speedup
//! falls below `RATIO`.
//!
//! Usage: `batched [--trials N] [--seed N] [--reps N] [--out PATH]
//! [--check RATIO] [--quick] [--record] [--quiet]`

use std::time::Instant;

use redsim::exec::ReuseExecutor;
use redsim::TreeExecutor;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let trials = arg_value(&args, "--trials", 64usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let reps = arg_value(&args, "--reps", if quick { 3usize } else { 9 });
    let out = arg_value(&args, "--out", "BENCH_batched.json".to_owned());
    let check = arg_value(&args, "--check", f64::INFINITY);
    let quiet = arg_flag(&args, "--quiet");

    let suite = yorktown_suite();
    let model = yorktown_model();
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0f64;
    for bench in &suite {
        let set = qsim_noise::TrialGenerator::new(&bench.layered, &model)
            .expect("suite validated against model")
            .generate(trials, seed);
        let trial_slice = set.trials();
        let reuse = ReuseExecutor::new(&bench.layered);
        let tree = TreeExecutor::new(&bench.layered);

        let reference = reuse.run(trial_slice).expect("reuse runs");
        let mut reuse_ms = f64::INFINITY;
        let mut tree_ms = f64::INFINITY;
        let mut tree_stats = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let sequential = reuse.run(trial_slice).expect("reuse runs");
            reuse_ms = reuse_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                sequential.outcomes, reference.outcomes,
                "{}: sequential reuse drifted between passes",
                bench.name
            );

            let start = Instant::now();
            let batched = tree.run(trial_slice).expect("tree runs");
            tree_ms = tree_ms.min(start.elapsed().as_secs_f64() * 1e3);
            // The headline claim, asserted on every timed pass: batching
            // is observationally invisible — bitwise-identical histograms
            // and identical pass accounting.
            assert_eq!(
                batched.outcomes, reference.outcomes,
                "{}: batched outcomes drifted from sequential reuse",
                bench.name
            );
            assert_eq!(
                (batched.stats.ops, batched.stats.fused_ops, batched.stats.amplitude_passes),
                (reference.stats.ops, reference.stats.fused_ops, reference.stats.amplitude_passes),
                "{}: batched pass accounting drifted from sequential reuse",
                bench.name
            );
            tree_stats = Some(batched.stats);
        }
        let stats = tree_stats.expect("at least one rep ran");
        let speedup = reuse_ms / tree_ms.max(1e-9);
        log_speedup_sum += speedup.ln();
        rows.push((bench.name.clone(), reuse_ms, tree_ms, speedup, stats));
    }
    let geomean = (log_speedup_sum / rows.len().max(1) as f64).exp();

    let doc = ResultsDoc::new("batched")
        .int("seed", seed)
        .int("reps", reps)
        .int("trials", trials)
        .field("geomean_speedup", json::number(geomean))
        .field(
            "rows",
            json::array(rows.iter().map(|(name, reuse_ms, tree_ms, speedup, stats)| {
                json::object(&[
                    ("name", json::string(name)),
                    ("amplitude_passes", format!("{}", stats.amplitude_passes)),
                    ("batch_sweeps", format!("{}", stats.batch_sweeps)),
                    ("batch_width_max", format!("{}", stats.batch_width_max)),
                    ("peak_frontier", format!("{}", stats.peak_msv)),
                    ("reuse_ms", json::number(*reuse_ms)),
                    ("tree_ms", json::number(*tree_ms)),
                    ("speedup", json::number(*speedup)),
                ])
            })),
        );
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table = Table::new([
            "Benchmark",
            "Passes",
            "Sweeps",
            "Widest",
            "Reuse ms",
            "Tree ms",
            "Speedup",
        ]);
        for (name, reuse_ms, tree_ms, speedup, stats) in &rows {
            table.row([
                name.clone(),
                format!("{}", stats.amplitude_passes),
                format!("{}", stats.batch_sweeps),
                format!("{}", stats.batch_width_max),
                format!("{:.2}", reuse_ms),
                format!("{:.2}", tree_ms),
                format!("{speedup:.2}x"),
            ]);
        }
        println!("Batched tree executor vs sequential reuse, IBM Yorktown model, {trials} trials");
        println!("{table}");
        println!("geomean speedup {geomean:.2}x (bitwise-identical histograms on every pass)");
        println!("results written to {out}");
    }

    if check.is_finite() {
        if geomean < check {
            eprintln!("FAIL: batched geomean speedup {geomean:.2}x below the {check}x floor");
            std::process::exit(1);
        }
        println!("batched geomean speedup {geomean:.2}x clears the {check}x floor");
    }
}
