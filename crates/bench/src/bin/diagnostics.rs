//! Diagnostic deep-dive for one benchmark: trial statistics, the
//! shared-prefix (LCP) profile behind the savings, the analytic prediction,
//! and the per-layer noise mass.
//!
//! Usage: `diagnostics [--bench NAME] [--trials N] [--seed N] [--json]`

use qsim_noise::TrialGenerator;
use redsim::analysis::{analyze_sorted, lcp_histogram};
use redsim::estimate::estimate_first_order;
use redsim::order::reorder;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::{arg_flag, arg_value, json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = arg_value(&args, "--bench", "qft4".to_owned());
    let trials = arg_value(&args, "--trials", 4096usize);
    let seed = arg_value(&args, "--seed", 2020u64);

    let suite = yorktown_suite();
    let bench = suite.iter().find(|b| b.name == name).unwrap_or_else(|| {
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        panic!("unknown benchmark {name:?}; pick one of {names:?}")
    });
    let model = yorktown_model();
    let generator =
        TrialGenerator::new(&bench.layered, &model).expect("suite validated against model");

    if arg_flag(&args, "--json") {
        let set = generator.generate(trials, seed);
        let mean_injections = set.mean_injections();
        let error_free = set.error_free_fraction();
        let mut sorted = set.into_trials();
        reorder(&mut sorted);
        let report = analyze_sorted(&bench.layered, &sorted).expect("trials fit the circuit");
        let predicted = estimate_first_order(&bench.layered, &generator, trials);
        ResultsDoc::new("diagnostics")
            .field("bench", json::string(&bench.name))
            .int("seed", seed)
            .int("trials", trials)
            .int("error_positions", generator.n_positions())
            .field("expected_injections", json::number(generator.expected_injections()))
            .field("mean_injections", json::number(mean_injections))
            .field("error_free_fraction", json::number(error_free))
            .field("normalized", json::number(report.normalized_computation()))
            .field("predicted_normalized", json::number(predicted.normalized_computation()))
            .int("msv_peak", report.msv_peak)
            .print();
        return;
    }

    println!("benchmark: {} ({})", bench.name, bench.layered);
    println!(
        "error positions: {} (expected injections/trial λ = {:.3})\n",
        generator.n_positions(),
        generator.expected_injections()
    );

    let set = generator.generate(trials, seed);
    println!("trial statistics over {trials} trials:");
    println!("  mean injections:     {:.3}", set.mean_injections());
    println!("  error-free fraction: {:.3}", set.error_free_fraction());
    let inj_hist = set.injection_histogram();
    for (k, count) in inj_hist.iter().enumerate() {
        println!("  {k} errors: {count}");
    }

    println!("\nnoise mass by layer (top 5):");
    let mut by_layer: Vec<(usize, usize)> = set.layer_histogram().into_iter().enumerate().collect();
    by_layer.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for &(layer, count) in by_layer.iter().take(5) {
        println!("  layer {layer:>3}: {count}");
    }

    let mut sorted = set.into_trials();
    reorder(&mut sorted);
    let report = analyze_sorted(&bench.layered, &sorted).expect("trials fit the circuit");
    println!("\ncost analysis: {report}");
    let predicted = estimate_first_order(&bench.layered, &generator, trials);
    println!(
        "analytic prediction: normalized {:.4} (measured {:.4})",
        predicted.normalized_computation(),
        report.normalized_computation()
    );

    println!("\nshared-prefix profile (consecutive sorted trials sharing k errors):");
    for (k, count) in lcp_histogram(&sorted).expect("sorted").iter().enumerate() {
        println!("  k = {k}: {count}");
    }
}
