//! Regenerates the paper's Fig. 5: normalized computation of the optimized
//! simulation on the realistic Yorktown error model, for 1024–8192 trials.
//!
//! Usage: `fig5 [--seed N] [--json] [--record]`

use redsim_bench::chart::BarChart;
use redsim_bench::experiments::realistic_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};

const TRIAL_COUNTS: [usize; 4] = [1024, 2048, 4096, 8192];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed", 2020u64);
    let rows = realistic_sweep(&TRIAL_COUNTS, seed);

    if arg_flag(&args, "--json") || arg_flag(&args, "--record") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("benchmark", json::string(&row.name)),
                (
                    "points",
                    json::array(row.points.iter().map(|(n, report)| {
                        json::object(&[
                            ("trials", format!("{n}")),
                            ("normalized", json::number(report.normalized_computation())),
                            ("baseline_ops", format!("{}", report.baseline_ops)),
                            ("optimized_ops", format!("{}", report.optimized_ops)),
                        ])
                    })),
                ),
            ])
        }));
        let doc = ResultsDoc::figure("fig5").int("seed", seed).field("rows", rendered);
        report::maybe_record(&args, &doc);
        if arg_flag(&args, "--json") {
            doc.print();
        }
        return;
    }

    if arg_flag(&args, "--chart") {
        let mut chart = BarChart::new(
            "Fig. 5: normalized computation (lower = better), IBM Yorktown model",
            TRIAL_COUNTS.iter().map(|n| format!("{n} trials")),
        )
        .with_max(1.0);
        for row in &rows {
            chart.group(row.name.clone(), row.normalized());
        }
        println!("{chart}");
        return;
    }

    let mut table =
        Table::new(["Benchmark", "1024 trials", "2048 trials", "4096 trials", "8192 trials"]);
    let mut averages = [0.0f64; 4];
    for row in &rows {
        let norms = row.normalized();
        for (avg, n) in averages.iter_mut().zip(&norms) {
            *avg += n;
        }
        let mut cells = vec![row.name.clone()];
        cells.extend(norms.iter().map(|n| format!("{n:.3}")));
        table.row(cells);
    }
    for avg in &mut averages {
        *avg /= rows.len() as f64;
    }
    let mut cells = vec!["average".to_owned()];
    cells.extend(averages.iter().map(|n| format!("{n:.3}")));
    table.row(cells);

    println!("Fig. 5: normalized computation (optimized / baseline), IBM Yorktown model");
    println!("{table}");
    println!(
        "paper reference: ~0.15-0.25 average, decreasing with trial count; worst case qv_n5d5 ~0.43 at 8192 trials"
    );
}
