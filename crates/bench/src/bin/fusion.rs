//! Fused vs unfused execution across the Yorktown suite: wall-clock and
//! two-metric accounting (`ops` = the paper's basic-operation count,
//! `amplitude_passes` = full sweeps over the amplitude array actually
//! performed). Results are written to `BENCH_fusion.json`.
//!
//! The pass-reduction headroom depends on the trial count: more trials
//! inject on more distinct layers, densifying the shared cut union and
//! shortening segments, so the sweep records several counts.
//!
//! Usage: `fusion [--seed N] [--reps N] [--out PATH] [--quick] [--record] [--quiet]`

use std::time::Instant;

use redsim::exec::{ExecStats, RunResult};
use redsim::SimError;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};

const TRIAL_COUNTS: [usize; 3] = [64, 256, 1024];
/// `--quick` sweep for CI: one trial count keeps the run under a minute.
const QUICK_TRIAL_COUNTS: [usize; 1] = [64];

/// Best-of-`reps` wall clock for `run`, with one warmup execution.
fn time_best<F>(reps: usize, mut run: F) -> (f64, ExecStats)
where
    F: FnMut() -> Result<RunResult, SimError>,
{
    let warm = run().expect("execution succeeds");
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let result = run().expect("execution succeeds");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(result.stats, warm.stats, "non-deterministic stats");
        best = best.min(elapsed);
    }
    (best, warm.stats)
}

struct Row {
    name: String,
    trials: usize,
    stats: ExecStats,
    reuse_fused_ms: f64,
    reuse_unfused_ms: f64,
    baseline_reduction: f64,
    baseline_speedup: f64,
}

impl Row {
    fn pass_reduction(&self) -> f64 {
        1.0 - self.stats.amplitude_passes as f64 / self.stats.ops.max(1) as f64
    }

    fn speedup(&self) -> f64 {
        self.reuse_unfused_ms / self.reuse_fused_ms.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed", 2020u64);
    let reps = arg_value(&args, "--reps", 5usize);
    let out = arg_value(&args, "--out", "BENCH_fusion.json".to_owned());
    let quiet = arg_flag(&args, "--quiet");
    let counts: &[usize] =
        if arg_flag(&args, "--quick") { &QUICK_TRIAL_COUNTS } else { &TRIAL_COUNTS };

    let suite = yorktown_suite();
    let model = yorktown_model();
    let mut rows = Vec::new();
    for &n_trials in counts {
        for bench in &suite {
            let set = qsim_noise::TrialGenerator::new(&bench.layered, &model)
                .expect("valid model")
                .generate(n_trials, seed);
            let trials = set.trials();
            let reuse = redsim::exec::ReuseExecutor::new(&bench.layered);
            let baseline = redsim::exec::BaselineExecutor::new(&bench.layered);
            let (fused_ms, stats) = time_best(reps, || reuse.run(trials));
            let (unfused_ms, unfused_stats) = time_best(reps, || reuse.run_unfused(trials));
            assert_eq!(stats.ops, unfused_stats.ops, "fusion changed the paper metric");
            let (base_fused_ms, base_stats) = time_best(reps, || baseline.run(trials));
            let (base_unfused_ms, _) = time_best(reps, || baseline.run_unfused(trials));
            rows.push(Row {
                name: bench.name.clone(),
                trials: n_trials,
                stats,
                reuse_fused_ms: fused_ms,
                reuse_unfused_ms: unfused_ms,
                baseline_reduction: 1.0
                    - base_stats.amplitude_passes as f64 / base_stats.ops.max(1) as f64,
                baseline_speedup: base_unfused_ms / base_fused_ms.max(1e-9),
            });
        }
    }

    let doc = ResultsDoc::new("fusion").int("seed", seed).int("reps", reps).field(
        "rows",
        json::array(rows.iter().map(|row| {
            json::object(&[
                ("name", json::string(&row.name)),
                ("trials", format!("{}", row.trials)),
                ("ops", format!("{}", row.stats.ops)),
                ("fused_ops", format!("{}", row.stats.fused_ops)),
                ("amplitude_passes", format!("{}", row.stats.amplitude_passes)),
                ("pass_reduction", json::number(row.pass_reduction())),
                ("reuse_fused_ms", json::number(row.reuse_fused_ms)),
                ("reuse_unfused_ms", json::number(row.reuse_unfused_ms)),
                ("reuse_speedup", json::number(row.speedup())),
                ("baseline_pass_reduction", json::number(row.baseline_reduction)),
                ("baseline_speedup", json::number(row.baseline_speedup)),
            ])
        })),
    );
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table = Table::new([
            "Benchmark",
            "Trials",
            "Ops",
            "Passes",
            "Reduction",
            "Reuse speedup",
            "Baseline speedup",
        ]);
        for row in &rows {
            table.row([
                row.name.clone(),
                format!("{}", row.trials),
                format!("{}", row.stats.ops),
                format!("{}", row.stats.amplitude_passes),
                format!("{:.1}%", row.pass_reduction() * 100.0),
                format!("{:.2}x", row.speedup()),
                format!("{:.2}x", row.baseline_speedup),
            ]);
        }
        println!("Gate fusion: fused vs unfused execution, IBM Yorktown model");
        println!("{table}");
        let strong =
            rows.iter().filter(|r| r.pass_reduction() >= 0.30 || r.speedup() >= 1.3).count();
        println!(
            "{strong}/{} rows show >=30% amplitude-pass reduction or >=1.3x reuse speedup",
            rows.len()
        );
        println!("results written to {out}");
    }
}
