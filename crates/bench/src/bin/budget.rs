//! Extension experiment: the memory/computation trade-off under a hard cap
//! on stored state vectors. The paper motivates minimizing MSVs because a
//! state costs 2ⁿ amplitudes; this sweep quantifies what each cached state
//! buys — and shows that even a budget of 1 (just the error-free frontier)
//! captures most of the saving at realistic error rates.
//!
//! Usage: `budget [--trials N] [--seed N]`

use qsim_noise::TrialGenerator;
use redsim::analysis::analyze_sorted_with_budget;
use redsim::order::reorder;
use redsim_bench::arg_value;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;

const BUDGETS: [usize; 5] = [1, 2, 3, 4, usize::MAX];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 8192usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let model = yorktown_model();

    let mut header = vec!["Benchmark".to_owned()];
    header.extend(BUDGETS.iter().map(|b| {
        if *b == usize::MAX {
            "budget ∞".to_owned()
        } else {
            format!("budget {b}")
        }
    }));
    let mut table = Table::new(header);
    for bench in yorktown_suite() {
        let generator =
            TrialGenerator::new(&bench.layered, &model).expect("suite validated against model");
        let mut sorted = generator.generate(trials, seed).into_trials();
        reorder(&mut sorted);
        let mut cells = vec![bench.name.clone()];
        for &budget in &BUDGETS {
            let report = analyze_sorted_with_budget(&bench.layered, &sorted, budget)
                .expect("trials fit the circuit");
            cells.push(format!("{:.3}", report.normalized_computation()));
        }
        table.row(cells);
    }
    println!("Memory-budget sweep: normalized computation vs stored-state cap ({trials} trials, Yorktown model)");
    println!("{table}");
    println!(
        "reading: each extra cached state helps only as deep as trials share errors; at NISQ error rates one or two frontiers already capture nearly all of the paper's saving"
    );
}
