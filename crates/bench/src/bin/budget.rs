//! Extension experiment: the memory/computation trade-off under a hard cap
//! on stored state vectors. The paper motivates minimizing MSVs because a
//! state costs 2ⁿ amplitudes; this sweep quantifies what each cached state
//! buys — and shows that even a budget of 1 (just the error-free frontier)
//! captures most of the saving at realistic error rates.
//!
//! Usage: `budget [--trials N] [--seed N] [--json]`

use qsim_noise::TrialGenerator;
use redsim::analysis::analyze_sorted_with_budget;
use redsim::order::reorder;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json};

const BUDGETS: [usize; 5] = [1, 2, 3, 4, usize::MAX];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 8192usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let model = yorktown_model();

    if arg_flag(&args, "--json") {
        let rendered = json::array(yorktown_suite().iter().map(|bench| {
            let generator =
                TrialGenerator::new(&bench.layered, &model).expect("suite validated against model");
            let mut sorted = generator.generate(trials, seed).into_trials();
            reorder(&mut sorted);
            json::object(&[
                ("name", json::string(&bench.name)),
                (
                    "points",
                    json::array(BUDGETS.iter().map(|&budget| {
                        let report = analyze_sorted_with_budget(&bench.layered, &sorted, budget)
                            .expect("trials fit the circuit");
                        json::object(&[
                            // 0 = unbounded, matching the CLI's --budget 0.
                            (
                                "budget",
                                format!("{}", if budget == usize::MAX { 0 } else { budget }),
                            ),
                            ("normalized", json::number(report.normalized_computation())),
                        ])
                    })),
                ),
            ])
        }));
        ResultsDoc::new("budget")
            .int("seed", seed)
            .int("trials", trials)
            .field("rows", rendered)
            .print();
        return;
    }

    let mut header = vec!["Benchmark".to_owned()];
    header.extend(BUDGETS.iter().map(|b| {
        if *b == usize::MAX {
            "budget ∞".to_owned()
        } else {
            format!("budget {b}")
        }
    }));
    let mut table = Table::new(header);
    for bench in yorktown_suite() {
        let generator =
            TrialGenerator::new(&bench.layered, &model).expect("suite validated against model");
        let mut sorted = generator.generate(trials, seed).into_trials();
        reorder(&mut sorted);
        let mut cells = vec![bench.name.clone()];
        for &budget in &BUDGETS {
            let report = analyze_sorted_with_budget(&bench.layered, &sorted, budget)
                .expect("trials fit the circuit");
            cells.push(format!("{:.3}", report.normalized_computation()));
        }
        table.row(cells);
    }
    println!("Memory-budget sweep: normalized computation vs stored-state cap ({trials} trials, Yorktown model)");
    println!("{table}");
    println!(
        "reading: each extra cached state helps only as deep as trials share errors; at NISQ error rates one or two frontiers already capture nearly all of the paper's saving"
    );
}
