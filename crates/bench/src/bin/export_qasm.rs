//! Writes the benchmark catalog as OpenQASM 2.0 files (both logical and
//! Yorktown-compiled forms) into `benchmarks/`, so external tools and the
//! `qsim` CLI can consume the paper's workload directly.
//!
//! Usage: `export_qasm [--dir PATH]`

use std::fs;
use std::path::PathBuf;

use qsim_circuit::{catalog, to_qasm};
use redsim_bench::arg_value;
use redsim_bench::suite::yorktown_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dir: PathBuf = arg_value(&args, "--dir", "benchmarks".to_owned()).into();
    let logical_dir = dir.join("logical");
    let compiled_dir = dir.join("yorktown");
    fs::create_dir_all(&logical_dir)?;
    fs::create_dir_all(&compiled_dir)?;

    let mut count = 0;
    for bench in yorktown_suite() {
        fs::write(logical_dir.join(format!("{}.qasm", bench.name)), to_qasm(&bench.logical))?;
        fs::write(compiled_dir.join(format!("{}.qasm", bench.name)), to_qasm(&bench.compiled))?;
        count += 2;
    }
    // Extended catalog entries beyond Table I.
    for qc in [
        catalog::ghz(4),
        catalog::qpe(3, 5),
        catalog::adder_2bit(2, 3),
        catalog::hidden_shift(4, 0b1011),
    ] {
        fs::write(logical_dir.join(format!("{}.qasm", qc.name())), to_qasm(&qc))?;
        count += 1;
    }
    // Ship the Fig.-4 calibration alongside the circuits.
    let calib_dir = PathBuf::from("calibrations");
    fs::create_dir_all(&calib_dir)?;
    fs::write(
        calib_dir.join("ibm_yorktown.cal"),
        qsim_noise::calibration::emit(&qsim_noise::NoiseModel::ibm_yorktown()),
    )?;
    println!("wrote {count} QASM files under {} and calibrations/ibm_yorktown.cal", dir.display());
    Ok(())
}
