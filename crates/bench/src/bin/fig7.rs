//! Regenerates the paper's Fig. 7: normalized computation of QV circuits
//! (10–40 qubits, depth 5–20) under four artificial error settings, default
//! 10⁶ trials as in the paper.
//!
//! Usage: `fig7 [--trials N] [--seed N]`
//!
//! Metrics come from the static analyzer (exact, amplitude-free), which is
//! what makes 40-qubit configurations tractable.

use redsim_bench::chart::BarChart;
use redsim_bench::experiments::scalability_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::SCALABILITY_RATES;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 1_000_000usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    eprintln!("running scalability sweep with {trials} trials per configuration...");

    let rows = scalability_sweep(trials, seed);

    if arg_flag(&args, "--json") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("circuit", json::string(&row.label)),
                ("n_qubits", format!("{}", row.n_qubits)),
                ("depth", format!("{}", row.depth)),
                (
                    "points",
                    json::array(row.points.iter().map(|(rate, report)| {
                        json::object(&[
                            ("single_qubit_rate", json::number(*rate)),
                            ("normalized", json::number(report.normalized_computation())),
                            ("msv_peak", format!("{}", report.msv_peak)),
                        ])
                    })),
                ),
            ])
        }));
        ResultsDoc::figure("fig7").int("trials", trials).field("rows", rendered).print();
        return;
    }

    if arg_flag(&args, "--chart") {
        let mut chart = BarChart::new(
            format!("Fig. 7: normalized computation (lower = better), {trials} trials"),
            SCALABILITY_RATES.iter().map(|r| format!("1q rate {r:.0e}")),
        )
        .with_max(1.0);
        for row in &rows {
            chart.group(
                row.label.clone(),
                row.points.iter().map(|(_, r)| r.normalized_computation()).collect(),
            );
        }
        println!("{chart}");
        return;
    }

    let mut header = vec!["Circuit".to_owned()];
    header.extend(SCALABILITY_RATES.iter().map(|r| format!("1q rate {r:.0e}")));
    let mut table = Table::new(header);
    for row in &rows {
        let mut cells = vec![row.label.clone()];
        cells.extend(
            row.points.iter().map(|(_, report)| format!("{:.3}", report.normalized_computation())),
        );
        table.row(cells);
    }
    println!("Fig. 7: normalized computation, artificial scalability models ({trials} trials)");
    println!("{table}");
    println!(
        "paper reference: ~0.21 average; worst case (largest circuit, highest rate) ~0.69; dropping sharply at lower error rates"
    );
}
