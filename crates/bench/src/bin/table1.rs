//! Regenerates the paper's Table I: post-compilation benchmark
//! characteristics, side by side with the published numbers.
//!
//! Our transpiler replaces the Enfield compiler the paper used, so absolute
//! gate counts differ (different router and fusion); the qubit and
//! measurement counts must match exactly.

use redsim_bench::suite::{yorktown_suite, PAPER_TABLE1};
use redsim_bench::table::Table;

fn main() {
    let mut table = Table::new([
        "Name",
        "Qubit #",
        "Single # (ours)",
        "Single # (paper)",
        "CNOT # (ours)",
        "CNOT # (paper)",
        "Measure #",
        "Layers",
    ]);
    for (bench, &(_, _, paper_single, paper_cnot, paper_measure)) in
        yorktown_suite().iter().zip(&PAPER_TABLE1)
    {
        let counts = bench.counts();
        assert_eq!(counts.measure, paper_measure, "{}: measurement count mismatch", bench.name);
        table.row([
            bench.name.clone(),
            bench.logical.n_qubits().to_string(),
            counts.single.to_string(),
            paper_single.to_string(),
            counts.cnot.to_string(),
            paper_cnot.to_string(),
            counts.measure.to_string(),
            bench.layered.n_layers().to_string(),
        ]);
    }
    println!("Table I: benchmark characteristics (compiled to IBM Yorktown)");
    println!("{table}");
}
