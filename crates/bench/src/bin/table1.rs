//! Regenerates the paper's Table I: post-compilation benchmark
//! characteristics, side by side with the published numbers.
//!
//! Our transpiler replaces the Enfield compiler the paper used, so absolute
//! gate counts differ (different router and fusion); the qubit and
//! measurement counts must match exactly.
//!
//! Usage: `table1 [--json]`

use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_suite, PAPER_TABLE1};
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if arg_flag(&args, "--json") {
        let rendered = json::array(yorktown_suite().iter().map(|bench| {
            let counts = bench.counts();
            json::object(&[
                ("name", json::string(&bench.name)),
                ("n_qubits", format!("{}", bench.logical.n_qubits())),
                ("single", format!("{}", counts.single)),
                ("cnot", format!("{}", counts.cnot)),
                ("measure", format!("{}", counts.measure)),
                ("layers", format!("{}", bench.layered.n_layers())),
            ])
        }));
        ResultsDoc::new("table1").field("rows", rendered).print();
        return;
    }
    let mut table = Table::new([
        "Name",
        "Qubit #",
        "Single # (ours)",
        "Single # (paper)",
        "CNOT # (ours)",
        "CNOT # (paper)",
        "Measure #",
        "Layers",
    ]);
    for (bench, &(_, _, paper_single, paper_cnot, paper_measure)) in
        yorktown_suite().iter().zip(&PAPER_TABLE1)
    {
        let counts = bench.counts();
        assert_eq!(counts.measure, paper_measure, "{}: measurement count mismatch", bench.name);
        table.row([
            bench.name.clone(),
            bench.logical.n_qubits().to_string(),
            counts.single.to_string(),
            paper_single.to_string(),
            counts.cnot.to_string(),
            paper_cnot.to_string(),
            counts.measure.to_string(),
            bench.layered.n_layers().to_string(),
        ]);
    }
    println!("Table I: benchmark characteristics (compiled to IBM Yorktown)");
    println!("{table}");
}
