//! Advisor accuracy: the static cost model's per-strategy predictions
//! against the stats every shipped executor actually measures, across the
//! Yorktown suite. Results are written to `BENCH_advisor.json`.
//!
//! Each row covers one (benchmark, strategy) pair: predicted and measured
//! amplitude passes plus the relative error. The model is designed to be
//! exact, so `--check PCT` (CI uses `--check 1`) exits non-zero when any
//! row's error exceeds `PCT` percent.
//!
//! Usage: `advisor [--trials N] [--seed N] [--out PATH] [--check PCT] [--record] [--quiet]`

use qsim_analyzer::{advise, ExecutionPlan, Strategy};
use qsim_noise::TrialGenerator;
use redsim::compressed::run_reordered_compressed;
use redsim::exec::{BaselineExecutor, ExecStats, ReuseExecutor};
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};

struct Row {
    bench: String,
    strategy: Strategy,
    predicted_passes: u64,
    measured_passes: u64,
    predicted_msv: usize,
    measured_msv: usize,
}

impl Row {
    fn new(bench: &str, strategy: Strategy, predicted: (u64, usize), stats: &ExecStats) -> Row {
        Row {
            bench: bench.to_owned(),
            strategy,
            predicted_passes: predicted.0,
            measured_passes: stats.amplitude_passes,
            predicted_msv: predicted.1,
            measured_msv: stats.peak_msv,
        }
    }

    /// Relative pass-count error in percent (0 when measured is 0 too).
    fn error_pct(&self) -> f64 {
        if self.measured_passes == 0 {
            return if self.predicted_passes == 0 { 0.0 } else { 100.0 };
        }
        100.0 * (self.predicted_passes.abs_diff(self.measured_passes) as f64)
            / self.measured_passes as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 2048usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let out = arg_value(&args, "--out", "BENCH_advisor.json".to_owned());
    let check = arg_value(&args, "--check", f64::INFINITY);
    let quiet = arg_flag(&args, "--quiet");

    let model = yorktown_model();
    let mut rows = Vec::new();
    let mut recommendations = Vec::new();
    for bench in &yorktown_suite() {
        let generator =
            TrialGenerator::new(&bench.layered, &model).expect("suite validated against model");
        let set = generator.generate(trials, seed);
        let plan = ExecutionPlan::compile(&bench.layered, &set, usize::MAX);
        let advice = advise(&plan);
        let p = |s: Strategy| {
            let p = advice.prediction(s).expect("every strategy is ranked");
            (p.amplitude_passes, p.msv_peak)
        };

        let baseline = BaselineExecutor::new(&bench.layered);
        let seq = baseline.run_unfused(set.trials()).expect("sequential run");
        rows.push(Row::new(&bench.name, Strategy::Sequential, p(Strategy::Sequential), &seq.stats));
        let fused = baseline.run(set.trials()).expect("fused run");
        rows.push(Row::new(&bench.name, Strategy::Fused, p(Strategy::Fused), &fused.stats));
        let reuse = ReuseExecutor::new(&bench.layered).run(set.trials()).expect("reuse run");
        rows.push(Row::new(&bench.name, Strategy::Reuse, p(Strategy::Reuse), &reuse.stats));
        let (comp, _) =
            run_reordered_compressed(&bench.layered, set.trials()).expect("compressed run");
        rows.push(Row::new(
            &bench.name,
            Strategy::Compressed,
            p(Strategy::Compressed),
            &comp.stats,
        ));

        recommendations.push(json::object(&[
            ("bench", json::string(&bench.name)),
            ("recommended", json::string(advice.best_executable().strategy.name())),
            ("trackable_fraction", json::number(advice.trackable_fraction())),
        ]));
    }

    let max_error = rows.iter().map(Row::error_pct).fold(0.0f64, f64::max);

    let doc = ResultsDoc::new("advisor")
        .int("trials", trials)
        .int("seed", seed)
        .field(
            "rows",
            json::array(rows.iter().map(|row| {
                json::object(&[
                    ("bench", json::string(&row.bench)),
                    ("strategy", json::string(row.strategy.name())),
                    ("predicted_passes", json::number(row.predicted_passes as f64)),
                    ("measured_passes", json::number(row.measured_passes as f64)),
                    ("predicted_msv", json::number(row.predicted_msv as f64)),
                    ("measured_msv", json::number(row.measured_msv as f64)),
                    ("error_pct", json::number(row.error_pct())),
                ])
            })),
        )
        .field("recommendations", json::array(recommendations))
        .field("max_error_pct", json::number(max_error));
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table = Table::new(["Benchmark", "Strategy", "Predicted", "Measured", "Error"]);
        for row in &rows {
            table.row([
                row.bench.clone(),
                row.strategy.name().to_owned(),
                row.predicted_passes.to_string(),
                row.measured_passes.to_string(),
                format!("{:.3}%", row.error_pct()),
            ]);
        }
        println!("Advisor cost-model accuracy: {trials} trials, seed {seed}");
        println!("{table}");
        println!("max prediction error {max_error:.3}%");
        println!("results written to {out}");
    }

    if check.is_finite() {
        if max_error > check {
            eprintln!("FAIL: max prediction error {max_error:.3}% exceeds the {check}% ceiling");
            std::process::exit(1);
        }
        println!("max prediction error {max_error:.3}% clears the {check}% ceiling");
    }
}
