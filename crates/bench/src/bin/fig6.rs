//! Regenerates the paper's Fig. 6: Maintained State Vectors per benchmark
//! on the realistic model at 1024 trials (with 8192 shown to confirm the
//! paper's observation that MSVs barely change with trial count).
//!
//! Two accountings are printed:
//! * **path policy** — the paper's storage scheme (a frontier kept at every
//!   node of the current trial's path); reproduces Fig. 6's absolute values.
//! * **eager policy** — this crate's one-trial-lookahead improvement, a
//!   strict lower bound.
//!
//! Usage: `fig6 [--seed N] [--json] [--record]`

use redsim_bench::experiments::realistic_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed", 2020u64);
    let rows = realistic_sweep(&[1024, 8192], seed);

    if arg_flag(&args, "--json") || arg_flag(&args, "--record") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("benchmark", json::string(&row.name)),
                (
                    "points",
                    json::array(row.points.iter().map(|(n, report)| {
                        json::object(&[
                            ("trials", format!("{n}")),
                            ("msv_eager", format!("{}", report.msv_peak)),
                            ("msv_path", format!("{}", report.msv_path_peak)),
                        ])
                    })),
                ),
            ])
        }));
        let doc = ResultsDoc::figure("fig6").int("seed", seed).field("rows", rendered);
        report::maybe_record(&args, &doc);
        if arg_flag(&args, "--json") {
            doc.print();
        }
        return;
    }

    let mut table = Table::new([
        "Benchmark",
        "MSVs @1024 (path)",
        "MSVs @8192 (path)",
        "MSVs @1024 (eager)",
        "MSVs @8192 (eager)",
    ]);
    for row in &rows {
        table.row([
            row.name.clone(),
            row.points[0].1.msv_path_peak.to_string(),
            row.points[1].1.msv_path_peak.to_string(),
            row.points[0].1.msv_peak.to_string(),
            row.points[1].1.msv_peak.to_string(),
        ]);
    }
    println!("Fig. 6: memory consumption (Maintained State Vectors), IBM Yorktown model");
    println!("{table}");
    println!("paper reference: 3 MSVs for rb up to 6 for qft5/qv_n5d5, nearly flat in trial count");
}
