//! Extension experiment: the paper's "future devices with reduced error
//! rates" claim on the **realistic** workload — normalized computation for
//! the Yorktown calibration scaled by 4×, 1×, ¼×, and 1/16× (Fig. 7 makes
//! the same point with artificial uniform models).
//!
//! Usage: `scale_sweep [--trials N] [--seed N] [--json]`

use redsim_bench::experiments::noise_scale_sweep;
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json};

const FACTORS: [f64; 4] = [4.0, 1.0, 0.25, 0.0625];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = arg_value(&args, "--trials", 8192usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let rows = noise_scale_sweep(&FACTORS, trials, seed);

    if arg_flag(&args, "--json") {
        let rendered = json::array(rows.iter().map(|row| {
            json::object(&[
                ("name", json::string(&row.name)),
                (
                    "points",
                    json::array(row.points.iter().map(|(factor, report)| {
                        json::object(&[
                            ("factor", json::number(*factor)),
                            ("normalized", json::number(report.normalized_computation())),
                        ])
                    })),
                ),
            ])
        }));
        ResultsDoc::new("scale_sweep")
            .int("seed", seed)
            .int("trials", trials)
            .field("rows", rendered)
            .print();
        return;
    }

    let mut header = vec!["Benchmark".to_owned()];
    header.extend(FACTORS.iter().map(|f| format!("{f}x noise")));
    let mut table = Table::new(header);
    for row in &rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(
            row.points.iter().map(|(_, report)| format!("{:.3}", report.normalized_computation())),
        );
        table.row(cells);
    }
    println!(
        "Noise-scale sweep: normalized computation vs scaled Yorktown calibration ({trials} trials)"
    );
    println!("{table}");
    println!(
        "reading: as hardware improves (smaller factors), trials carry fewer errors, share longer prefixes, and the optimization saves more — the paper's scalability claim on real calibration data"
    );
}
