//! Cold vs warm parameter-sweep execution through the persistent semantic
//! prefix cache (`redsim-msvstore`): a VQA-style ansatz swept over its
//! final rotation angle, with every injection at the tail layer so the
//! whole pre-measurement state is cacheable. The cold pass populates an
//! empty store; the warm pass replays the identical sweep against it.
//! Outcomes and `ExecStats` are asserted bitwise identical to the
//! uncached reordered executor on every pass. Results are written to
//! `BENCH_cache.json`; pass `--check RATIO` (CI uses `--check 1.5`) to
//! exit non-zero when the cold/warm speedup falls below `RATIO` or any
//! warm point misses.
//!
//! Usage: `cache [--qubits N] [--blocks N] [--points N] [--trials N]
//! [--reps N] [--seed N] [--dir PATH] [--out PATH] [--check RATIO]
//! [--quick] [--record] [--quiet]`

use std::time::Instant;

use redsim::testkit::vqa_sweep;
use redsim::{RunResult, Simulation};
use redsim_bench::report::ResultsDoc;
use redsim_bench::table::Table;
use redsim_bench::{arg_flag, arg_value, json, report};
use redsim_msvstore::MsvStore;

fn assert_bitwise(point: &str, pass: &str, got: &RunResult, want: &RunResult) {
    assert_eq!(got.stats, want.stats, "{point}: {pass} pass drifted from uncached stats");
    assert_eq!(got.outcomes, want.outcomes, "{point}: {pass} pass drifted from uncached outcomes");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let qubits = arg_value(&args, "--qubits", if quick { 10usize } else { 14 });
    let blocks = arg_value(&args, "--blocks", if quick { 8usize } else { 16 });
    let points = arg_value(&args, "--points", if quick { 4usize } else { 6 });
    let trials = arg_value(&args, "--trials", 8usize);
    let reps = arg_value(&args, "--reps", 3usize);
    let seed = arg_value(&args, "--seed", 2020u64);
    let out = arg_value(&args, "--out", "BENCH_cache.json".to_owned());
    let check = arg_value(&args, "--check", f64::INFINITY);
    let dir = arg_value(&args, "--dir", String::new());
    let quiet = arg_flag(&args, "--quiet");

    let (keep_dir, dir) = if dir.is_empty() {
        let tmp = std::env::temp_dir().join(format!("redsim-bench-cache-{}", std::process::id()));
        (false, tmp)
    } else {
        (true, std::path::PathBuf::from(dir))
    };
    let store = MsvStore::open(&dir, 0).expect("cache directory opens");

    let (model, sweep) = vqa_sweep(qubits, blocks, points, trials, seed);
    let sims: Vec<Simulation> = sweep
        .iter()
        .map(|point| {
            let mut sim =
                Simulation::new(point.layered.clone(), model.clone()).expect("model covers ansatz");
            sim.set_trials(point.trials.clone()).expect("trial geometry matches");
            sim
        })
        .collect();

    // Uncached reference: pins the bitwise contract for both cache passes.
    let reference: Vec<RunResult> =
        sims.iter().map(|sim| sim.run_reordered().expect("sweep point runs")).collect();

    let mut uncached_ms = vec![f64::INFINITY; sims.len()];
    let mut cold_ms = vec![f64::INFINITY; sims.len()];
    let mut warm_ms = vec![f64::INFINITY; sims.len()];
    let mut keys = vec![String::new(); sims.len()];
    let (mut cold_hits, mut warm_hits) = (0u64, 0u64);
    for rep in 0..reps.max(1) {
        for (i, sim) in sims.iter().enumerate() {
            let start = Instant::now();
            let result = sim.run_reordered().expect("sweep point runs");
            uncached_ms[i] = uncached_ms[i].min(start.elapsed().as_secs_f64() * 1e3);
            assert_bitwise(&sweep[i].name, "uncached", &result, &reference[i]);
        }
        store.clear().expect("cache directory clears");
        for (i, sim) in sims.iter().enumerate() {
            let start = Instant::now();
            let (result, cache) = sim.run_reordered_cached(&store).expect("sweep point runs");
            cold_ms[i] = cold_ms[i].min(start.elapsed().as_secs_f64() * 1e3);
            assert_bitwise(&sweep[i].name, "cold", &result, &reference[i]);
            if rep == 0 {
                cold_hits += u64::from(cache.hit);
                keys[i] = cache.key.unwrap_or_default();
            }
        }
        for (i, sim) in sims.iter().enumerate() {
            let start = Instant::now();
            let (result, cache) = sim.run_reordered_cached(&store).expect("sweep point runs");
            warm_ms[i] = warm_ms[i].min(start.elapsed().as_secs_f64() * 1e3);
            assert_bitwise(&sweep[i].name, "warm", &result, &reference[i]);
            if rep == 0 {
                warm_hits += u64::from(cache.hit);
            }
        }
    }

    let stats = store.stats();
    let cold_total: f64 = cold_ms.iter().sum();
    let warm_total: f64 = warm_ms.iter().sum();
    let uncached_total: f64 = uncached_ms.iter().sum();
    let speedup = cold_total / warm_total.max(1e-9);
    let warm_hit_rate = warm_hits as f64 / sims.len() as f64;

    let doc = ResultsDoc::new("cache")
        .int("seed", seed)
        .int("reps", reps)
        .int("qubits", qubits)
        .int("blocks", blocks)
        .int("points", points)
        .int("trials_per_point", trials)
        .field("uncached_ms", json::number(uncached_total))
        .field("cold_ms", json::number(cold_total))
        .field("warm_ms", json::number(warm_total))
        .field("speedup", json::number(speedup))
        .int("cold_hits", cold_hits)
        .int("warm_hits", warm_hits)
        .field("warm_hit_rate", json::number(warm_hit_rate))
        .int("store_entries", stats.entries)
        .int("store_bytes", stats.bytes)
        .field(
            "rows",
            json::array(sweep.iter().enumerate().map(|(i, point)| {
                json::object(&[
                    ("name", json::string(&point.name)),
                    ("theta", json::number(point.theta)),
                    ("key", json::string(&keys[i])),
                    ("uncached_ms", json::number(uncached_ms[i])),
                    ("cold_ms", json::number(cold_ms[i])),
                    ("warm_ms", json::number(warm_ms[i])),
                    ("speedup", json::number(cold_ms[i] / warm_ms[i].max(1e-9))),
                ])
            })),
        );
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table = Table::new(["Point", "Uncached ms", "Cold ms", "Warm ms", "Speedup"]);
        for (i, point) in sweep.iter().enumerate() {
            table.row([
                point.name.clone(),
                format!("{:.2}", uncached_ms[i]),
                format!("{:.2}", cold_ms[i]),
                format!("{:.2}", warm_ms[i]),
                format!("{:.2}x", cold_ms[i] / warm_ms[i].max(1e-9)),
            ]);
        }
        println!(
            "Semantic prefix cache: VQA sweep, {qubits} qubits x {blocks} blocks x {points} points"
        );
        println!("{table}");
        println!(
            "cold {cold_total:.1} ms -> warm {warm_total:.1} ms ({speedup:.2}x), \
             warm hit rate {:.0}%, {} entries / {} bytes on disk",
            warm_hit_rate * 100.0,
            stats.entries,
            stats.bytes
        );
        println!("results written to {out}");
    }

    if !keep_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if check.is_finite() {
        if speedup < check {
            eprintln!("FAIL: warm-cache speedup {speedup:.2}x below the {check}x floor");
            std::process::exit(1);
        }
        if warm_hit_rate < 1.0 {
            eprintln!(
                "FAIL: warm pass missed {}/{} points",
                sims.len() as u64 - warm_hits,
                sims.len()
            );
            std::process::exit(1);
        }
        println!(
            "warm-cache speedup {speedup:.2}x clears the {check}x floor with a full warm hit rate"
        );
    }
}
