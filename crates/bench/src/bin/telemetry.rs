//! Telemetry overhead: the reordered executor with no recorder, the
//! `NullRecorder` (instrumentation compiled out), the in-memory
//! aggregating recorder, and a JSONL sink, across three catalog circuits
//! at 64 trials. Results are written to `BENCH_telemetry.json`.
//!
//! The `NullRecorder` path is the one every un-instrumented caller pays
//! for, so its overhead over the plain run is budget-gated: pass
//! `--check PCT` (e.g. `--check 2`) to exit non-zero when the null
//! overhead exceeds `PCT` percent — CI runs this as the "telemetry is
//! free unless you ask for it" regression gate.
//!
//! Usage: `telemetry [--seed N] [--reps N] [--trials N] [--out PATH] [--check PCT] [--record] [--quiet]`

use std::time::Instant;

use qsim_telemetry::{AggregatingRecorder, JsonlRecorder, NullRecorder, Recorder, TraceMeta};
use redsim::exec::ReuseExecutor;
use redsim_bench::report::ResultsDoc;
use redsim_bench::suite::{yorktown_model, yorktown_suite};
use redsim_bench::table::Table;
use redsim_bench::{arg_value, json, report};

/// Best-of-`reps` wall clock in milliseconds, with one warmup execution.
fn time_best<F: FnMut()>(reps: usize, mut run: F) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    name: String,
    trials: usize,
    plain_ms: f64,
    null_ms: f64,
    aggregate_ms: f64,
    jsonl_ms: f64,
}

impl Row {
    fn overhead_pct(&self, instrumented_ms: f64) -> f64 {
        100.0 * (instrumented_ms - self.plain_ms) / self.plain_ms.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_value(&args, "--seed", 2020u64);
    let reps = arg_value(&args, "--reps", 7usize);
    let n_trials = arg_value(&args, "--trials", 64usize);
    let out = arg_value(&args, "--out", "BENCH_telemetry.json".to_owned());
    let check = arg_value(&args, "--check", f64::INFINITY);
    let quiet = redsim_bench::arg_flag(&args, "--quiet");

    let model = yorktown_model();
    let mut rows = Vec::new();
    for bench in yorktown_suite().iter().take(3) {
        let set = qsim_noise::TrialGenerator::new(&bench.layered, &model)
            .expect("valid model")
            .generate(n_trials, seed);
        let trials = set.trials();
        let reuse = ReuseExecutor::new(&bench.layered);

        let plain_ms = time_best(reps, || {
            reuse.run(trials).expect("execution succeeds");
        });
        let null_ms = time_best(reps, || {
            reuse.run_traced(trials, &NullRecorder).expect("execution succeeds");
        });
        let aggregate_ms = time_best(reps, || {
            let recorder = AggregatingRecorder::new();
            reuse.run_traced(trials, &recorder).expect("execution succeeds");
        });
        let jsonl_ms = time_best(reps, || {
            let recorder = JsonlRecorder::new(Box::new(std::io::sink()), &TraceMeta::default());
            reuse.run_traced(trials, &recorder).expect("execution succeeds");
            recorder.flush().expect("sink never fails");
        });
        rows.push(Row {
            name: bench.name.clone(),
            trials: n_trials,
            plain_ms,
            null_ms,
            aggregate_ms,
            jsonl_ms,
        });
    }

    let doc = ResultsDoc::new("telemetry").int("seed", seed).int("reps", reps).field(
        "rows",
        json::array(rows.iter().map(|row| {
            json::object(&[
                ("name", json::string(&row.name)),
                ("trials", format!("{}", row.trials)),
                ("plain_ms", json::number(row.plain_ms)),
                ("null_ms", json::number(row.null_ms)),
                ("null_overhead_pct", json::number(row.overhead_pct(row.null_ms))),
                ("aggregate_ms", json::number(row.aggregate_ms)),
                ("aggregate_overhead_pct", json::number(row.overhead_pct(row.aggregate_ms))),
                ("jsonl_ms", json::number(row.jsonl_ms)),
                ("jsonl_overhead_pct", json::number(row.overhead_pct(row.jsonl_ms))),
            ])
        })),
    );
    doc.write_file(&out);
    report::maybe_record(&args, &doc);

    if !quiet {
        let mut table =
            Table::new(["Benchmark", "Plain", "Null", "Null ovh", "Aggregate", "JSONL"]);
        for row in &rows {
            table.row([
                row.name.clone(),
                format!("{:.3} ms", row.plain_ms),
                format!("{:.3} ms", row.null_ms),
                format!("{:+.1}%", row.overhead_pct(row.null_ms)),
                format!("{:.3} ms", row.aggregate_ms),
                format!("{:.3} ms", row.jsonl_ms),
            ]);
        }
        println!("Telemetry overhead: reordered execution, {n_trials} trials, best of {reps}");
        println!("{table}");
        println!("results written to {out}");
    }

    if check.is_finite() {
        // Budget gate on the compiled-out path. Best-of-reps timing still
        // jitters on tiny circuits, so the gate applies to the mean
        // overhead across the suite rather than any single row.
        let mean_pct =
            rows.iter().map(|r| r.overhead_pct(r.null_ms)).sum::<f64>() / rows.len() as f64;
        if mean_pct > check {
            eprintln!("FAIL: mean NullRecorder overhead {mean_pct:.2}% exceeds budget {check}%");
            std::process::exit(1);
        }
        println!("null-recorder overhead {mean_pct:.2}% within the {check}% budget");
    }
}
